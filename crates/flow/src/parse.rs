//! A small text format for flow specifications.
//!
//! The paper assumes flows are available as architectural collateral
//! (§1, [1, 4, 11, 13]); this module gives that collateral a concrete,
//! version-controllable syntax so downstream users can feed their own
//! protocols to the selector without writing Rust:
//!
//! ```text
//! # Toy cache-coherence flow (Figure 1a).
//! message ReqE 1
//! message GntE 1
//! message Ack  1
//! group   GntE.half 0        # (just an example; width must be < parent)
//!
//! flow "cache coherence" {
//!     state  Init Wait
//!     atomic GntW
//!     stop   Done
//!     initial Init
//!     edge Init -ReqE-> Wait
//!     edge Wait -GntE-> GntW
//!     edge GntW -Ack->  Done
//! }
//! ```
//!
//! `message NAME WIDTH` interns a message; `group PARENT.NAME WIDTH`
//! declares a packing subgroup; `flow "NAME" { … }` declares a flow with
//! `state` / `atomic` / `stop` / `initial` / `edge FROM -MSG-> TO`
//! directives. `#` starts a comment. Several flows may share one file
//! (and therefore one message catalog).

use std::fmt;
use std::sync::Arc;

use crate::error::FlowError;
use crate::flow::{Flow, FlowBuilder};
use crate::message::MessageCatalog;

/// Error raised while parsing a flow-specification document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The document parsed but a flow failed validation.
    Flow(FlowError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Flow(e) => write!(f, "flow validation failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Syntax { .. } => None,
            ParseError::Flow(e) => Some(e),
        }
    }
}

impl From<FlowError> for ParseError {
    fn from(e: FlowError) -> Self {
        ParseError::Flow(e)
    }
}

/// A parsed document: the shared catalog and the declared flows, in
/// declaration order.
#[derive(Debug, Clone)]
pub struct FlowDocument {
    /// The message catalog shared by all flows of the document.
    pub catalog: Arc<MessageCatalog>,
    /// The flows, in declaration order.
    pub flows: Vec<Arc<Flow>>,
}

impl FlowDocument {
    /// Finds a flow by name.
    #[must_use]
    pub fn flow(&self, name: &str) -> Option<&Arc<Flow>> {
        self.flows.iter().find(|f| f.name() == name)
    }
}

/// Parses a flow-specification document.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] with the offending line for malformed
/// input, or [`ParseError::Flow`] when a declared flow violates
/// Definition 1 (cycles, unreachable states, …).
pub fn parse_flows(input: &str) -> Result<FlowDocument, ParseError> {
    /// A flow block under construction: declaration line, name, and the
    /// `(line, text)` body directives.
    type FlowSpec = (usize, String, Vec<(usize, String)>);

    let mut catalog = MessageCatalog::new();
    // First pass: messages and groups (they may appear anywhere at top
    // level, but must not appear inside flow blocks).
    let mut flow_specs: Vec<FlowSpec> = Vec::new();
    let mut current: Option<FlowSpec> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some((_, _, body)) = current.as_mut() {
            if line == "}" {
                let done = current.take().expect("inside a flow block");
                flow_specs.push(done);
            } else {
                body.push((line_no, line.to_owned()));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("message") => {
                let name = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "message needs a name"))?;
                let width: u32 = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "message needs a width"))?
                    .parse()
                    .map_err(|_| syntax(line_no, "message width must be an integer"))?;
                if width == 0 {
                    return Err(syntax(line_no, "message width must be positive"));
                }
                if parts.next().is_some() {
                    return Err(syntax(line_no, "unexpected trailing tokens"));
                }
                catalog.intern(name, width);
            }
            Some("group") => {
                let qualified = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "group needs PARENT.NAME"))?;
                let width: u32 = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "group needs a width"))?
                    .parse()
                    .map_err(|_| syntax(line_no, "group width must be an integer"))?;
                let (parent, name) = qualified
                    .split_once('.')
                    .ok_or_else(|| syntax(line_no, "group name must be PARENT.NAME"))?;
                let parent_id = catalog.get(parent).ok_or_else(|| {
                    syntax(line_no, &format!("unknown parent message `{parent}`"))
                })?;
                if width == 0 || width >= catalog.width(parent_id) {
                    return Err(syntax(
                        line_no,
                        "group width must be positive and narrower than its parent",
                    ));
                }
                catalog.intern_group(parent_id, name, width);
            }
            Some("flow") => {
                let rest = line["flow".len()..].trim();
                let name = rest
                    .strip_suffix('{')
                    .map(str::trim)
                    .ok_or_else(|| syntax(line_no, "flow declaration must end with `{`"))?;
                let name = unquote(name)
                    .ok_or_else(|| syntax(line_no, "flow name must be double-quoted"))?;
                current = Some((line_no, name.to_owned(), Vec::new()));
            }
            Some(other) => {
                return Err(syntax(line_no, &format!("unknown directive `{other}`")));
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    if let Some((line, name, _)) = current {
        return Err(syntax(
            line,
            &format!("flow \"{name}\" is missing its closing `}}`"),
        ));
    }

    let catalog = Arc::new(catalog);
    let mut flows = Vec::new();
    for (_, name, body) in flow_specs {
        let mut builder = FlowBuilder::new(&name);
        for (line_no, line) in body {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("state") => {
                    for s in parts {
                        builder = builder.state(s);
                    }
                }
                Some("atomic") => {
                    for s in parts {
                        builder = builder.atomic_state(s);
                    }
                }
                Some("stop") => {
                    for s in parts {
                        builder = builder.stop_state(s);
                    }
                }
                Some("initial") => {
                    for s in parts {
                        builder = builder.initial(s);
                    }
                }
                Some("edge") => {
                    let from = parts
                        .next()
                        .ok_or_else(|| syntax(line_no, "edge needs FROM"))?;
                    let arrow = parts
                        .next()
                        .ok_or_else(|| syntax(line_no, "edge needs -MSG->"))?;
                    let to = parts
                        .next()
                        .ok_or_else(|| syntax(line_no, "edge needs TO"))?;
                    let message = arrow
                        .strip_prefix('-')
                        .and_then(|a| a.strip_suffix("->"))
                        .ok_or_else(|| {
                            syntax(line_no, "edge label must be written as -MESSAGE->")
                        })?;
                    if message.is_empty() {
                        return Err(syntax(line_no, "edge label must name a message"));
                    }
                    builder = builder.edge(from, message, to);
                }
                Some(other) => {
                    return Err(syntax(
                        line_no,
                        &format!("unknown flow directive `{other}`"),
                    ));
                }
                None => unreachable!("blank lines are skipped"),
            }
        }
        flows.push(Arc::new(builder.build(&catalog)?));
    }
    Ok(FlowDocument { catalog, flows })
}

/// Renders a flow back into the text format (round-trips through
/// [`parse_flows`]).
#[must_use]
pub fn flow_to_text(flow: &Flow) -> String {
    use std::fmt::Write as _;
    let catalog = flow.catalog();
    let mut out = String::new();
    for &m in flow.messages() {
        let _ = writeln!(out, "message {} {}", catalog.name(m), catalog.width(m));
    }
    let _ = writeln!(out, "flow \"{}\" {{", flow.name());
    let plain: Vec<&str> = flow
        .states()
        .filter(|s| !flow.is_atomic(*s) && !flow.is_stop(*s))
        .map(|s| flow.state_name(s))
        .collect();
    if !plain.is_empty() {
        let _ = writeln!(out, "    state {}", plain.join(" "));
    }
    if !flow.atomic_states().is_empty() {
        let names: Vec<&str> = flow
            .atomic_states()
            .iter()
            .map(|&s| flow.state_name(s))
            .collect();
        let _ = writeln!(out, "    atomic {}", names.join(" "));
    }
    let stops: Vec<&str> = flow
        .stop_states()
        .iter()
        .map(|&s| flow.state_name(s))
        .collect();
    let _ = writeln!(out, "    stop {}", stops.join(" "));
    let initials: Vec<&str> = flow
        .initial_states()
        .iter()
        .map(|&s| flow.state_name(s))
        .collect();
    let _ = writeln!(out, "    initial {}", initials.join(" "));
    for e in flow.edges() {
        let _ = writeln!(
            out,
            "    edge {} -{}-> {}",
            flow.state_name(e.from),
            catalog.name(e.message),
            flow.state_name(e.to)
        );
    }
    out.push_str("}\n");
    out
}

fn syntax(line: usize, reason: &str) -> ParseError {
    ParseError::Syntax {
        line,
        reason: reason.to_owned(),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"')?.strip_suffix('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHE: &str = r#"
# Toy cache-coherence flow (Figure 1a).
message ReqE 1
message GntE 1
message Ack  1

flow "cache coherence" {
    state  Init Wait
    atomic GntW
    stop   Done
    initial Init
    edge Init -ReqE-> Wait
    edge Wait -GntE-> GntW
    edge GntW -Ack->  Done
}
"#;

    #[test]
    fn parses_the_running_example() {
        let doc = parse_flows(CACHE).unwrap();
        assert_eq!(doc.catalog.len(), 3);
        assert_eq!(doc.flows.len(), 1);
        let flow = doc.flow("cache coherence").unwrap();
        assert_eq!(flow.state_count(), 4);
        assert_eq!(flow.edge_count(), 3);
        assert_eq!(flow.atomic_states().len(), 1);
        // It behaves identically to the built-in example.
        let (builtin, _) = crate::examples::cache_coherence();
        assert_eq!(flow.state_count(), builtin.state_count());
        assert_eq!(flow.messages().len(), builtin.messages().len());
    }

    #[test]
    fn round_trips_through_text() {
        let doc = parse_flows(CACHE).unwrap();
        let text = flow_to_text(doc.flow("cache coherence").unwrap());
        let doc2 = parse_flows(&text).unwrap();
        let a = doc.flow("cache coherence").unwrap();
        let b = doc2.flow("cache coherence").unwrap();
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.atomic_states().len(), b.atomic_states().len());
        assert_eq!(a.initial_states().len(), b.initial_states().len());
    }

    #[test]
    fn multiple_flows_share_the_catalog() {
        let doc = parse_flows(
            r#"
message a 2
message b 3
flow "one" {
    state s0
    stop s1
    initial s0
    edge s0 -a-> s1
}
flow "two" {
    state t0
    stop t1
    initial t0
    edge t0 -b-> t1
}
"#,
        )
        .unwrap();
        assert_eq!(doc.flows.len(), 2);
        assert!(std::sync::Arc::ptr_eq(
            doc.flows[0].catalog(),
            doc.flows[1].catalog()
        ));
    }

    #[test]
    fn groups_are_declared() {
        let doc = parse_flows(
            r#"
message wide 20
group wide.field 6
flow "f" {
    state s0
    stop s1
    initial s0
    edge s0 -wide-> s1
}
"#,
        )
        .unwrap();
        let g = doc.catalog.get_group("wide.field").unwrap();
        assert_eq!(doc.catalog.group(g).width(), 6);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_flows("message x\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::Syntax {
                line: 1,
                reason: "message needs a width".into()
            }
        );

        let err = parse_flows("bogus directive\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));

        let err = parse_flows("message m 1\nflow \"f\" {\n  edge a b c\n}\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 3, .. }));

        let err = parse_flows("flow \"f\" {\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn flow_validation_errors_propagate() {
        let err = parse_flows(
            r#"
message a 1
flow "cyclic" {
    state s0 s1
    stop s2
    initial s0
    edge s0 -a-> s1
    edge s1 -a-> s0
    edge s1 -a-> s2
}
"#,
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::Flow(FlowError::Cyclic { .. })));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = parse_flows("# nothing\n\n   # more nothing\nmessage m 4 # trailing\n");
        assert_eq!(doc.unwrap().catalog.len(), 1);
    }

    #[test]
    fn rejects_zero_width_message() {
        let err = parse_flows("message m 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }
}
