//! Ready-made flows used throughout the documentation and tests.

use std::sync::Arc;

use crate::flow::Flow;
use crate::flow::FlowBuilder;
use crate::message::MessageCatalog;

/// The toy cache-coherence flow of the paper's Figure 1a: an exclusive
/// line-access request between an L1 cache (`1`) and a directory (`Dir`).
///
/// * States: `Init`, `Wait`, `GntW` (atomic), `Done` (stop);
/// * Messages: `ReqE`, `GntE`, `Ack`, each 1 bit wide;
/// * Transitions: `Init --ReqE--> Wait --GntE--> GntW --Ack--> Done`.
///
/// Returns the flow together with its message catalog.
///
/// # Examples
///
/// ```
/// use pstrace_flow::examples::cache_coherence;
///
/// let (flow, catalog) = cache_coherence();
/// assert_eq!(flow.state_count(), 4);
/// assert_eq!(catalog.len(), 3);
/// assert_eq!(flow.atomic_states().len(), 1);
/// ```
#[must_use]
pub fn cache_coherence() -> (Flow, Arc<MessageCatalog>) {
    let mut catalog = MessageCatalog::new();
    catalog.intern("ReqE", 1);
    catalog.intern("GntE", 1);
    catalog.intern("Ack", 1);
    let catalog = Arc::new(catalog);
    let flow = FlowBuilder::new("cache coherence")
        .state("Init")
        .state("Wait")
        .atomic_state("GntW")
        .stop_state("Done")
        .initial("Init")
        .edge("Init", "ReqE", "Wait")
        .edge("Wait", "GntE", "GntW")
        .edge("GntW", "Ack", "Done")
        .build(&catalog)
        .expect("cache coherence flow is well-formed");
    (flow, catalog)
}

/// A small diamond-shaped flow with a branch, useful for exercising
/// multi-path behaviour in tests.
///
/// ```text
///        a          c
/// start ---> left ----> done
///   \                  ^
///    \  b          d  /
///     ----> right ----
/// ```
///
/// Message widths: `a`,`b` are 2 bits; `c`,`d` are 3 bits.
#[must_use]
pub fn diamond() -> (Flow, Arc<MessageCatalog>) {
    let mut catalog = MessageCatalog::new();
    catalog.intern("a", 2);
    catalog.intern("b", 2);
    catalog.intern("c", 3);
    catalog.intern("d", 3);
    let catalog = Arc::new(catalog);
    let flow = FlowBuilder::new("diamond")
        .state("start")
        .state("left")
        .state("right")
        .stop_state("done")
        .initial("start")
        .edge("start", "a", "left")
        .edge("start", "b", "right")
        .edge("left", "c", "done")
        .edge("right", "d", "done")
        .build(&catalog)
        .expect("diamond flow is well-formed");
    (flow, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::flow_path_count;

    #[test]
    fn cache_coherence_matches_figure_1a() {
        let (flow, catalog) = cache_coherence();
        assert_eq!(flow.name(), "cache coherence");
        assert_eq!(flow.state_count(), 4);
        assert_eq!(flow.edge_count(), 3);
        assert_eq!(flow.initial_states().len(), 1);
        assert_eq!(flow.stop_states().len(), 1);
        assert_eq!(flow.atomic_states().len(), 1);
        assert_eq!(flow.state_name(flow.atomic_states()[0]), "GntW");
        for (_, m) in catalog.iter() {
            assert_eq!(m.width(), 1);
        }
        assert_eq!(flow_path_count(&flow), 1);
    }

    #[test]
    fn diamond_has_two_paths() {
        let (flow, _) = diamond();
        assert_eq!(flow_path_count(&flow), 2);
    }
}
