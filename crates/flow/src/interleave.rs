//! The interleaved flow `F ||| G` of Definition 5.
//!
//! The interleaving of legally indexed flows is the asynchronous product of
//! their DAGs with one side condition: while any instance sits in an
//! *atomic* state, no other instance may take a step, and no product state
//! may place two instances in atomic states simultaneously. The product is
//! built by breadth-first exploration from the initial product states, which
//! yields exactly the legal states (e.g. the 15-state interleaving of two
//! cache-coherence instances in the paper's Figure 2 — `(c1, c2)` is
//! excluded).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::FlowError;
use crate::flow::StateId;
use crate::indexed::{check_legally_indexed, IndexedFlow, IndexedMessage};
use crate::message::{MessageCatalog, MessageId};

/// Identifier of a product state within an [`InterleavedFlow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductStateId(pub(crate) u32);

impl ProductStateId {
    /// Returns the dense index of this product state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProductStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A transition of the interleaved flow: one participating instance takes a
/// step while all others stay put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterleavedEdge {
    /// Source product state.
    pub from: ProductStateId,
    /// The indexed message labeling the step.
    pub message: IndexedMessage,
    /// Which participating instance (position in
    /// [`InterleavedFlow::flows`]) moved.
    pub slot: usize,
    /// Target product state.
    pub to: ProductStateId,
}

/// Construction limits for the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveConfig {
    /// Maximum number of product states to materialize before aborting with
    /// [`FlowError::ProductTooLarge`].
    pub max_states: usize,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        InterleaveConfig {
            max_states: 4_000_000,
        }
    }
}

/// The interleaved flow `U = F₁ ||| F₂ ||| …` (Definition 5).
///
/// States are tuples of per-instance flow states; edges are single-instance
/// steps labeled with indexed messages; the atomic-state mutex is enforced
/// by construction. This is the object over which mutual information gain
/// and flow-specification coverage are computed.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, _) = cache_coherence();
/// let instances = instantiate(&Arc::new(flow), 2);
/// let product = InterleavedFlow::build(&instances)?;
/// // Paper, Figure 2: 15 legal states ((c1, c2) excluded), 18 edges.
/// assert_eq!(product.state_count(), 15);
/// assert_eq!(product.edge_count(), 18);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedFlow {
    flows: Vec<IndexedFlow>,
    catalog: Arc<MessageCatalog>,
    states: Vec<Box<[StateId]>>,
    initial: Vec<ProductStateId>,
    stop: Vec<ProductStateId>,
    edges: Vec<InterleavedEdge>,
    out_edges: Vec<Vec<usize>>,
    in_edges: Vec<Vec<usize>>,
}

impl InterleavedFlow {
    /// Builds the interleaving of `flows` with default limits.
    ///
    /// # Errors
    ///
    /// See [`InterleavedFlow::build_with`].
    pub fn build(flows: &[IndexedFlow]) -> Result<Self, FlowError> {
        Self::build_with(flows, InterleaveConfig::default())
    }

    /// Builds the interleaving of `flows` under `config`.
    ///
    /// # Errors
    ///
    /// * [`FlowError::NoFlows`] if `flows` is empty;
    /// * [`FlowError::IllegalIndexing`] if two instances of one flow share
    ///   an index (Definition 4);
    /// * [`FlowError::CatalogMismatch`] if the flows were built against
    ///   different message catalogs;
    /// * [`FlowError::AtomicInitialClash`] if two instances would have to
    ///   start in atomic states;
    /// * [`FlowError::ProductTooLarge`] if the product exceeds
    ///   `config.max_states`.
    pub fn build_with(flows: &[IndexedFlow], config: InterleaveConfig) -> Result<Self, FlowError> {
        if flows.is_empty() {
            return Err(FlowError::NoFlows);
        }
        check_legally_indexed(flows)?;
        let catalog = Arc::clone(flows[0].flow().catalog());
        if !flows.iter().all(|f| {
            Arc::ptr_eq(f.flow().catalog(), &catalog) || *f.flow().catalog().as_ref() == *catalog
        }) {
            return Err(FlowError::CatalogMismatch);
        }

        let k = flows.len();
        let mut states: Vec<Box<[StateId]>> = Vec::new();
        let mut lookup: HashMap<Box<[StateId]>, ProductStateId> = HashMap::new();
        let mut frontier: Vec<ProductStateId> = Vec::new();
        let mut initial = Vec::new();

        // Cartesian product of the initial state sets.
        let mut combos: Vec<Vec<StateId>> = vec![Vec::new()];
        for f in flows {
            let mut next = Vec::new();
            for combo in &combos {
                for &s0 in f.flow().initial_states() {
                    let mut c = combo.clone();
                    c.push(s0);
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            let atomic_count = combo
                .iter()
                .zip(flows)
                .filter(|(s, f)| f.flow().is_atomic(**s))
                .count();
            if atomic_count > 1 {
                return Err(FlowError::AtomicInitialClash);
            }
            let boxed: Box<[StateId]> = combo.into_boxed_slice();
            let id = ProductStateId(states.len() as u32);
            if lookup.insert(boxed.clone(), id).is_none() {
                states.push(boxed);
                frontier.push(id);
                initial.push(id);
            }
        }

        let mut edges: Vec<InterleavedEdge> = Vec::new();
        let mut cursor = 0usize;
        while cursor < frontier.len() {
            let from = frontier[cursor];
            cursor += 1;
            let components = states[from.index()].clone();
            // Rule i/ii of δ_U: instance `slot` may step only if every other
            // instance is outside its atomic set.
            for slot in 0..k {
                let others_non_atomic = (0..k)
                    .filter(|&j| j != slot)
                    .all(|j| !flows[j].flow().is_atomic(components[j]));
                if !others_non_atomic {
                    continue;
                }
                let flow = flows[slot].flow();
                let index = flows[slot].index();
                for edge in flow.edges_from(components[slot]) {
                    let mut next: Box<[StateId]> = components.clone();
                    next[slot] = edge.to;
                    let to = match lookup.get(&next) {
                        Some(&id) => id,
                        None => {
                            if states.len() >= config.max_states {
                                return Err(FlowError::ProductTooLarge {
                                    limit: config.max_states,
                                });
                            }
                            let id = ProductStateId(states.len() as u32);
                            lookup.insert(next.clone(), id);
                            states.push(next);
                            frontier.push(id);
                            id
                        }
                    };
                    edges.push(InterleavedEdge {
                        from,
                        message: IndexedMessage::new(edge.message, index),
                        slot,
                        to,
                    });
                }
            }
        }

        let n = states.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from.index()].push(i);
            in_edges[e.to.index()].push(i);
        }

        let stop = (0..n)
            .filter(|&i| {
                states[i]
                    .iter()
                    .zip(flows)
                    .all(|(s, f)| f.flow().is_stop(*s))
            })
            .map(|i| ProductStateId(i as u32))
            .collect();

        Ok(InterleavedFlow {
            flows: flows.to_vec(),
            catalog,
            states,
            initial,
            stop,
            edges,
            out_edges,
            in_edges,
        })
    }

    /// The participating flow instances, in slot order.
    #[must_use]
    pub fn flows(&self) -> &[IndexedFlow] {
        &self.flows
    }

    /// The shared message catalog.
    #[must_use]
    pub fn catalog(&self) -> &Arc<MessageCatalog> {
        &self.catalog
    }

    /// Number of legal product states `|S|`.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of product transitions.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Component states of the product state `id`, one per slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this interleaving.
    #[must_use]
    pub fn components(&self, id: ProductStateId) -> &[StateId] {
        &self.states[id.index()]
    }

    /// Initial product states.
    #[must_use]
    pub fn initial_states(&self) -> &[ProductStateId] {
        &self.initial
    }

    /// Stop product states (every component in a stop state).
    #[must_use]
    pub fn stop_states(&self) -> &[ProductStateId] {
        &self.stop
    }

    /// All product transitions.
    #[must_use]
    pub fn edges(&self) -> &[InterleavedEdge] {
        &self.edges
    }

    /// Transitions leaving `state`.
    pub fn edges_from(&self, state: ProductStateId) -> impl Iterator<Item = &InterleavedEdge> + '_ {
        self.out_edges[state.index()]
            .iter()
            .map(move |&i| &self.edges[i])
    }

    /// Transitions entering `state`.
    pub fn edges_into(&self, state: ProductStateId) -> impl Iterator<Item = &InterleavedEdge> + '_ {
        self.in_edges[state.index()]
            .iter()
            .map(move |&i| &self.edges[i])
    }

    /// Iterates over all product state ids.
    pub fn states(&self) -> impl Iterator<Item = ProductStateId> + '_ {
        (0..self.states.len()).map(|i| ProductStateId(i as u32))
    }

    /// The product state with dense index `index` (the inverse of
    /// [`ProductStateId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.state_count()`.
    #[must_use]
    pub fn state_at(&self, index: usize) -> ProductStateId {
        assert!(
            index < self.states.len(),
            "state index {index} out of range"
        );
        ProductStateId(index as u32)
    }

    /// The distinct indexed messages labeling at least one edge.
    #[must_use]
    pub fn indexed_messages(&self) -> Vec<IndexedMessage> {
        let mut seen: Vec<IndexedMessage> = Vec::new();
        for e in &self.edges {
            if !seen.contains(&e.message) {
                seen.push(e.message);
            }
        }
        seen
    }

    /// The distinct un-indexed messages labeling at least one edge.
    #[must_use]
    pub fn message_alphabet(&self) -> Vec<MessageId> {
        let mut seen: Vec<MessageId> = Vec::new();
        for e in &self.edges {
            if !seen.contains(&e.message.message) {
                seen.push(e.message.message);
            }
        }
        seen
    }

    /// All indexed instances of the un-indexed message `m` occurring in the
    /// interleaving (one per participating instance whose flow uses `m`).
    #[must_use]
    pub fn indexed_instances_of(&self, m: MessageId) -> Vec<IndexedMessage> {
        let mut out = Vec::new();
        for f in &self.flows {
            if f.flow().messages().contains(&m) {
                out.push(IndexedMessage::new(m, f.index()));
            }
        }
        out
    }

    /// The *visible states* of a message combination (Definition 7): the set
    /// of product states reached by a transition labeled with any indexed
    /// instance of a selected message.
    #[must_use]
    pub fn visible_states(&self, combination: &[MessageId]) -> Vec<ProductStateId> {
        let mut seen = vec![false; self.states.len()];
        for e in &self.edges {
            if combination.contains(&e.message.message) {
                seen[e.to.index()] = true;
            }
        }
        (0..self.states.len())
            .filter(|&i| seen[i])
            .map(|i| ProductStateId(i as u32))
            .collect()
    }

    /// Human-readable rendering of a product state, e.g. `(w1, n2)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this interleaving.
    #[must_use]
    pub fn state_label(&self, id: ProductStateId) -> String {
        let parts: Vec<String> = self.states[id.index()]
            .iter()
            .zip(&self.flows)
            .map(|(s, f)| format!("{}{}", f.flow().state_name(*s), f.index()))
            .collect();
        format!("({})", parts.join(", "))
    }

    /// Looks up the product state with the given per-slot components.
    #[must_use]
    pub fn state_of(&self, components: &[StateId]) -> Option<ProductStateId> {
        self.states
            .iter()
            .position(|s| s.as_ref() == components)
            .map(|i| ProductStateId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::cache_coherence;
    use crate::indexed::instantiate;
    use crate::indexed::FlowIndex;
    use crate::FlowBuilder;

    fn two_instances() -> InterleavedFlow {
        let (flow, _) = cache_coherence();
        let instances = instantiate(&Arc::new(flow), 2);
        InterleavedFlow::build(&instances).unwrap()
    }

    #[test]
    fn figure2_shape_fifteen_states_eighteen_edges() {
        let u = two_instances();
        assert_eq!(u.state_count(), 15);
        assert_eq!(u.edge_count(), 18);
        assert_eq!(u.initial_states().len(), 1);
        assert_eq!(u.stop_states().len(), 1);
    }

    #[test]
    fn atomic_mutex_excludes_c1_c2() {
        let u = two_instances();
        let flow = u.flows()[0].flow();
        let c = flow.state("GntW").unwrap();
        assert!(u.state_of(&[c, c]).is_none());
        // ...but (GntW, anything-non-atomic) is legal.
        let n = flow.state("Init").unwrap();
        assert!(u.state_of(&[c, n]).is_some());
    }

    #[test]
    fn no_edge_leaves_another_instance_in_atomic_state() {
        let u = two_instances();
        for e in u.edges() {
            let from = u.components(e.from);
            for (slot, s) in from.iter().enumerate() {
                if slot != e.slot {
                    assert!(!u.flows()[slot].flow().is_atomic(*s));
                }
            }
        }
    }

    #[test]
    fn six_indexed_messages_three_each() {
        let u = two_instances();
        let ims = u.indexed_messages();
        assert_eq!(ims.len(), 6);
        for im in ims {
            let occurrences = u.edges().iter().filter(|e| e.message == im).count();
            assert_eq!(occurrences, 3, "each indexed message labels 3 edges");
        }
    }

    #[test]
    fn visible_states_of_reqe_gnte_is_eleven() {
        // Coverage golden: FSP coverage of {ReqE, GntE} is 11/15 = 0.7333.
        let u = two_instances();
        let catalog = u.catalog();
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        assert_eq!(u.visible_states(&combo).len(), 11);
    }

    #[test]
    fn rejects_empty_flow_list() {
        assert!(matches!(
            InterleavedFlow::build(&[]).unwrap_err(),
            FlowError::NoFlows
        ));
    }

    #[test]
    fn rejects_product_over_budget() {
        let (flow, _) = cache_coherence();
        let instances = instantiate(&Arc::new(flow), 2);
        let err = InterleavedFlow::build_with(&instances, InterleaveConfig { max_states: 4 })
            .unwrap_err();
        assert!(matches!(err, FlowError::ProductTooLarge { limit: 4 }));
    }

    #[test]
    fn rejects_mismatched_catalogs() {
        let (flow_a, _) = cache_coherence();
        let mut other_catalog = crate::MessageCatalog::new();
        other_catalog.intern("X", 1);
        let other_catalog = Arc::new(other_catalog);
        let flow_b = FlowBuilder::new("other")
            .state("p")
            .stop_state("q")
            .initial("p")
            .edge("p", "X", "q")
            .build(&other_catalog)
            .unwrap();
        let err = InterleavedFlow::build(&[
            IndexedFlow::new(Arc::new(flow_a), FlowIndex(1)),
            IndexedFlow::new(Arc::new(flow_b), FlowIndex(1)),
        ])
        .unwrap_err();
        assert_eq!(err, FlowError::CatalogMismatch);
    }

    #[test]
    fn single_flow_interleaving_is_the_flow_itself() {
        let (flow, _) = cache_coherence();
        let inst = instantiate(&Arc::new(flow), 1);
        let u = InterleavedFlow::build(&inst).unwrap();
        assert_eq!(u.state_count(), 4);
        assert_eq!(u.edge_count(), 3);
        assert_eq!(u.stop_states().len(), 1);
    }

    #[test]
    fn three_instances_scale() {
        let (flow, _) = cache_coherence();
        let inst = instantiate(&Arc::new(flow), 3);
        let u = InterleavedFlow::build(&inst).unwrap();
        // 4^3 = 64 tuples minus those with ≥2 atomic components:
        // choose 2 slots atomic (3 ways) × 4 third-states  = 12, minus
        // over-counted all-three-atomic (counted 3×, subtract 2) = 10.
        assert_eq!(u.state_count(), 64 - 10);
        // Heterogeneous slots all labeled with their own index.
        for e in u.edges() {
            assert_eq!(e.message.index, u.flows()[e.slot].index());
        }
    }

    #[test]
    fn multiple_initial_states_cross_product() {
        // A flow with two initial states interleaved with a single-initial
        // flow yields two initial product states.
        let (cc, catalog) = cache_coherence();
        let two_init = crate::FlowBuilder::new("two-init")
            .state("a")
            .state("b")
            .stop_state("z")
            .initial("a")
            .initial("b")
            .edge("a", "ReqE", "z")
            .edge("b", "GntE", "z")
            .build(&catalog)
            .unwrap();
        let u = InterleavedFlow::build(&[
            IndexedFlow::new(Arc::new(cc), FlowIndex(1)),
            IndexedFlow::new(Arc::new(two_init), FlowIndex(2)),
        ])
        .unwrap();
        assert_eq!(u.initial_states().len(), 2);
        // From each root: the cache-coherence instance contributes the
        // tokens [ReqE] and [GntE Ack] (atomic adjacency) and the other
        // flow one token: C(3, 1) = 3 interleavings; two roots double it.
        assert_eq!(crate::path_count(&u), 6);
        assert_eq!(crate::executions(&u).count(), 6);
    }

    #[test]
    fn state_labels_are_parenthesized_tuples() {
        let u = two_instances();
        let init = u.initial_states()[0];
        assert_eq!(u.state_label(init), "(Init1, Init2)");
    }

    #[test]
    fn indexed_instances_of_message() {
        let u = two_instances();
        let req = u.catalog().get("ReqE").unwrap();
        let insts = u.indexed_instances_of(req);
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].index, FlowIndex(1));
        assert_eq!(insts[1].index, FlowIndex(2));
    }
}
