//! Executions, traces and path counting (Definition 2).
//!
//! An *execution* of a flow is an alternating sequence of states and
//! messages ending in a stop state; its *trace* is the message sequence.
//! Every root-to-stop path of the interleaved flow is one possible
//! interleaved execution of the participating instances, so counting and
//! enumerating paths is the basis of the paper's *path localization* metric
//! (§5.2): the fraction of interleaved-flow paths consistent with an
//! observed trace.

use crate::flow::Flow;
use crate::indexed::IndexedMessage;
use crate::interleave::{InterleavedFlow, ProductStateId};

/// One complete execution of an interleaved flow: a root-to-stop path.
///
/// `states` has exactly one more element than `messages`; `states[i]`
/// evolves to `states[i + 1]` on `messages[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    states: Vec<ProductStateId>,
    messages: Vec<IndexedMessage>,
}

impl Execution {
    /// The visited product states, starting at an initial state and ending
    /// at a stop state.
    #[must_use]
    pub fn states(&self) -> &[ProductStateId] {
        &self.states
    }

    /// The trace of the execution (Definition 2): its message sequence.
    #[must_use]
    pub fn trace(&self) -> &[IndexedMessage] {
        &self.messages
    }

    /// Number of messages in the execution.
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the execution carries no messages (possible only when an
    /// initial state is also a stop state).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The trace projected onto a message combination: only the indexed
    /// messages whose un-indexed message is selected survive, in order.
    ///
    /// This is exactly what a trace buffer configured for the combination
    /// would record.
    #[must_use]
    pub fn project(&self, combination: &[crate::message::MessageId]) -> Vec<IndexedMessage> {
        self.messages
            .iter()
            .filter(|im| combination.contains(&im.message))
            .copied()
            .collect()
    }
}

/// Counts root-to-stop paths of the interleaved flow.
///
/// Flows are DAGs, so the count is finite; it is computed by dynamic
/// programming in topological order and saturates at `u128::MAX` instead of
/// overflowing.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow, path_count};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, _) = cache_coherence();
/// let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// // The atomic GntW state forces each instance's GntE and Ack to be
/// // adjacent, so an instance contributes the tokens [ReqE] and
/// // [GntE Ack]: C(4, 2) = 6 interleavings.
/// assert_eq!(path_count(&product), 6);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn path_count(flow: &InterleavedFlow) -> u128 {
    let ways = paths_to_stop(flow);
    flow.initial_states()
        .iter()
        .fold(0u128, |acc, s| acc.saturating_add(ways[s.index()]))
}

/// For each product state, the number of paths from it to any stop state.
#[must_use]
pub fn paths_to_stop(flow: &InterleavedFlow) -> Vec<u128> {
    let n = flow.state_count();
    let order = topological_order(flow);
    let mut ways = vec![0u128; n];
    for &s in flow.stop_states() {
        ways[s.index()] = 1;
    }
    // Process in reverse topological order so successors are final.
    for &u in order.iter().rev() {
        let mut total = ways[u];
        for e in flow.edges_from(ProductStateId(u as u32)) {
            total = total.saturating_add(ways[e.to.index()]);
        }
        ways[u] = total;
    }
    ways
}

/// Topological order of the product states (indices into the state table).
///
/// # Panics
///
/// Panics if the interleaving contains a cycle, which cannot happen for
/// products of validated (acyclic) flows.
#[must_use]
pub fn topological_order(flow: &InterleavedFlow) -> Vec<usize> {
    let n = flow.state_count();
    let mut indeg = vec![0usize; n];
    for e in flow.edges() {
        indeg[e.to.index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for e in flow.edges_from(ProductStateId(u as u32)) {
            let v = e.to.index();
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    assert_eq!(order.len(), n, "interleaved flow must be acyclic");
    order
}

/// Iterator over all executions (root-to-stop paths) of an interleaved
/// flow, produced by depth-first search.
///
/// The number of paths grows combinatorially with flow count; use
/// [`path_count`] first when only the cardinality is needed.
#[derive(Debug)]
pub struct Executions<'a> {
    flow: &'a InterleavedFlow,
    // Stack of (state, iterator position over out-edges).
    stack: Vec<(ProductStateId, usize)>,
    messages: Vec<IndexedMessage>,
    pending_roots: Vec<ProductStateId>,
    done: bool,
}

impl<'a> Executions<'a> {
    fn new(flow: &'a InterleavedFlow) -> Self {
        let mut pending_roots: Vec<ProductStateId> = flow.initial_states().to_vec();
        pending_roots.reverse();
        Executions {
            flow,
            stack: Vec::new(),
            messages: Vec::new(),
            pending_roots,
            done: false,
        }
    }

    fn out_edge(
        &self,
        state: ProductStateId,
        pos: usize,
    ) -> Option<&'a crate::interleave::InterleavedEdge> {
        self.flow.edges_from(state).nth(pos)
    }
}

impl Iterator for Executions<'_> {
    type Item = Execution;

    fn next(&mut self) -> Option<Execution> {
        if self.done {
            return None;
        }
        loop {
            // Start a new root if the stack is empty.
            if self.stack.is_empty() {
                match self.pending_roots.pop() {
                    Some(root) => {
                        self.stack.push((root, 0));
                        self.messages.clear();
                        if self.flow.stop_states().contains(&root) {
                            // Degenerate: an initial state that is a stop state.
                            let exec = Execution {
                                states: vec![root],
                                messages: Vec::new(),
                            };
                            self.stack.clear();
                            return Some(exec);
                        }
                    }
                    None => {
                        self.done = true;
                        return None;
                    }
                }
            }
            let (state, pos) = *self.stack.last().unwrap();
            match self.out_edge(state, pos) {
                Some(edge) => {
                    self.stack.last_mut().unwrap().1 += 1;
                    self.messages.push(edge.message);
                    if self.flow.stop_states().contains(&edge.to) {
                        let mut states: Vec<ProductStateId> =
                            self.stack.iter().map(|(s, _)| *s).collect();
                        states.push(edge.to);
                        let exec = Execution {
                            states,
                            messages: self.messages.clone(),
                        };
                        self.messages.pop();
                        return Some(exec);
                    }
                    self.stack.push((edge.to, 0));
                }
                None => {
                    self.stack.pop();
                    if !self.stack.is_empty() {
                        self.messages.pop();
                    }
                }
            }
        }
    }
}

/// Enumerates every execution (root-to-stop path) of `flow`.
#[must_use]
pub fn executions(flow: &InterleavedFlow) -> Executions<'_> {
    Executions::new(flow)
}

/// Counts root-to-stop paths of a single (non-interleaved) flow.
#[must_use]
pub fn flow_path_count(flow: &Flow) -> u128 {
    let n = flow.state_count();
    let mut indeg = vec![0usize; n];
    for e in flow.edges() {
        indeg[e.to.index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for e in flow.edges_from(crate::flow::StateId(u as u32)) {
            let v = e.to.index();
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    let mut ways = vec![0u128; n];
    for &s in flow.stop_states() {
        ways[s.index()] = 1;
    }
    for &u in order.iter().rev() {
        let mut total = ways[u];
        for e in flow.edges_from(crate::flow::StateId(u as u32)) {
            total = total.saturating_add(ways[e.to.index()]);
        }
        ways[u] = total;
    }
    flow.initial_states()
        .iter()
        .fold(0u128, |acc, s| acc.saturating_add(ways[s.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::cache_coherence;
    use crate::indexed::instantiate;
    use std::sync::Arc;

    fn two_instances() -> InterleavedFlow {
        let (flow, _) = cache_coherence();
        InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap()
    }

    #[test]
    fn count_matches_enumeration() {
        let u = two_instances();
        let count = path_count(&u);
        let enumerated = executions(&u).count();
        assert_eq!(count, enumerated as u128);
        assert_eq!(count, 6);
    }

    #[test]
    fn single_instance_has_one_path() {
        let (flow, _) = cache_coherence();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 1)).unwrap();
        assert_eq!(path_count(&u), 1);
        let execs: Vec<Execution> = executions(&u).collect();
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].len(), 3);
        assert_eq!(execs[0].states().len(), 4);
    }

    #[test]
    fn executions_start_initial_and_end_stop() {
        let u = two_instances();
        for exec in executions(&u) {
            assert!(u.initial_states().contains(&exec.states()[0]));
            assert!(u.stop_states().contains(exec.states().last().unwrap()));
            assert_eq!(exec.states().len(), exec.trace().len() + 1);
            // Each step is a real edge.
            for (i, m) in exec.trace().iter().enumerate() {
                let from = exec.states()[i];
                let to = exec.states()[i + 1];
                assert!(u.edges_from(from).any(|e| e.to == to && e.message == *m));
            }
        }
    }

    #[test]
    fn executions_are_distinct() {
        let u = two_instances();
        let traces: Vec<Vec<IndexedMessage>> = executions(&u).map(|e| e.trace().to_vec()).collect();
        let mut dedup = traces.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), traces.len());
    }

    #[test]
    fn every_trace_has_six_messages() {
        // Each instance contributes exactly ReqE, GntE, Ack.
        let u = two_instances();
        for exec in executions(&u) {
            assert_eq!(exec.len(), 6);
        }
    }

    #[test]
    fn projection_filters_and_preserves_order() {
        let u = two_instances();
        let catalog = u.catalog();
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        for exec in executions(&u) {
            let projected = exec.project(&combo);
            assert_eq!(projected.len(), 4, "two ReqE + two GntE survive");
            assert!(projected.iter().all(|im| combo.contains(&im.message)));
            // Order is preserved relative to the full trace.
            let mut cursor = exec.trace().iter();
            for p in &projected {
                assert!(cursor.any(|m| m == p));
            }
        }
    }

    #[test]
    fn flow_path_count_linear_is_one() {
        let (flow, _) = cache_coherence();
        assert_eq!(flow_path_count(&flow), 1);
    }

    #[test]
    fn paths_to_stop_at_initial_equals_total() {
        let u = two_instances();
        let ways = paths_to_stop(&u);
        let init = u.initial_states()[0];
        assert_eq!(ways[init.index()], 6);
    }

    #[test]
    fn topological_order_respects_edges() {
        let u = two_instances();
        let order = topological_order(&u);
        let mut position = vec![0usize; u.state_count()];
        for (pos, &s) in order.iter().enumerate() {
            position[s] = pos;
        }
        for e in u.edges() {
            assert!(position[e.from.index()] < position[e.to.index()]);
        }
    }
}
