//! Property-based tests for the flow formalism.
//!
//! Strategy: generate families of random linear flows (with optional atomic
//! states) and check structural laws of the interleaving product against
//! closed-form expectations.

use std::sync::Arc;

use proptest::prelude::*;
use pstrace_flow::parse::{flow_to_text, parse_flows};
use pstrace_flow::{
    executions, path_count, topological_order, Flow, FlowBuilder, FlowIndex, IndexedFlow,
    InterleavedFlow, MessageCatalog,
};

/// Builds a linear flow `name` with `len` edges; states `name_s0 .. name_sN`.
/// `atomics` marks which interior states (1..len) are atomic.
fn linear_flow(catalog: &Arc<MessageCatalog>, name: &str, len: usize, atomics: &[bool]) -> Flow {
    let mut b = FlowBuilder::new(name);
    for i in 0..=len {
        let sname = format!("{name}_s{i}");
        b = if i == len {
            b.stop_state(&sname)
        } else if i > 0 && atomics.get(i - 1).copied().unwrap_or(false) {
            b.atomic_state(&sname)
        } else {
            b.state(&sname)
        };
    }
    b = b.initial(&format!("{name}_s0"));
    for i in 0..len {
        b = b.edge(
            &format!("{name}_s{i}"),
            &format!("{name}_m{i}"),
            &format!("{name}_s{}", i + 1),
        );
    }
    b.build(catalog)
        .expect("generated linear flow is well-formed")
}

/// A catalog holding messages for up to `flows` linear flows of length ≤ `len`.
fn shared_catalog(flows: usize, len: usize) -> Arc<MessageCatalog> {
    let mut c = MessageCatalog::new();
    for f in 0..flows {
        for i in 0..len {
            c.intern(&format!("f{f}_m{i}"), 1 + (i as u32 % 4));
        }
    }
    Arc::new(c)
}

fn binomial(n: u64, k: u64) -> u128 {
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * u128::from(n - i) / u128::from(i + 1);
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without atomic states, the product of two linear flows is the full
    /// grid: (a+1)(b+1) states, a(b+1)+b(a+1) edges, C(a+b, a) paths.
    #[test]
    fn product_of_linear_flows_is_a_grid(a in 1usize..6, b in 1usize..6) {
        let catalog = shared_catalog(2, 6);
        let fa = Arc::new(linear_flow(&catalog, "f0", a, &[]));
        let fb = Arc::new(linear_flow(&catalog, "f1", b, &[]));
        let u = InterleavedFlow::build(&[
            IndexedFlow::new(fa, FlowIndex(1)),
            IndexedFlow::new(fb, FlowIndex(1)),
        ]).unwrap();
        prop_assert_eq!(u.state_count(), (a + 1) * (b + 1));
        prop_assert_eq!(u.edge_count(), a * (b + 1) + b * (a + 1));
        prop_assert_eq!(path_count(&u), binomial((a + b) as u64, a as u64));
    }

    /// The atomic-state mutex invariant holds for every constructed product
    /// state, for arbitrary atomic markings.
    #[test]
    fn no_product_state_has_two_atomic_components(
        a in 1usize..5,
        b in 1usize..5,
        atoms_a in proptest::collection::vec(any::<bool>(), 4),
        atoms_b in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let catalog = shared_catalog(2, 5);
        let fa = Arc::new(linear_flow(&catalog, "f0", a, &atoms_a));
        let fb = Arc::new(linear_flow(&catalog, "f1", b, &atoms_b));
        let flows = [
            IndexedFlow::new(Arc::clone(&fa), FlowIndex(1)),
            IndexedFlow::new(Arc::clone(&fb), FlowIndex(1)),
        ];
        let u = InterleavedFlow::build(&flows).unwrap();
        for s in u.states() {
            let atomic = u
                .components(s)
                .iter()
                .zip(u.flows())
                .filter(|(c, f)| f.flow().is_atomic(**c))
                .count();
            prop_assert!(atomic <= 1, "state {} has {} atomic components", u.state_label(s), atomic);
        }
    }

    /// Path counting by DP always agrees with explicit enumeration, and the
    /// product is always acyclic.
    #[test]
    fn path_count_agrees_with_enumeration(
        a in 1usize..4,
        b in 1usize..4,
        atoms_a in proptest::collection::vec(any::<bool>(), 3),
        atoms_b in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let catalog = shared_catalog(2, 4);
        let fa = Arc::new(linear_flow(&catalog, "f0", a, &atoms_a));
        let fb = Arc::new(linear_flow(&catalog, "f1", b, &atoms_b));
        let u = InterleavedFlow::build(&[
            IndexedFlow::new(fa, FlowIndex(1)),
            IndexedFlow::new(fb, FlowIndex(1)),
        ]).unwrap();
        let _ = topological_order(&u); // must not panic: acyclic
        let counted = path_count(&u);
        let enumerated = executions(&u).count() as u128;
        prop_assert_eq!(counted, enumerated);
        prop_assert!(counted >= 1);
    }

    /// Every execution trace, restricted to one instance, replays that
    /// instance's linear message sequence in order.
    #[test]
    fn per_instance_order_is_preserved(
        a in 1usize..4,
        b in 1usize..4,
    ) {
        let catalog = shared_catalog(2, 4);
        let fa = Arc::new(linear_flow(&catalog, "f0", a, &[]));
        let fb = Arc::new(linear_flow(&catalog, "f1", b, &[]));
        let u = InterleavedFlow::build(&[
            IndexedFlow::new(Arc::clone(&fa), FlowIndex(1)),
            IndexedFlow::new(Arc::clone(&fb), FlowIndex(2)),
        ]).unwrap();
        for exec in executions(&u) {
            prop_assert_eq!(exec.len(), a + b);
            let first: Vec<_> = exec
                .trace()
                .iter()
                .filter(|im| im.index == FlowIndex(1))
                .map(|im| im.message)
                .collect();
            let expected: Vec<_> = fa.messages().to_vec();
            prop_assert_eq!(first, expected);
        }
    }

    /// Visible states are monotone: adding a message to a combination never
    /// shrinks the visible-state set.
    #[test]
    fn visible_states_monotone(
        a in 1usize..5,
        b in 1usize..5,
        pick in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let catalog = shared_catalog(2, 5);
        let fa = Arc::new(linear_flow(&catalog, "f0", a, &[]));
        let fb = Arc::new(linear_flow(&catalog, "f1", b, &[]));
        let u = InterleavedFlow::build(&[
            IndexedFlow::new(fa, FlowIndex(1)),
            IndexedFlow::new(fb, FlowIndex(1)),
        ]).unwrap();
        let alphabet = u.message_alphabet();
        let combo: Vec<_> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let small = u.visible_states(&combo).len();
        let full = u.visible_states(&alphabet).len();
        prop_assert!(small <= full);
        // The full alphabet sees every non-initial state of the product.
        prop_assert_eq!(full, u.state_count() - 1);
    }

    /// The text DSL round-trips arbitrary linear flows with atomic
    /// markings: parse(print(flow)) is structurally identical.
    #[test]
    fn dsl_round_trips_random_flows(
        len in 1usize..6,
        atomics in proptest::collection::vec(any::<bool>(), 5),
        widths in proptest::collection::vec(1u32..24, 6),
    ) {
        let mut c = MessageCatalog::new();
        for (i, &w) in widths.iter().enumerate().take(len) {
            c.intern(&format!("f0_m{i}"), w);
        }
        let catalog = Arc::new(c);
        let flow = linear_flow(&catalog, "f0", len, &atomics);
        let text = flow_to_text(&flow);
        let doc = parse_flows(&text).unwrap();
        let back = doc.flow("f0").unwrap();
        prop_assert_eq!(back.state_count(), flow.state_count());
        prop_assert_eq!(back.edge_count(), flow.edge_count());
        prop_assert_eq!(back.atomic_states().len(), flow.atomic_states().len());
        prop_assert_eq!(back.stop_states().len(), flow.stop_states().len());
        prop_assert_eq!(back.messages().len(), flow.messages().len());
        // Widths survive the round trip.
        for &m in flow.messages() {
            let name = catalog.name(m);
            let back_id = doc.catalog.get(name).unwrap();
            prop_assert_eq!(doc.catalog.width(back_id), catalog.width(m));
        }
        // Edge sequence (by state/message names) is identical.
        for (e1, e2) in flow.edges().iter().zip(back.edges()) {
            prop_assert_eq!(flow.state_name(e1.from), back.state_name(e2.from));
            prop_assert_eq!(flow.state_name(e1.to), back.state_name(e2.to));
            prop_assert_eq!(
                catalog.name(e1.message),
                doc.catalog.name(e2.message)
            );
        }
        // And structural equality agrees wholesale.
        prop_assert!(**back == flow, "parse(print(flow)) != flow");
    }

    /// `parse(f.dsl().to_string()) == f` for random *branching* DAGs:
    /// a chain with random forward skip edges and atomic markings.
    #[test]
    fn dsl_round_trip_is_identity_on_random_dags(
        len in 2usize..7,
        atomics in proptest::collection::vec(any::<bool>(), 6),
        skips in proptest::collection::vec(any::<u64>(), 16),
        widths in proptest::collection::vec(1u32..24, 32),
    ) {
        let mut c = MessageCatalog::new();
        let mut next_width = 0usize;
        let mut width = |c: &mut MessageCatalog, name: &str| {
            let w = widths[next_width % widths.len()];
            next_width += 1;
            c.intern(name, w);
        };
        for i in 0..len {
            width(&mut c, &format!("m{i}"));
        }
        let mut skip_pairs = Vec::new();
        let mut bit = 0usize;
        for i in 0..len.saturating_sub(1) {
            for j in (i + 2)..=len {
                let on = (skips[bit % skips.len()] >> (bit / skips.len())) & 1 == 1;
                bit += 1;
                if on {
                    width(&mut c, &format!("sk{i}_{j}"));
                    skip_pairs.push((i, j));
                }
            }
        }
        let catalog = Arc::new(c);
        let mut b = FlowBuilder::new("dag");
        for i in 0..=len {
            let name = format!("s{i}");
            b = if i == len {
                b.stop_state(&name)
            } else if i > 0 && atomics.get(i - 1).copied().unwrap_or(false) {
                b.atomic_state(&name)
            } else {
                b.state(&name)
            };
        }
        b = b.initial("s0");
        for i in 0..len {
            b = b.edge(&format!("s{i}"), &format!("m{i}"), &format!("s{}", i + 1));
        }
        for &(i, j) in &skip_pairs {
            b = b.edge(&format!("s{i}"), &format!("sk{i}_{j}"), &format!("s{j}"));
        }
        let flow = b.build(&catalog).expect("random DAG is well-formed");
        let doc = parse_flows(&flow.dsl().to_string()).unwrap();
        prop_assert_eq!(doc.flows.len(), 1);
        prop_assert!(*doc.flows[0] == flow, "parse(f.dsl()) != f");
    }
}
