//! Wire-seam fault injection: corrupting an encoded trace stream the way
//! silicon does.
//!
//! Frames in the pstrace wire format are *not* byte-aligned — a frame is
//! `frame_bits` wide and frame `k` starts at stream bit `k * frame_bits`.
//! Structural faults (duplicated frames, reordered frames, damage storms)
//! must therefore operate at frame granularity through
//! [`BitReader`]/[`BitWriter`] re-serialization, while bit flips and
//! truncation act on the final serialized bit stream. The injection order
//! is fixed (storm → duplicate → reorder → flips → truncate) so the
//! ledger is a pure function of `(plan, seed, input stream)`.

use pstrace_rng::Rng64;
use pstrace_wire::{BitReader, BitWriter, EncodedStream};

use crate::ledger::FaultLedger;
use crate::plan::{FaultGate, FaultKind, FaultPlan};

/// One frame extracted as `(value, width)` bit fields, ≤ 64 bits each.
type FrameWords = Vec<(u64, u32)>;

fn extract_frames(stream: &EncodedStream, frame_bits: u32) -> (Vec<FrameWords>, FrameWords) {
    let mut reader = BitReader::new(&stream.bytes, stream.bit_len);
    let complete = (stream.bit_len / u64::from(frame_bits)) as usize;
    let mut frames = Vec::with_capacity(complete);
    for _ in 0..complete {
        let mut words = Vec::with_capacity((frame_bits as usize).div_ceil(64));
        let mut remaining = frame_bits;
        while remaining > 0 {
            let take = remaining.min(64);
            let value = reader.read(take).expect("complete frame in bounds");
            words.push((value, take));
            remaining -= take;
        }
        frames.push(words);
    }
    // Partial trailing bits (possible after upstream truncation) survive
    // untouched at the end of the stream.
    let mut tail = Vec::new();
    while reader.remaining() > 0 {
        let take = (reader.remaining().min(64)) as u32;
        let value = reader.read(take).expect("tail in bounds");
        tail.push((value, take));
    }
    (frames, tail)
}

fn serialize(frames: &[FrameWords], tail: &[(u64, u32)], frame_bits: u32) -> EncodedStream {
    let mut writer = BitWriter::new();
    for frame in frames {
        for &(value, width) in frame {
            writer.write(value, width);
        }
    }
    for &(value, width) in tail {
        writer.write(value, width);
    }
    let bit_len = writer.bit_len();
    EncodedStream {
        bytes: writer.into_bytes(),
        bit_len,
        frames: (bit_len / u64::from(frame_bits)) as usize,
    }
}

/// Applies the wire- and session-seam faults of `plan` to an encoded
/// stream, returning the corrupted stream and appending every injected
/// fault to `ledger`. Draws only from `rng`, so identical
/// `(plan, rng state, stream)` produce identical output and ledger.
#[must_use]
pub fn corrupt_wire(
    plan: &FaultPlan,
    session: u64,
    frame_bits: u32,
    stream: &EncodedStream,
    rng: &mut Rng64,
    ledger: &mut FaultLedger,
) -> EncodedStream {
    let (mut frames, tail) = extract_frames(stream, frame_bits);

    // Session seam: a damage storm stomps a contiguous run of frames
    // with noise — the model of a dead trace-buffer bank. Decoded, the
    // run becomes a burst of damaged frames that empties the online
    // localizer frontier.
    if !frames.is_empty()
        && plan.session.damage_storm > 0.0
        && rng.gen_f64() < plan.session.damage_storm
    {
        let span = ((frames.len() as f64 * plan.session.storm_frames) as usize).max(1);
        let span = span.min(frames.len());
        let start = rng.gen_index(frames.len() - span + 1);
        for frame in &mut frames[start..start + span] {
            for (value, width) in frame.iter_mut() {
                let mask = if *width == 64 {
                    u64::MAX
                } else {
                    (1u64 << *width) - 1
                };
                *value = rng.next_u64() & mask;
            }
        }
        ledger.record(session, FaultKind::DamageStorm, start as u64, span as u64);
    }

    // Frame duplication: the buffer read-out replays a frame.
    if plan.wire.duplicate_frame > 0.0 {
        let mut duplicated = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            duplicated.push(frame.clone());
            if rng.gen_f64() < plan.wire.duplicate_frame {
                duplicated.push(frame.clone());
                ledger.record(session, FaultKind::DuplicateFrame, i as u64, 1);
            }
        }
        frames = duplicated;
    }

    // Adjacent-frame reorder: two frames swap places (skewed read-out).
    if plan.wire.reorder_frames > 0.0 && frames.len() >= 2 {
        let mut i = 0;
        while i + 1 < frames.len() {
            if rng.gen_f64() < plan.wire.reorder_frames {
                frames.swap(i, i + 1);
                ledger.record(session, FaultKind::ReorderFrames, i as u64, 2);
                i += 2; // a swapped pair is not re-drawn
            } else {
                i += 1;
            }
        }
    }

    let mut out = serialize(&frames, &tail, frame_bits);

    // Bit flips over the serialized stream, shaped by the burst model.
    if plan.wire.bit_flip > 0.0 && out.bit_len > 0 {
        let mut gate = FaultGate::new(plan.wire.bit_flip, plan.wire.burst);
        for bit in 0..out.bit_len {
            if gate.fires(rng) {
                out.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                ledger.record(session, FaultKind::BitFlip, bit, 1);
            }
        }
    }

    // Truncation: the capture ends mid-frame (power loss, buffer cut).
    if plan.wire.truncate > 0.0 && out.bit_len > 1 && rng.gen_f64() < plan.wire.truncate {
        let cut = rng.gen_range_u64(1, out.bit_len - 1);
        let removed = out.bit_len - cut;
        out.bit_len = cut;
        out.bytes.truncate((cut as usize).div_ceil(8));
        // Zero the dead bits of the final partial byte so the stream is
        // a valid zero-padded bit buffer.
        let live = (cut % 8) as u32;
        if live != 0 {
            if let Some(last) = out.bytes.last_mut() {
                *last &= (1u16 << live).wrapping_sub(1) as u8;
            }
        }
        out.frames = (out.bit_len / u64::from(frame_bits)) as usize;
        ledger.record(session, FaultKind::Truncate, cut, removed);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BurstModel;

    fn toy_stream(frame_bits: u32, frames: usize) -> EncodedStream {
        let mut w = BitWriter::new();
        for k in 0..frames {
            let mut remaining = frame_bits;
            let mut word = 0;
            while remaining > 0 {
                let take = remaining.min(64);
                let mask = if take == 64 {
                    u64::MAX
                } else {
                    (1u64 << take) - 1
                };
                w.write(
                    (k as u64).wrapping_mul(0x9e37).wrapping_add(word) & mask,
                    take,
                );
                remaining -= take;
                word += 1;
            }
        }
        let bit_len = w.bit_len();
        EncodedStream {
            bytes: w.into_bytes(),
            bit_len,
            frames,
        }
    }

    #[test]
    fn quiet_plan_is_the_identity() {
        let stream = toy_stream(77, 40);
        let plan = FaultPlan::quiet(1);
        let mut rng = plan.session_rng(0);
        let mut ledger = FaultLedger::new();
        let out = corrupt_wire(&plan, 0, 77, &stream, &mut rng, &mut ledger);
        assert_eq!(out.bytes, stream.bytes);
        assert_eq!(out.bit_len, stream.bit_len);
        assert_eq!(out.frames, stream.frames);
        assert!(ledger.is_empty());
    }

    #[test]
    fn same_seed_same_corruption_and_ledger() {
        let stream = toy_stream(131, 200);
        let plan = FaultPlan::heavy(42);
        let run = |session| {
            let mut rng = plan.session_rng(session);
            let mut ledger = FaultLedger::new();
            let out = corrupt_wire(&plan, session, 131, &stream, &mut rng, &mut ledger);
            (out, ledger)
        };
        let (a, la) = run(7);
        let (b, lb) = run(7);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.bit_len, b.bit_len);
        assert_eq!(la.fingerprint(), lb.fingerprint());
        assert_eq!(la.events(), lb.events());
        assert!(!la.is_empty(), "heavy plan injected nothing");
        let (c, lc) = run(8);
        assert!(
            c.bytes != a.bytes || lc.fingerprint() != la.fingerprint(),
            "different sessions should diverge"
        );
    }

    #[test]
    fn duplicate_and_reorder_change_frame_structure_only() {
        let stream = toy_stream(64, 50);
        let mut plan = FaultPlan::quiet(3);
        plan.wire.duplicate_frame = 0.2;
        plan.wire.reorder_frames = 0.2;
        let mut rng = plan.session_rng(0);
        let mut ledger = FaultLedger::new();
        let out = corrupt_wire(&plan, 0, 64, &stream, &mut rng, &mut ledger);
        let dups = ledger.counts().get("duplicate-frame").copied().unwrap_or(0);
        assert!(dups > 0, "no duplicates at 20%");
        assert_eq!(out.frames, 50 + dups);
        assert_eq!(out.bit_len % 64, 0);
    }

    #[test]
    fn truncation_cuts_and_zero_pads() {
        let stream = toy_stream(77, 100);
        let mut plan = FaultPlan::quiet(5);
        plan.wire.truncate = 1.0;
        let mut rng = plan.session_rng(0);
        let mut ledger = FaultLedger::new();
        let out = corrupt_wire(&plan, 0, 77, &stream, &mut rng, &mut ledger);
        assert!(out.bit_len < stream.bit_len);
        assert_eq!(out.bytes.len(), (out.bit_len as usize).div_ceil(8));
        let live = (out.bit_len % 8) as u32;
        if live != 0 {
            let dead_mask = !(((1u16 << live) - 1) as u8);
            assert_eq!(out.bytes.last().unwrap() & dead_mask, 0, "dead bits dirty");
        }
        assert_eq!(ledger.counts()["truncate"], 1);
    }

    #[test]
    fn bit_flips_touch_only_flipped_positions() {
        let stream = toy_stream(90, 80);
        let mut plan = FaultPlan::quiet(9);
        plan.wire.bit_flip = 0.01;
        plan.wire.burst = BurstModel::Uniform;
        let mut rng = plan.session_rng(0);
        let mut ledger = FaultLedger::new();
        let out = corrupt_wire(&plan, 0, 90, &stream, &mut rng, &mut ledger);
        assert_eq!(out.bit_len, stream.bit_len);
        // Flipping each ledgered bit back must restore the original.
        let mut restored = out.bytes.clone();
        for ev in ledger.events() {
            restored[(ev.position / 8) as usize] ^= 1 << (ev.position % 8);
        }
        assert_eq!(restored, stream.bytes);
        assert!(!ledger.is_empty());
    }

    #[test]
    fn storm_stays_inside_the_stream() {
        let stream = toy_stream(100, 60);
        let mut plan = FaultPlan::quiet(13);
        plan.session.damage_storm = 1.0;
        plan.session.storm_frames = 0.25;
        let mut rng = plan.session_rng(0);
        let mut ledger = FaultLedger::new();
        let out = corrupt_wire(&plan, 0, 100, &stream, &mut rng, &mut ledger);
        assert_eq!(out.bit_len, stream.bit_len);
        let ev = &ledger.events()[0];
        assert_eq!(ev.kind, FaultKind::DamageStorm);
        assert!(ev.position as usize + ev.magnitude as usize <= 60);
        assert_eq!(ev.magnitude, 15);
    }
}
