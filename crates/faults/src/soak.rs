//! The soak harness: all three fault seams against a live in-process
//! daemon, scored for survival.
//!
//! [`run_soak`] spins up a real [`pstrace_stream::Server`] on a loopback
//! socket, then replays a synthetic scenario-1 capture through it once
//! per session — each capture corrupted at the wire seam by
//! [`corrupt_wire`](crate::corrupt_wire), each transport wrapped in a
//! [`ChaosStream`], each session driven by the hardened resumable client
//! so transport deaths exercise the park/resume path. Afterward it
//! streams one *clean* probe session and checks the daemon's
//! localization line against the batch pipeline's — the proof that the
//! storm neither killed the daemon nor bent its answers.
//!
//! Fleet mode: [`SoakConfig::concurrency`] fans the storm out over that
//! many client threads against a daemon running
//! [`SoakConfig::shards`] shard workers, which is how the `fleet`
//! bench measures aggregate ingest throughput. Determinism survives the
//! fan-out: every injector draws only from forks of
//! [`FaultPlan::session_rng`], each session keeps its own pair of
//! ledgers, and the merged [`FaultLedger`] absorbs them in session
//! order after the storm — so for plans without reconnect-path
//! transport faults (see [`FaultPlan::without_reconnect_faults`]) the
//! fingerprint is a pure function of the plan, at any concurrency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::mem;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pstrace_core::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace_diag::{localize, MatchMode};
use pstrace_flow::{FlowIndex, IndexedMessage};
use pstrace_obs::{FlightHandle, FlightRecorder, FlightSnapshot, Registry, Sample};
use pstrace_soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace_stream::{
    next_trace_id, observed_messages, stream_ptw, stream_ptw_resumable_traced, RetryPolicy, Server,
    ServerConfig, StatsSnapshot,
};
use pstrace_wire::{decode_stream, encode_records, write_ptw, EncodedStream, WireRecord};

use crate::chaos::ChaosStream;
use crate::ledger::FaultLedger;
use crate::plan::FaultPlan;
use crate::wire::corrupt_wire;

/// Tenant ids cycle over this many distinct tenants so the daemon's
/// per-tenant accounting is always exercised, quota or no quota.
const TENANT_CYCLE: u64 = 4;

/// Knobs of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The fault plan (kinds × rates × burst models), including the seed.
    pub plan: FaultPlan,
    /// Faulted sessions to replay (one corrupted capture each).
    pub sessions: usize,
    /// Synthetic records per capture.
    pub records: usize,
    /// Client chunk size in bytes.
    pub chunk_bytes: usize,
    /// Daemon shard workers.
    pub shards: usize,
    /// Client threads driving the storm (1 = sequential).
    pub concurrency: usize,
    /// When set, the daemon spills its flight journal here (`.ptw` v2):
    /// on shutdown and, debounced, whenever a degradation path fires.
    pub flight_dump: Option<PathBuf>,
}

impl SoakConfig {
    /// A soak over `plan` with defaults sized for an interactive run.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        SoakConfig {
            plan,
            sessions: 8,
            records: 2_000,
            chunk_bytes: 256,
            shards: 2,
            concurrency: 1,
            flight_dump: None,
        }
    }
}

/// What a soak run produced, with the survival verdict attached.
#[derive(Debug)]
pub struct SoakReport {
    /// The seed the whole run derived from.
    pub seed: u64,
    /// Sessions replayed under fault injection.
    pub sessions: usize,
    /// Faulted sessions the daemon completed with a report.
    pub completed: usize,
    /// Faulted sessions that failed *gracefully* (typed error, no panic).
    pub failed: usize,
    /// Daemon shard workers the storm ran against.
    pub shards: usize,
    /// Client threads that drove the storm.
    pub concurrency: usize,
    /// Wall-clock duration of the storm (excludes fixture build and the
    /// clean probe).
    pub elapsed: Duration,
    /// Aggregate ingest rate: records of *completed* sessions over
    /// [`SoakReport::elapsed`].
    pub records_per_sec: f64,
    /// Every fault injected, merged across seams in session order.
    pub ledger: FaultLedger,
    /// The daemon's aggregated counters after the storm.
    pub snapshot: StatsSnapshot,
    /// `pstrace_degradation_events_total` by `path` label.
    pub degradations: BTreeMap<String, u64>,
    /// The daemon's flight journal after the storm (pre-shutdown), so
    /// callers can cross-check it against the counters.
    pub flight: FlightSnapshot,
    /// Whether the post-storm clean probe completed at all.
    pub probe_completed: bool,
    /// Whether the probe's localization line was bit-identical to the
    /// batch pipeline's on the same clean capture.
    pub probe_matches_batch: bool,
    /// The localization line the batch pipeline computed.
    pub batch_localization: String,
}

impl SoakReport {
    /// The survival criteria of the harness: no worker panics escaped,
    /// and after the storm the daemon served a clean session whose
    /// localization is bit-identical to the batch pipeline's.
    ///
    /// # Errors
    ///
    /// Every violated criterion, newline-joined.
    pub fn survival(&self) -> Result<(), String> {
        let mut violations = Vec::new();
        if self.snapshot.worker_panics > 0 {
            violations.push(format!(
                "{} worker panic(s) escaped a session",
                self.snapshot.worker_panics
            ));
        }
        if !self.probe_completed {
            violations.push("the post-storm clean probe did not complete".to_owned());
        } else if !self.probe_matches_batch {
            violations
                .push("the clean probe's localization diverged from the batch pipeline".to_owned());
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("\n"))
        }
    }

    /// Renders the survival report (ledger, daemon counters, verdict).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos soak      : seed {}, {} sessions ({} completed, {} failed gracefully)",
            self.seed, self.sessions, self.completed, self.failed
        );
        let _ = writeln!(
            out,
            "throughput      : {:.2}s across {} shard(s) × {} client(s) → {:.0} records/s",
            self.elapsed.as_secs_f64(),
            self.shards,
            self.concurrency,
            self.records_per_sec
        );
        out.push_str(&self.ledger.render());
        let _ = writeln!(
            out,
            "daemon          : {} sessions, {} parked, {} resumed, {} shed, {} handoffs, {} worker panics, {} accept retries",
            self.snapshot.sessions,
            self.snapshot.parked,
            self.snapshot.resumed,
            self.snapshot.shed,
            self.snapshot.handoffs,
            self.snapshot.worker_panics,
            self.snapshot.accept_retries
        );
        if self.degradations.is_empty() {
            let _ = writeln!(out, "degradations    : none");
        } else {
            let _ = writeln!(out, "degradations    :");
            for (path, count) in &self.degradations {
                let _ = writeln!(out, "  {path:<16}: {count}");
            }
        }
        let _ = writeln!(
            out,
            "flight journal  : {} events captured ({} recorded, {} overwritten)",
            self.flight.events.len(),
            self.flight.recorded,
            self.flight.overwritten
        );
        let probe = if !self.probe_completed {
            "FAILED"
        } else if self.probe_matches_batch {
            "clean, bit-identical to batch"
        } else {
            "completed but DIVERGED from batch"
        };
        let _ = writeln!(out, "clean probe     : {probe}");
        let _ = match self.survival() {
            Ok(()) => writeln!(out, "verdict         : survived"),
            Err(v) => writeln!(out, "verdict         : FAILED\n{v}"),
        };
        out
    }
}

/// The scenario-1 soak fixture (mirrors the ingest bench): interleaved
/// flow, selection-derived schema, and a synthetic encoded stream.
/// Shared with the crash harness, which replays the clean capture and
/// checks the same batch localization line.
pub(crate) struct Fixture {
    pub(crate) model: Arc<SocModel>,
    pub(crate) schema: pstrace_wire::WireSchema,
    pub(crate) encoded: EncodedStream,
    pub(crate) clean_ptw: Vec<u8>,
    pub(crate) batch_localization: String,
}

pub(crate) fn build_fixture(records: usize) -> Result<Fixture, String> {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer =
        TraceBufferSpec::new(32).map_err(|e| format!("trace buffer spec rejected: {e}"))?;
    let flow = scenario
        .interleaving(&model)
        .map_err(|e| format!("scenario does not interleave: {e}"))?;
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .map_err(|e| format!("selection failed: {e}"))?;
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits())
        .map_err(|e| format!("schema does not fit the buffer: {e}"))?;
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).map_err(|e| format!("encode: {e}"))?;
    let clean_ptw = write_ptw(model.catalog(), &schema, &encoded);

    // The batch pipeline's answer on the clean capture — the line the
    // post-storm probe must reproduce bit-for-bit.
    let report = decode_stream(&schema, &encoded.bytes, Some(encoded.bit_len));
    let observed: Vec<IndexedMessage> = report.records.iter().map(|r| r.message).collect();
    let selected = observed_messages(&schema);
    let loc = localize(&flow, &observed, &selected, MatchMode::Prefix);
    let batch_localization = format!(
        "  localization    : {} of {} interleaved-flow paths ({:.2}%)",
        loc.consistent,
        loc.total,
        loc.fraction() * 100.0
    );

    Ok(Fixture {
        model: Arc::new(model),
        schema,
        encoded,
        clean_ptw,
        batch_localization,
    })
}

/// What one storm session left behind: its verdict and its two
/// per-seam ledgers, merged into the run ledger in session order.
struct SessionOutcome {
    ok: bool,
    wire: FaultLedger,
    transport: FaultLedger,
}

/// One storm session end to end: corrupt the capture at the wire seam,
/// replay it through a chaos-wrapped resumable client. Runs on whichever
/// client thread claimed the session index; all randomness forks from
/// `plan.session_rng(s)`, so the outcome ledgers are independent of
/// thread interleaving.
fn run_one_session(
    s: usize,
    fixture: &Fixture,
    plan: &FaultPlan,
    addr: SocketAddr,
    policy: RetryPolicy,
    chunk_bytes: usize,
    flight: &Arc<FlightRecorder>,
) -> SessionOutcome {
    let session = s as u64;
    let srng = plan.session_rng(session);
    // One trace id for the whole logical session: every reconnect's
    // hello carries it, and every injected fault is journaled under it,
    // so the flight timeline shows cause (chaos) and effect (park,
    // resume, damage) on one thread. Lane 0: injected faults are
    // external stimulus, daemon scope.
    let trace = next_trace_id();
    let fault_handle = FlightHandle::new(Arc::clone(flight), 0, trace, session);

    let mut wire_rng = srng.fork(1);
    let mut wire = FaultLedger::new();
    let corrupted = corrupt_wire(
        plan,
        session,
        fixture.schema.frame_bits(),
        &fixture.encoded,
        &mut wire_rng,
        &mut wire,
    );
    let ptw = write_ptw(fixture.model.catalog(), &fixture.schema, &corrupted);

    let transport_ledger = Arc::new(Mutex::new(FaultLedger::new()));
    let connector_ledger = Arc::clone(&transport_ledger);
    let transport_faults = plan.transport;
    let result = stream_ptw_resumable_traced(
        move |attempt| -> io::Result<ChaosStream<TcpStream>> {
            let stream = TcpStream::connect_timeout(&addr, policy.connect_timeout)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(policy.read_timeout)).ok();
            Ok(ChaosStream::with_ledger(
                stream,
                transport_faults,
                srng.fork(0x7a_0000 + u64::from(attempt)),
                session,
                Arc::clone(&connector_ledger),
            )
            .with_flight(fault_handle.clone()))
        },
        fixture.model.catalog(),
        1,
        MatchMode::Prefix,
        (session % TENANT_CYCLE) as u32,
        trace,
        &ptw,
        chunk_bytes,
        &policy,
    );

    let transport = mem::take(
        &mut *transport_ledger
            .lock()
            .expect("transport ledger lock poisoned"),
    );
    SessionOutcome {
        ok: result.is_ok(),
        wire,
        transport,
    }
}

/// Runs one seeded soak: `config.sessions` corrupted replays through a
/// live daemon (fanned out over `config.concurrency` client threads),
/// then the clean probe. See the module docs for the determinism
/// contract.
///
/// # Errors
///
/// Only harness-construction failures (fixture or bind); fault-induced
/// session failures are *data*, reported in the [`SoakReport`].
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    let plan = &config.plan;
    let fixture = build_fixture(config.records.max(1))?;
    let registry = Arc::new(Registry::new());
    let concurrency = config.concurrency.max(1);

    // Sequential storms keep the server's read timeout well under the
    // client backoff: a dead transport must be parked before the
    // client's resume arrives. Fleet storms widen both daemon deadlines
    // — with hundreds of client threads contending for cores, a healthy
    // session can legitimately go quiet for longer than 150 ms.
    let (read_timeout, handshake_timeout) = if concurrency == 1 {
        (Duration::from_millis(150), Duration::from_millis(500))
    } else {
        (Duration::from_secs(2), Duration::from_secs(5))
    };
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: config.shards.max(1),
        read_timeout,
        handshake_timeout,
        resume_grace: Duration::from_secs(10),
        flight_dump: config.flight_dump.clone(),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with_registry(
        Arc::clone(&fixture.model),
        &server_config,
        Arc::clone(&registry),
    )
    .map_err(|e| format!("daemon failed to bind: {e}"))?;
    let addr = server.local_addr();

    let policy = RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(1),
        max_reconnects: 6,
        initial_backoff: Duration::from_millis(500),
        max_backoff: Duration::from_secs(1),
    };
    let chunk_bytes = config.chunk_bytes.max(1);

    // The storm. Client threads claim session indices from a shared
    // counter; each session's outcome lands in its own slot so the
    // merged ledger can absorb them in session order afterward —
    // fingerprints are interleaving-independent.
    let slots: Vec<OnceLock<SessionOutcome>> =
        (0..config.sessions).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = concurrency.min(config.sessions.max(1));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= config.sessions {
                    break;
                }
                let outcome = run_one_session(
                    s,
                    &fixture,
                    plan,
                    addr,
                    policy,
                    chunk_bytes,
                    server.flight_recorder(),
                );
                let _ = slots[s].set(outcome);
            });
        }
    });
    let elapsed = started.elapsed();

    let mut ledger = FaultLedger::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    for slot in slots {
        let outcome = slot.into_inner().expect("every claimed session reports");
        if outcome.ok {
            completed += 1;
        } else {
            failed += 1;
        }
        ledger.absorb(&outcome.wire);
        ledger.absorb(&outcome.transport);
    }
    let records_per_sec = if elapsed.as_secs_f64() > 0.0 {
        (completed * config.records.max(1)) as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };

    for (kind, count) in ledger.counts() {
        registry
            .counter_with("pstrace_faults_injected_total", &[("kind", kind)])
            .add(count as u64);
    }

    // The clean probe: one undamaged capture through the plain client.
    // The daemon must still accept it and answer exactly like batch.
    let probe = stream_ptw(
        addr,
        fixture.model.catalog(),
        1,
        MatchMode::Prefix,
        &fixture.clean_ptw,
        chunk_bytes,
    );
    let (probe_completed, probe_matches_batch) = match &probe {
        Ok(report) => (true, report.contains(&fixture.batch_localization)),
        Err(_) => (false, false),
    };

    // Counters live across the root registry *and* every shard's — the
    // server's own merge is the only honest aggregate.
    let snapshot = server.snapshot();
    let mut degradations = BTreeMap::new();
    for (key, sample) in server.merged_samples() {
        if key.name() != "pstrace_degradation_events_total" {
            continue;
        }
        let Sample::Counter(v) = sample else { continue };
        for (label, value) in key.labels() {
            if label == "path" {
                *degradations.entry(value.clone()).or_insert(0) += v;
            }
        }
    }
    // Journal read-out before shutdown, so it is consistent with the
    // counters above (shutdown appends Drain/Shutdown events).
    let flight = server.flight_snapshot();
    server.shutdown();

    Ok(SoakReport {
        seed: plan.seed,
        sessions: config.sessions,
        completed,
        failed,
        shards: config.shards.max(1),
        concurrency,
        elapsed,
        records_per_sec,
        ledger,
        snapshot,
        degradations,
        flight,
        probe_completed,
        probe_matches_batch,
        batch_localization: fixture.batch_localization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_soak_completes_every_session_and_matches_batch() {
        let mut config = SoakConfig::new(FaultPlan::quiet(3));
        config.sessions = 2;
        config.records = 300;
        let report = run_soak(&config).expect("harness builds");
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 0);
        assert!(report.ledger.is_empty());
        assert!(report.probe_matches_batch, "{}", report.render());
        report.survival().expect("quiet soak survives");
    }

    #[test]
    fn deterministic_plan_reproduces_its_fingerprint() {
        let mut config = SoakConfig::new(FaultPlan::standard(41).without_reconnect_faults());
        config.sessions = 2;
        config.records = 400;
        let a = run_soak(&config).expect("harness builds");
        let b = run_soak(&config).expect("harness builds");
        assert!(!a.ledger.is_empty());
        assert_eq!(a.ledger.fingerprint(), b.ledger.fingerprint());
        assert_eq!(a.ledger.len(), b.ledger.len());
        a.survival().expect("soak survives");
    }

    #[test]
    fn concurrent_storm_matches_the_sequential_fingerprint() {
        let mut config = SoakConfig::new(FaultPlan::standard(77).without_reconnect_faults());
        config.sessions = 6;
        config.records = 200;
        config.shards = 3;
        let sequential = run_soak(&config).expect("harness builds");
        config.concurrency = 6;
        let concurrent = run_soak(&config).expect("harness builds");
        assert!(!sequential.ledger.is_empty());
        assert_eq!(
            sequential.ledger.fingerprint(),
            concurrent.ledger.fingerprint()
        );
        assert_eq!(
            sequential.completed + sequential.failed,
            concurrent.completed + concurrent.failed
        );
        concurrent.survival().expect("concurrent soak survives");
    }
}
