//! The soak harness: all three fault seams against a live in-process
//! daemon, scored for survival.
//!
//! [`run_soak`] spins up a real [`pstrace_stream::Server`] on a loopback
//! socket, then replays a synthetic scenario-1 capture through it once
//! per session — each capture corrupted at the wire seam by
//! [`corrupt_wire`](crate::corrupt_wire), each transport wrapped in a
//! [`ChaosStream`], each session driven by the hardened resumable client
//! so transport deaths exercise the park/resume path. Afterward it
//! streams one *clean* probe session and checks the daemon's
//! localization line against the batch pipeline's — the proof that the
//! storm neither killed the daemon nor bent its answers.
//!
//! Determinism: session loops run sequentially and every injector draws
//! from forks of [`FaultPlan::session_rng`], so for plans without
//! reconnect-path transport faults (see
//! [`FaultPlan::without_reconnect_faults`]) the merged
//! [`FaultLedger`] fingerprint is a pure function of the plan.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::mem;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pstrace_core::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace_diag::{localize, MatchMode};
use pstrace_flow::{FlowIndex, IndexedMessage};
use pstrace_obs::{Registry, Sample};
use pstrace_soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace_stream::{
    observed_messages, snapshot_from, stream_ptw, stream_ptw_resumable, RetryPolicy, Server,
    ServerConfig, StatsSnapshot,
};
use pstrace_wire::{decode_stream, encode_records, write_ptw, EncodedStream, WireRecord};

use crate::chaos::ChaosStream;
use crate::ledger::FaultLedger;
use crate::plan::FaultPlan;
use crate::wire::corrupt_wire;

/// Knobs of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The fault plan (kinds × rates × burst models), including the seed.
    pub plan: FaultPlan,
    /// Faulted sessions to replay (one corrupted capture each).
    pub sessions: usize,
    /// Synthetic records per capture.
    pub records: usize,
    /// Client chunk size in bytes.
    pub chunk_bytes: usize,
    /// Daemon worker threads.
    pub threads: usize,
}

impl SoakConfig {
    /// A soak over `plan` with defaults sized for an interactive run.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        SoakConfig {
            plan,
            sessions: 8,
            records: 2_000,
            chunk_bytes: 256,
            threads: 2,
        }
    }
}

/// What a soak run produced, with the survival verdict attached.
#[derive(Debug)]
pub struct SoakReport {
    /// The seed the whole run derived from.
    pub seed: u64,
    /// Sessions replayed under fault injection.
    pub sessions: usize,
    /// Faulted sessions the daemon completed with a report.
    pub completed: usize,
    /// Faulted sessions that failed *gracefully* (typed error, no panic).
    pub failed: usize,
    /// Every fault injected, merged across seams in session order.
    pub ledger: FaultLedger,
    /// The daemon's aggregated counters after the storm.
    pub snapshot: StatsSnapshot,
    /// `pstrace_degradation_events_total` by `path` label.
    pub degradations: BTreeMap<String, u64>,
    /// Whether the post-storm clean probe completed at all.
    pub probe_completed: bool,
    /// Whether the probe's localization line was bit-identical to the
    /// batch pipeline's on the same clean capture.
    pub probe_matches_batch: bool,
    /// The localization line the batch pipeline computed.
    pub batch_localization: String,
}

impl SoakReport {
    /// The survival criteria of the harness: no worker panics escaped,
    /// and after the storm the daemon served a clean session whose
    /// localization is bit-identical to the batch pipeline's.
    ///
    /// # Errors
    ///
    /// Every violated criterion, newline-joined.
    pub fn survival(&self) -> Result<(), String> {
        let mut violations = Vec::new();
        if self.snapshot.worker_panics > 0 {
            violations.push(format!(
                "{} worker panic(s) escaped a session",
                self.snapshot.worker_panics
            ));
        }
        if !self.probe_completed {
            violations.push("the post-storm clean probe did not complete".to_owned());
        } else if !self.probe_matches_batch {
            violations
                .push("the clean probe's localization diverged from the batch pipeline".to_owned());
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("\n"))
        }
    }

    /// Renders the survival report (ledger, daemon counters, verdict).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos soak      : seed {}, {} sessions ({} completed, {} failed gracefully)",
            self.seed, self.sessions, self.completed, self.failed
        );
        out.push_str(&self.ledger.render());
        let _ = writeln!(
            out,
            "daemon          : {} sessions, {} parked, {} resumed, {} worker panics, {} accept retries",
            self.snapshot.sessions,
            self.snapshot.parked,
            self.snapshot.resumed,
            self.snapshot.worker_panics,
            self.snapshot.accept_retries
        );
        if self.degradations.is_empty() {
            let _ = writeln!(out, "degradations    : none");
        } else {
            let _ = writeln!(out, "degradations    :");
            for (path, count) in &self.degradations {
                let _ = writeln!(out, "  {path:<16}: {count}");
            }
        }
        let probe = if !self.probe_completed {
            "FAILED"
        } else if self.probe_matches_batch {
            "clean, bit-identical to batch"
        } else {
            "completed but DIVERGED from batch"
        };
        let _ = writeln!(out, "clean probe     : {probe}");
        let _ = match self.survival() {
            Ok(()) => writeln!(out, "verdict         : survived"),
            Err(v) => writeln!(out, "verdict         : FAILED\n{v}"),
        };
        out
    }
}

/// The scenario-1 soak fixture (mirrors the ingest bench): interleaved
/// flow, selection-derived schema, and a synthetic encoded stream.
struct Fixture {
    model: Arc<SocModel>,
    schema: pstrace_wire::WireSchema,
    encoded: EncodedStream,
    clean_ptw: Vec<u8>,
    batch_localization: String,
}

fn build_fixture(records: usize) -> Result<Fixture, String> {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer =
        TraceBufferSpec::new(32).map_err(|e| format!("trace buffer spec rejected: {e}"))?;
    let flow = scenario
        .interleaving(&model)
        .map_err(|e| format!("scenario does not interleave: {e}"))?;
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .map_err(|e| format!("selection failed: {e}"))?;
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits())
        .map_err(|e| format!("schema does not fit the buffer: {e}"))?;
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).map_err(|e| format!("encode: {e}"))?;
    let clean_ptw = write_ptw(model.catalog(), &schema, &encoded);

    // The batch pipeline's answer on the clean capture — the line the
    // post-storm probe must reproduce bit-for-bit.
    let report = decode_stream(&schema, &encoded.bytes, Some(encoded.bit_len));
    let observed: Vec<IndexedMessage> = report.records.iter().map(|r| r.message).collect();
    let selected = observed_messages(&schema);
    let loc = localize(&flow, &observed, &selected, MatchMode::Prefix);
    let batch_localization = format!(
        "  localization    : {} of {} interleaved-flow paths ({:.2}%)",
        loc.consistent,
        loc.total,
        loc.fraction() * 100.0
    );

    Ok(Fixture {
        model: Arc::new(model),
        schema,
        encoded,
        clean_ptw,
        batch_localization,
    })
}

/// Runs one seeded soak: `config.sessions` corrupted replays through a
/// live daemon, then the clean probe. See the module docs for the
/// determinism contract.
///
/// # Errors
///
/// Only harness-construction failures (fixture or bind); fault-induced
/// session failures are *data*, reported in the [`SoakReport`].
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    let plan = &config.plan;
    let fixture = build_fixture(config.records.max(1))?;
    let registry = Arc::new(Registry::new());

    // Server read timeout well under the client backoff: a dead
    // transport must be parked before the client's resume arrives.
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: config.threads.max(1),
        read_timeout: Duration::from_millis(150),
        handshake_timeout: Duration::from_millis(500),
        resume_grace: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with_registry(
        Arc::clone(&fixture.model),
        &server_config,
        Arc::clone(&registry),
    )
    .map_err(|e| format!("daemon failed to bind: {e}"))?;
    let addr = server.local_addr();

    let policy = RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(1),
        max_reconnects: 6,
        initial_backoff: Duration::from_millis(500),
        max_backoff: Duration::from_secs(1),
    };

    let mut ledger = FaultLedger::new();
    let mut completed = 0usize;
    let mut failed = 0usize;

    // Sessions run sequentially: the merged ledger's event order (wire
    // seam, then transport seam, per session) is part of the contract.
    for s in 0..config.sessions {
        let session = s as u64;
        let srng = plan.session_rng(session);

        let mut wire_rng = srng.fork(1);
        let mut wire_ledger = FaultLedger::new();
        let corrupted = corrupt_wire(
            plan,
            session,
            fixture.schema.frame_bits(),
            &fixture.encoded,
            &mut wire_rng,
            &mut wire_ledger,
        );
        let ptw = write_ptw(fixture.model.catalog(), &fixture.schema, &corrupted);

        let transport_ledger = Arc::new(Mutex::new(FaultLedger::new()));
        let connector_ledger = Arc::clone(&transport_ledger);
        let transport = plan.transport;
        let result = stream_ptw_resumable(
            move |attempt| -> io::Result<ChaosStream<TcpStream>> {
                let stream = TcpStream::connect_timeout(&addr, policy.connect_timeout)?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(policy.read_timeout)).ok();
                Ok(ChaosStream::with_ledger(
                    stream,
                    transport,
                    srng.fork(0x7a_0000 + u64::from(attempt)),
                    session,
                    Arc::clone(&connector_ledger),
                ))
            },
            fixture.model.catalog(),
            1,
            MatchMode::Prefix,
            &ptw,
            config.chunk_bytes.max(1),
            &policy,
        );
        match result {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }

        ledger.absorb(&wire_ledger);
        let drained = mem::take(
            &mut *transport_ledger
                .lock()
                .expect("transport ledger lock poisoned"),
        );
        ledger.absorb(&drained);
    }

    for (kind, count) in ledger.counts() {
        registry
            .counter_with("pstrace_faults_injected_total", &[("kind", kind)])
            .add(count as u64);
    }

    // The clean probe: one undamaged capture through the plain client.
    // The daemon must still accept it and answer exactly like batch.
    let probe = stream_ptw(
        addr,
        fixture.model.catalog(),
        1,
        MatchMode::Prefix,
        &fixture.clean_ptw,
        config.chunk_bytes.max(1),
    );
    let (probe_completed, probe_matches_batch) = match &probe {
        Ok(report) => (true, report.contains(&fixture.batch_localization)),
        Err(_) => (false, false),
    };

    let snapshot = snapshot_from(&registry);
    let mut degradations = BTreeMap::new();
    for (key, sample) in registry.samples() {
        if key.name() != "pstrace_degradation_events_total" {
            continue;
        }
        let Sample::Counter(v) = sample else { continue };
        for (label, value) in key.labels() {
            if label == "path" {
                *degradations.entry(value.clone()).or_insert(0) += v;
            }
        }
    }
    server.shutdown();

    Ok(SoakReport {
        seed: plan.seed,
        sessions: config.sessions,
        completed,
        failed,
        ledger,
        snapshot,
        degradations,
        probe_completed,
        probe_matches_batch,
        batch_localization: fixture.batch_localization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_soak_completes_every_session_and_matches_batch() {
        let mut config = SoakConfig::new(FaultPlan::quiet(3));
        config.sessions = 2;
        config.records = 300;
        let report = run_soak(&config).expect("harness builds");
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 0);
        assert!(report.ledger.is_empty());
        assert!(report.probe_matches_batch, "{}", report.render());
        report.survival().expect("quiet soak survives");
    }

    #[test]
    fn deterministic_plan_reproduces_its_fingerprint() {
        let mut config = SoakConfig::new(FaultPlan::standard(41).without_reconnect_faults());
        config.sessions = 2;
        config.records = 400;
        let a = run_soak(&config).expect("harness builds");
        let b = run_soak(&config).expect("harness builds");
        assert!(!a.ledger.is_empty());
        assert_eq!(a.ledger.fingerprint(), b.ledger.fingerprint());
        assert_eq!(a.ledger.len(), b.ledger.len());
        a.survival().expect("soak survives");
    }
}
