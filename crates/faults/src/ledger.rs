//! The fault ledger: an append-only record of every injected fault.
//!
//! The ledger is the determinism contract made checkable. Every injector
//! appends a [`FaultEvent`] the moment it fires, and the ledger folds
//! each event into a running FNV-1a [`fingerprint`](FaultLedger::fingerprint).
//! Two soak runs with the same seed and plan must produce identical
//! fingerprints; a mismatch means an injector consulted something other
//! than its forked RNG stream.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::plan::{FaultKind, Seam};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Ledger sequence number (0-based, assigned on record).
    pub seq: u64,
    /// Which soak session the fault landed in.
    pub session: u64,
    /// The seam the fault attacked.
    pub seam: Seam,
    /// The fault kind.
    pub kind: FaultKind,
    /// Seam-specific position: bit offset for wire faults, write index
    /// for transport faults, frame index for session storms.
    pub position: u64,
    /// Seam-specific magnitude: bytes dropped, frames stormed, µs
    /// delayed — whatever quantifies the fault (0 when not applicable).
    pub magnitude: u64,
}

/// Append-only fault record with a running deterministic fingerprint.
#[derive(Debug, Clone, Default)]
pub struct FaultLedger {
    events: Vec<FaultEvent>,
    fingerprint: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl FaultLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        FaultLedger {
            events: Vec::new(),
            fingerprint: FNV_OFFSET,
        }
    }

    /// Records one fault, assigning its sequence number.
    pub fn record(&mut self, session: u64, kind: FaultKind, position: u64, magnitude: u64) {
        let seq = self.events.len() as u64;
        let mut h = self.fingerprint;
        h = fnv_fold(h, seq);
        h = fnv_fold(h, session);
        h = fnv_fold(h, kind.label().len() as u64 ^ (kind as u64) << 8);
        h = fnv_fold(h, position);
        h = fnv_fold(h, magnitude);
        self.fingerprint = h;
        self.events.push(FaultEvent {
            seq,
            session,
            seam: kind.seam(),
            kind,
            position,
            magnitude,
        });
    }

    /// Appends every event of `other`, re-sequencing and re-hashing them
    /// in order. Used to merge per-session ledgers into the soak ledger
    /// in deterministic session order.
    pub fn absorb(&mut self, other: &FaultLedger) {
        for ev in &other.events {
            self.record(ev.session, ev.kind, ev.position, ev.magnitude);
        }
    }

    /// All recorded events in injection order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total faults recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The running FNV-1a fingerprint over every event. Equal
    /// fingerprints (plus equal lengths) certify equal fault sequences.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Events per fault kind, keyed by stable label (sorted).
    #[must_use]
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            *out.entry(ev.kind.label()).or_insert(0) += 1;
        }
        out
    }

    /// A human-readable per-kind summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault ledger    : {} faults, fingerprint {:016x}",
            self.len(),
            self.fingerprint
        );
        for (label, count) in self.counts() {
            let _ = writeln!(out, "  {label:<16}: {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed_shift: u64) -> FaultLedger {
        let mut ledger = FaultLedger::new();
        ledger.record(0, FaultKind::BitFlip, 100 + seed_shift, 0);
        ledger.record(0, FaultKind::DropChunk, 3, 4096);
        ledger.record(1, FaultKind::DamageStorm, 40, 12);
        ledger
    }

    #[test]
    fn identical_sequences_share_a_fingerprint() {
        assert_eq!(sample(0).fingerprint(), sample(0).fingerprint());
        assert_ne!(sample(0).fingerprint(), sample(1).fingerprint());
    }

    #[test]
    fn order_matters_to_the_fingerprint() {
        let mut a = FaultLedger::new();
        a.record(0, FaultKind::BitFlip, 1, 0);
        a.record(0, FaultKind::Truncate, 2, 0);
        let mut b = FaultLedger::new();
        b.record(0, FaultKind::Truncate, 2, 0);
        b.record(0, FaultKind::BitFlip, 1, 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn absorb_matches_direct_recording() {
        let mut direct = FaultLedger::new();
        direct.record(0, FaultKind::BitFlip, 100, 0);
        direct.record(0, FaultKind::DropChunk, 3, 4096);
        direct.record(1, FaultKind::DamageStorm, 40, 12);

        let mut merged = FaultLedger::new();
        let mut s0 = FaultLedger::new();
        s0.record(0, FaultKind::BitFlip, 100, 0);
        s0.record(0, FaultKind::DropChunk, 3, 4096);
        let mut s1 = FaultLedger::new();
        s1.record(1, FaultKind::DamageStorm, 40, 12);
        merged.absorb(&s0);
        merged.absorb(&s1);

        assert_eq!(direct.fingerprint(), merged.fingerprint());
        assert_eq!(direct.events(), merged.events());
    }

    #[test]
    fn counts_and_render_reflect_events() {
        let ledger = sample(0);
        let counts = ledger.counts();
        assert_eq!(counts["bit-flip"], 1);
        assert_eq!(counts["drop-chunk"], 1);
        assert_eq!(counts["damage-storm"], 1);
        let text = ledger.render();
        assert!(text.contains("3 faults"));
        assert!(text.contains("bit-flip"));
    }
}
