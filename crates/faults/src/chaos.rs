//! Transport-seam fault injection: a `Read + Write` wrapper that makes a
//! healthy byte stream behave like a hostile network.
//!
//! [`ChaosStream`] sits between the replay client and its socket.
//! Every `write` call is one fault opportunity: the wrapper may swallow
//! the bytes (drop), deliver only a prefix (split), stall before
//! delivering (delay), dribble one byte and stall (slow-loris), or tear
//! the connection down (disconnect). All decisions draw from a forked
//! [`Rng64`], so the fault sequence — recorded in the wrapper's
//! [`FaultLedger`] — is a pure function of the seed and the write call
//! sequence. Reads pass through untouched (the PSTS protocol reads only
//! the final reply), except on a torn-down stream, which stays dead.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use pstrace_obs::{EventKind, FlightHandle};
use pstrace_rng::Rng64;

use crate::ledger::FaultLedger;
use crate::plan::{FaultKind, TransportFaults};

/// A deterministic chaos wrapper around any byte stream.
///
/// The ledger lives behind an `Arc<Mutex<…>>` because the hardened
/// client consumes (and on reconnect drops) the transport it is handed —
/// the soak harness keeps a handle and reads the faults back afterward.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: TransportFaults,
    rng: Rng64,
    ledger: Arc<Mutex<FaultLedger>>,
    session: u64,
    writes: u64,
    torn: bool,
    /// When bound, every injected fault is also journaled as a flight
    /// `Fault` event, so the recorder's dump shows what chaos did beside
    /// what the daemon did about it.
    flight: Option<FlightHandle>,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, injecting per `plan` with draws from `rng`.
    /// `session` labels the ledger entries.
    #[must_use]
    pub fn new(inner: S, plan: TransportFaults, rng: Rng64, session: u64) -> Self {
        ChaosStream::with_ledger(
            inner,
            plan,
            rng,
            session,
            Arc::new(Mutex::new(FaultLedger::new())),
        )
    }

    /// [`new`](ChaosStream::new), recording into a caller-held ledger —
    /// the handle survives the wrapper, so faults injected into a
    /// transport the client has since dropped are still accounted for.
    #[must_use]
    pub fn with_ledger(
        inner: S,
        plan: TransportFaults,
        rng: Rng64,
        session: u64,
        ledger: Arc<Mutex<FaultLedger>>,
    ) -> Self {
        ChaosStream {
            inner,
            plan,
            rng,
            ledger,
            session,
            writes: 0,
            torn: false,
            flight: None,
        }
    }

    /// Journals every injected fault through `flight` as well as the
    /// ledger.
    #[must_use]
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.flight = Some(flight);
        self
    }

    /// A handle to the ledger of faults injected so far.
    #[must_use]
    pub fn ledger(&self) -> Arc<Mutex<FaultLedger>> {
        Arc::clone(&self.ledger)
    }

    /// Whether a disconnect fault has killed this stream.
    #[must_use]
    pub fn is_torn(&self) -> bool {
        self.torn
    }

    /// Unwraps, returning the inner stream and the ledger handle.
    pub fn into_parts(self) -> (S, Arc<Mutex<FaultLedger>>) {
        (self.inner, self.ledger)
    }

    fn record(&self, kind: FaultKind, position: u64, magnitude: u64) {
        self.ledger
            .lock()
            .expect("chaos ledger lock poisoned")
            .record(self.session, kind, position, magnitude);
        if let Some(f) = &self.flight {
            f.note(EventKind::Fault, kind.label());
        }
    }

    fn torn_err() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection torn down")
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.torn {
            return Err(Self::torn_err());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let pos = self.writes;
        self.writes += 1;

        // One draw per decision, in a fixed order, so the ledger is a
        // pure function of the seed and the write sequence.
        if self.plan.disconnect > 0.0 && self.rng.gen_f64() < self.plan.disconnect {
            self.torn = true;
            self.record(FaultKind::Disconnect, pos, buf.len() as u64);
            return Err(Self::torn_err());
        }
        if self.plan.drop_chunk > 0.0 && self.rng.gen_f64() < self.plan.drop_chunk {
            // Fake success: the caller believes the bytes went out.
            self.record(FaultKind::DropChunk, pos, buf.len() as u64);
            return Ok(buf.len());
        }
        if self.plan.slow_loris > 0.0 && self.rng.gen_f64() < self.plan.slow_loris {
            self.record(FaultKind::SlowLoris, pos, 1);
            thread::sleep(Duration::from_micros(self.plan.delay_us.max(50)));
            return self.inner.write(&buf[..1]);
        }
        if self.plan.split_chunk > 0.0
            && buf.len() >= 2
            && self.rng.gen_f64() < self.plan.split_chunk
        {
            let cut = 1 + self.rng.gen_index(buf.len() - 1);
            self.record(FaultKind::SplitChunk, pos, cut as u64);
            return self.inner.write(&buf[..cut]);
        }
        if self.plan.delay_chunk > 0.0 && self.rng.gen_f64() < self.plan.delay_chunk {
            self.record(FaultKind::DelayChunk, pos, self.plan.delay_us);
            thread::sleep(Duration::from_micros(self.plan.delay_us));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.torn {
            return Err(Self::torn_err());
        }
        self.inner.flush()
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.torn {
            return Err(Self::torn_err());
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn quiet_transport() -> TransportFaults {
        FaultPlan::quiet(0).transport
    }

    fn unwrap_ledger(ledger: Arc<Mutex<FaultLedger>>) -> FaultLedger {
        Arc::try_unwrap(ledger)
            .expect("sole ledger handle")
            .into_inner()
            .expect("ledger lock clean")
    }

    #[test]
    fn quiet_plan_passes_bytes_through() {
        let mut chaos = ChaosStream::new(Vec::new(), quiet_transport(), Rng64::seed_from_u64(1), 0);
        chaos.write_all(b"hello").unwrap();
        chaos.write_all(b" world").unwrap();
        chaos.flush().unwrap();
        let (inner, ledger) = chaos.into_parts();
        assert_eq!(inner, b"hello world");
        assert!(unwrap_ledger(ledger).is_empty());
    }

    #[test]
    fn drop_swallows_bytes_but_reports_success() {
        let mut plan = quiet_transport();
        plan.drop_chunk = 1.0;
        let mut chaos = ChaosStream::new(Vec::new(), plan, Rng64::seed_from_u64(2), 0);
        assert_eq!(chaos.write(b"vanish").unwrap(), 6);
        let (inner, ledger) = chaos.into_parts();
        assert!(inner.is_empty());
        assert_eq!(unwrap_ledger(ledger).counts()["drop-chunk"], 1);
    }

    #[test]
    fn split_delivers_a_strict_prefix() {
        let mut plan = quiet_transport();
        plan.split_chunk = 1.0;
        let mut chaos = ChaosStream::new(Vec::new(), plan, Rng64::seed_from_u64(3), 0);
        let n = chaos.write(b"abcdefgh").unwrap();
        assert!((1..8).contains(&n), "split wrote {n} of 8");
        let (inner, ledger) = chaos.into_parts();
        assert_eq!(&inner[..], &b"abcdefgh"[..n]);
        assert_eq!(unwrap_ledger(ledger).counts()["split-chunk"], 1);
        // write_all drives the retry loop to completion despite splits.
        let mut plan = quiet_transport();
        plan.split_chunk = 1.0;
        let mut chaos = ChaosStream::new(Vec::new(), plan, Rng64::seed_from_u64(3), 0);
        chaos.write_all(b"abcdefgh").unwrap();
        assert_eq!(chaos.into_parts().0, b"abcdefgh");
    }

    #[test]
    fn disconnect_kills_the_stream_permanently() {
        let mut plan = quiet_transport();
        plan.disconnect = 1.0;
        let mut chaos = ChaosStream::new(
            io::Cursor::new(Vec::new()),
            plan,
            Rng64::seed_from_u64(4),
            0,
        );
        let err = chaos.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(chaos.is_torn());
        assert!(chaos.write(b"y").is_err());
        assert!(chaos.flush().is_err());
        let mut buf = [0u8; 1];
        assert!(chaos.read(&mut buf).is_err());
        assert_eq!(chaos.ledger().lock().unwrap().counts()["disconnect"], 1);
    }

    #[test]
    fn slow_loris_dribbles_one_byte() {
        let mut plan = quiet_transport();
        plan.slow_loris = 1.0;
        plan.delay_us = 1;
        let mut chaos = ChaosStream::new(Vec::new(), plan, Rng64::seed_from_u64(5), 0);
        assert_eq!(chaos.write(b"abc").unwrap(), 1);
        assert_eq!(chaos.into_parts().0, b"a");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::heavy(11).transport;
        let run = || {
            let mut chaos = ChaosStream::new(Vec::new(), plan, Rng64::seed_from_u64(11).fork(1), 0);
            for i in 0..200u32 {
                let payload = i.to_le_bytes();
                let _ = chaos.write(&payload);
            }
            let (inner, ledger) = chaos.into_parts();
            (inner, unwrap_ledger(ledger))
        };
        let (ia, la) = run();
        let (ib, lb) = run();
        assert_eq!(ia, ib);
        assert_eq!(la.fingerprint(), lb.fingerprint());
        assert!(!la.is_empty());
    }
}
