//! A hard deadline for daemon-driving tests and CI smoke steps.
//!
//! CI's `timeout-minutes` kills a hung job eventually, but minutes of a
//! wedged soak tell you nothing about *where* it wedged. [`watchdog`]
//! arms an in-process deadline instead: if the guarded section has not
//! dropped its [`Watchdog`] by the limit, the process prints what it was
//! doing and exits with status 124 (the same convention as
//! `timeout(1)`), so the harness fails fast with the culprit named.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An armed deadline. Dropping it disarms the timer; the process dies
/// with exit status 124 if the limit passes first.
#[derive(Debug)]
pub struct Watchdog {
    disarmed: Arc<AtomicBool>,
    timer: Option<JoinHandle<()>>,
}

/// Arms a watchdog: unless the returned guard is dropped within
/// `limit`, the process prints `what` to stderr and exits with status
/// 124. Use around any section that drives a live daemon — a hang
/// becomes a named, fast failure instead of a silent CI timeout.
#[must_use]
pub fn watchdog(limit: Duration, what: &str) -> Watchdog {
    let disarmed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&disarmed);
    let what = what.to_owned();
    let timer = std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        if !flag.load(Ordering::Relaxed) {
            eprintln!("watchdog: `{what}` still running after {limit:?}; aborting");
            std::process::exit(124);
        }
    });
    Watchdog {
        disarmed,
        timer: Some(timer),
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.disarmed.store(true, Ordering::Relaxed);
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_watchdog_lets_the_process_live() {
        let guard = watchdog(Duration::from_millis(80), "fast section");
        std::thread::sleep(Duration::from_millis(5));
        drop(guard);
        // Long enough that a broken disarm would have fired by now.
        std::thread::sleep(Duration::from_millis(150));
    }
}
