//! Seeded, deterministic fault injection for the pstrace pipeline.
//!
//! Post-silicon trace infrastructure earns its keep on *bad* days: dead
//! buffer banks, flaky links, wedged DMA engines. This crate makes bad
//! days reproducible. A [`FaultPlan`] composes fault kinds × rates ×
//! burst models at the three seams of the ingest pipeline, and every
//! injector draws exclusively from a forked [`pstrace_rng::Rng64`]
//! stream, so identical `(plan, seed)` produce identical fault sequences
//! — certified by the [`FaultLedger`]'s running fingerprint.
//!
//! * **Wire seam** — [`corrupt_wire`]: bit flips (optionally bursty),
//!   mid-frame truncation, duplicated and reordered frames, operating at
//!   frame granularity through bit-level re-serialization (frames are
//!   not byte-aligned);
//! * **Transport seam** — [`ChaosStream`]: a `Read + Write` wrapper
//!   that drops, splits, delays and slow-lorises writes, or tears the
//!   connection down mid-stream;
//! * **Session seam** — damage storms inside [`corrupt_wire`]: a
//!   contiguous run of frames stomped with noise, the fault that empties
//!   an online localizer frontier and exercises its resync path;
//! * **Daemon seam** — [`run_crash_soak`]: the ingest process itself
//!   destroyed mid-soak (SIGKILL, or an armed `PSTRACE_CRASH_POINT`
//!   abort inside a WAL critical section), then restarted on the same
//!   WAL directory; every parked session must resume across the crash.
//!
//! [`run_soak`] composes all three against an in-process
//! [`pstrace_stream::Server`] and scores the result: the daemon must
//! survive every fault, account for every degradation on a designed
//! path, and still serve a clean session afterward with localization
//! bit-identical to the batch pipeline. The `pstrace chaos` subcommand,
//! the `chaos_soak` integration test and the `chaos` bench all drive
//! this one harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod crash;
mod ledger;
mod plan;
mod soak;
mod watchdog;
mod wire;

pub use chaos::ChaosStream;
pub use crash::{flip_wal_byte, run_crash_soak, tear_wal_tail, CrashSoakConfig, CrashSoakReport};
pub use ledger::{FaultEvent, FaultLedger};
pub use plan::{
    BurstModel, FaultGate, FaultKind, FaultPlan, Seam, SessionFaults, TransportFaults, WireFaults,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use watchdog::{watchdog, Watchdog};
pub use wire::corrupt_wire;
