//! The fault plan: which faults, how often, in what temporal shape.
//!
//! A [`FaultPlan`] is pure data — kinds × rates × a burst model per seam.
//! Applying it always goes through a forked [`Rng64`] stream keyed by
//! `(seed, session)`, so the same plan and seed reproduce the same fault
//! sequence byte for byte regardless of how many sessions ran before.

use pstrace_rng::Rng64;

/// Where in the pipeline a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Seam {
    /// The encoded frame bytes themselves (what the trace buffer holds).
    Wire,
    /// The transport carrying chunks to the daemon (the TCP stream).
    Transport,
    /// Whole-session events (damage storms spanning many frames).
    Session,
    /// The daemon process itself (kill -9, armed crash points).
    Daemon,
}

impl Seam {
    /// Stable lowercase label, used in ledgers and metric labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Seam::Wire => "wire",
            Seam::Transport => "transport",
            Seam::Session => "session",
            Seam::Daemon => "daemon",
        }
    }
}

/// Every fault the injector knows how to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FaultKind {
    /// One bit flipped somewhere in the wire stream.
    BitFlip,
    /// The wire stream cut short mid-frame.
    Truncate,
    /// A frame sent twice back to back.
    DuplicateFrame,
    /// Two adjacent frames swapped.
    ReorderFrames,
    /// A transport write silently swallowed (bytes never arrive).
    DropChunk,
    /// A transport write delivered only partially per call.
    SplitChunk,
    /// A transport write delayed before delivery.
    DelayChunk,
    /// The connection torn down mid-stream.
    Disconnect,
    /// Slow-loris: bytes dribbled out one at a time with pauses.
    SlowLoris,
    /// A contiguous region of the wire stream stomped with noise — the
    /// session-seam storm that empties the online localizer frontier.
    DamageStorm,
    /// The daemon process destroyed outright (SIGKILL) mid-soak.
    ProcessKill,
    /// An armed in-daemon crash point (`PSTRACE_CRASH_POINT`) fired,
    /// aborting the process inside a WAL critical section.
    CrashPoint,
}

impl FaultKind {
    /// Stable kebab-case label — the `kind` label on
    /// `pstrace_faults_injected_total` and the ledger's display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::DuplicateFrame => "duplicate-frame",
            FaultKind::ReorderFrames => "reorder-frames",
            FaultKind::DropChunk => "drop-chunk",
            FaultKind::SplitChunk => "split-chunk",
            FaultKind::DelayChunk => "delay-chunk",
            FaultKind::Disconnect => "disconnect",
            FaultKind::SlowLoris => "slow-loris",
            FaultKind::DamageStorm => "damage-storm",
            FaultKind::ProcessKill => "process-kill",
            FaultKind::CrashPoint => "crash-point",
        }
    }

    /// Which seam this fault attacks.
    #[must_use]
    pub fn seam(self) -> Seam {
        match self {
            FaultKind::BitFlip
            | FaultKind::Truncate
            | FaultKind::DuplicateFrame
            | FaultKind::ReorderFrames => Seam::Wire,
            FaultKind::DropChunk
            | FaultKind::SplitChunk
            | FaultKind::DelayChunk
            | FaultKind::Disconnect
            | FaultKind::SlowLoris => Seam::Transport,
            FaultKind::DamageStorm => Seam::Session,
            FaultKind::ProcessKill | FaultKind::CrashPoint => Seam::Daemon,
        }
    }
}

/// How faults cluster in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstModel {
    /// Every opportunity draws independently at the base rate.
    Uniform,
    /// A two-state Gilbert–Elliott gate: in the *burst* state the base
    /// rate is multiplied by `boost`; the gate enters a burst with
    /// probability `enter` per opportunity and leaves with probability
    /// `exit`. Models the paper's observation that real trace damage
    /// arrives in storms (a dead buffer bank), not as white noise.
    Bursty {
        /// Probability of entering a burst at each opportunity.
        enter: f64,
        /// Probability of leaving the burst at each opportunity.
        exit: f64,
        /// Rate multiplier while inside a burst.
        boost: f64,
    },
}

impl BurstModel {
    /// A mildly clustered default: rare bursts, ~8 opportunities long,
    /// 20× the base rate inside.
    #[must_use]
    pub fn default_bursty() -> Self {
        BurstModel::Bursty {
            enter: 0.01,
            exit: 0.125,
            boost: 20.0,
        }
    }
}

/// The stateful coin the injectors toss: a base rate shaped by a
/// [`BurstModel`], advanced by one deterministic RNG draw per
/// opportunity (plus one for the gate when bursty).
#[derive(Debug, Clone)]
pub struct FaultGate {
    rate: f64,
    model: BurstModel,
    in_burst: bool,
}

impl FaultGate {
    /// A gate firing at `rate` per opportunity, shaped by `model`.
    #[must_use]
    pub fn new(rate: f64, model: BurstModel) -> Self {
        FaultGate {
            rate,
            model,
            in_burst: false,
        }
    }

    /// One opportunity: advances the burst state and draws the coin.
    pub fn fires(&mut self, rng: &mut Rng64) -> bool {
        let rate = match self.model {
            BurstModel::Uniform => self.rate,
            BurstModel::Bursty { enter, exit, boost } => {
                let gate_draw = rng.gen_f64();
                if self.in_burst {
                    if gate_draw < exit {
                        self.in_burst = false;
                    }
                } else if gate_draw < enter {
                    self.in_burst = true;
                }
                if self.in_burst {
                    (self.rate * boost).min(1.0)
                } else {
                    self.rate
                }
            }
        };
        if rate <= 0.0 {
            return false;
        }
        rng.gen_f64() < rate
    }
}

/// Wire-seam rates, per opportunity noted on each field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaults {
    /// Bit flips per *bit* of stream.
    pub bit_flip: f64,
    /// Probability the stream is truncated mid-frame (once per stream).
    pub truncate: f64,
    /// Frame duplications per frame.
    pub duplicate_frame: f64,
    /// Adjacent-frame swaps per frame.
    pub reorder_frames: f64,
    /// Temporal clustering of the bit flips.
    pub burst: BurstModel,
}

/// Transport-seam rates, per `write` call on the chaos stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaults {
    /// Probability a write is silently dropped.
    pub drop_chunk: f64,
    /// Probability a write is delivered only partially.
    pub split_chunk: f64,
    /// Probability a write is delayed by `delay_us`.
    pub delay_chunk: f64,
    /// Microseconds of delay per delayed write.
    pub delay_us: u64,
    /// Probability the connection is torn down at a write.
    pub disconnect: f64,
    /// Probability a write degenerates to slow-loris dribbling.
    pub slow_loris: f64,
}

/// Session-seam rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionFaults {
    /// Probability a stream suffers a damage storm (once per stream).
    pub damage_storm: f64,
    /// Storm length as a fraction of the stream's frames.
    pub storm_frames: f64,
}

/// A composable, seed-keyed description of everything that will go
/// wrong: fault kinds × rates × burst models at the three seams.
///
/// Plans are plain data; the injectors ([`corrupt_wire`]
/// (crate::corrupt_wire), [`ChaosStream`](crate::ChaosStream)) consume a
/// plan plus a forked RNG and append to a [`FaultLedger`]
/// (crate::FaultLedger). Identical `(plan, seed)` ⇒ identical ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; per-session streams fork off it.
    pub seed: u64,
    /// Wire-seam configuration.
    pub wire: WireFaults,
    /// Transport-seam configuration.
    pub transport: TransportFaults,
    /// Session-seam configuration.
    pub session: SessionFaults,
}

impl FaultPlan {
    /// A plan that injects nothing — the identity baseline.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            wire: WireFaults {
                bit_flip: 0.0,
                truncate: 0.0,
                duplicate_frame: 0.0,
                reorder_frames: 0.0,
                burst: BurstModel::Uniform,
            },
            transport: TransportFaults {
                drop_chunk: 0.0,
                split_chunk: 0.0,
                delay_chunk: 0.0,
                delay_us: 0,
                disconnect: 0.0,
                slow_loris: 0.0,
            },
            session: SessionFaults {
                damage_storm: 0.0,
                storm_frames: 0.0,
            },
        }
    }

    /// Light corruption: sparse bit flips, occasional transport splits.
    /// Suitable for a CI smoke that must stay fast.
    #[must_use]
    pub fn light(seed: u64) -> Self {
        let mut plan = FaultPlan::quiet(seed);
        plan.wire.bit_flip = 2e-4;
        plan.wire.duplicate_frame = 0.002;
        plan.wire.reorder_frames = 0.002;
        plan.transport.split_chunk = 0.05;
        plan.transport.delay_chunk = 0.01;
        plan.transport.delay_us = 50;
        plan
    }

    /// The default soak intensity: every fault kind enabled at rates
    /// that exercise each degradation path within a few sessions.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        let mut plan = FaultPlan::quiet(seed);
        plan.wire.bit_flip = 1e-3;
        plan.wire.truncate = 0.05;
        plan.wire.duplicate_frame = 0.005;
        plan.wire.reorder_frames = 0.005;
        plan.wire.burst = BurstModel::default_bursty();
        plan.transport.drop_chunk = 0.01;
        plan.transport.split_chunk = 0.10;
        plan.transport.delay_chunk = 0.02;
        plan.transport.delay_us = 100;
        plan.transport.disconnect = 0.005;
        plan.transport.slow_loris = 0.01;
        plan.session.damage_storm = 0.10;
        plan.session.storm_frames = 0.15;
        plan
    }

    /// Hostile conditions: heavy flips in long bursts, frequent storms,
    /// flaky transport. Sessions are expected to fail often — the bar is
    /// that they fail *gracefully* and the daemon survives.
    #[must_use]
    pub fn heavy(seed: u64) -> Self {
        let mut plan = FaultPlan::quiet(seed);
        plan.wire.bit_flip = 5e-3;
        plan.wire.truncate = 0.15;
        plan.wire.duplicate_frame = 0.02;
        plan.wire.reorder_frames = 0.02;
        plan.wire.burst = BurstModel::Bursty {
            enter: 0.02,
            exit: 0.05,
            boost: 40.0,
        };
        plan.transport.drop_chunk = 0.03;
        plan.transport.split_chunk = 0.20;
        plan.transport.delay_chunk = 0.05;
        plan.transport.delay_us = 200;
        plan.transport.disconnect = 0.02;
        plan.transport.slow_loris = 0.02;
        plan.session.damage_storm = 0.35;
        plan.session.storm_frames = 0.30;
        plan
    }

    /// This plan with the transport faults that change connection
    /// control flow (dropped writes, mid-stream disconnects) zeroed out.
    ///
    /// Every remaining fault — bit flips, storms, splits, delays,
    /// slow-loris dribbles — leaves the client's attempt count and the
    /// server's ack offsets unchanged, so the *complete* soak ledger
    /// (transport seam included) is a pure function of the seed, with no
    /// dependence on reconnect timing. Reconnect-path faults are still
    /// exercised by plans that keep them; their wire/session-seam ledger
    /// entries stay deterministic either way.
    #[must_use]
    pub fn without_reconnect_faults(mut self) -> Self {
        self.transport.drop_chunk = 0.0;
        self.transport.disconnect = 0.0;
        self
    }

    /// Parses an intensity name (`quiet`, `light`, `standard`, `heavy`),
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns the unknown name back for error reporting.
    pub fn by_intensity(name: &str, seed: u64) -> Result<Self, String> {
        match name.to_ascii_lowercase().as_str() {
            "quiet" => Ok(FaultPlan::quiet(seed)),
            "light" => Ok(FaultPlan::light(seed)),
            "standard" | "default" => Ok(FaultPlan::standard(seed)),
            "heavy" => Ok(FaultPlan::heavy(seed)),
            other => Err(format!(
                "unknown intensity `{other}`; use quiet, light, standard or heavy"
            )),
        }
    }

    /// The RNG stream for session number `session` under this plan: a
    /// pure function of `(seed, session)`, independent of every other
    /// session's draws.
    #[must_use]
    pub fn session_rng(&self, session: u64) -> Rng64 {
        Rng64::seed_from_u64(self.seed).fork(0x005e_5510_0000 ^ session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            FaultKind::BitFlip,
            FaultKind::Truncate,
            FaultKind::DuplicateFrame,
            FaultKind::ReorderFrames,
            FaultKind::DropChunk,
            FaultKind::SplitChunk,
            FaultKind::DelayChunk,
            FaultKind::Disconnect,
            FaultKind::SlowLoris,
            FaultKind::DamageStorm,
            FaultKind::ProcessKill,
            FaultKind::CrashPoint,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len(), "labels collide");
        for k in kinds {
            assert!(!k.seam().label().is_empty());
        }
    }

    #[test]
    fn gates_are_deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(5);
        let mut b = Rng64::seed_from_u64(5);
        let mut ga = FaultGate::new(0.3, BurstModel::default_bursty());
        let mut gb = FaultGate::new(0.3, BurstModel::default_bursty());
        for _ in 0..500 {
            assert_eq!(ga.fires(&mut a), gb.fires(&mut b));
        }
    }

    #[test]
    fn bursty_gate_clusters_fires() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut gate = FaultGate::new(
            0.01,
            BurstModel::Bursty {
                enter: 0.02,
                exit: 0.05,
                boost: 50.0,
            },
        );
        let fires: Vec<bool> = (0..20_000).map(|_| gate.fires(&mut rng)).collect();
        let total = fires.iter().filter(|&&f| f).count();
        assert!(total > 100, "bursty gate fired only {total} times");
        // Clustering: the chance a fire is followed by another fire must
        // clearly exceed the marginal rate.
        let pairs = fires.windows(2).filter(|w| w[0] && w[1]).count();
        let follow_rate = pairs as f64 / total as f64;
        let marginal = total as f64 / fires.len() as f64;
        assert!(
            follow_rate > marginal * 3.0,
            "no clustering: follow {follow_rate:.4} vs marginal {marginal:.4}"
        );
    }

    #[test]
    fn zero_rate_never_fires_and_one_always() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut never = FaultGate::new(0.0, BurstModel::Uniform);
        let mut always = FaultGate::new(1.0, BurstModel::Uniform);
        for _ in 0..100 {
            assert!(!never.fires(&mut rng));
            assert!(always.fires(&mut rng));
        }
    }

    #[test]
    fn intensity_parsing_and_session_forks() {
        assert!(FaultPlan::by_intensity("HEAVY", 1).is_ok());
        assert!(FaultPlan::by_intensity("nope", 1).is_err());
        let plan = FaultPlan::standard(9);
        let mut a = plan.session_rng(3);
        let mut b = plan.session_rng(3);
        let mut c = plan.session_rng(4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
