//! Kill-the-daemon recovery soaks: the crash-only counterpart of
//! [`run_soak`](crate::run_soak).
//!
//! Where the chaos soak attacks the wire, the transport and the session,
//! this harness attacks the *daemon process itself*: it spawns a real
//! `pstrace serve` child with `--durability strict`, streams resumable
//! sessions into it, then destroys the process mid-soak — either with a
//! plain `SIGKILL` or by arming one of the WAL layer's compiled-in crash
//! points (`PSTRACE_CRASH_POINT`, see
//! [`CRASH_POINTS`](pstrace_stream::durable::CRASH_POINTS)) so the abort
//! lands inside a WAL critical section. A second daemon is then started
//! on the same WAL directory; recovery must re-park every journaled
//! session, the clients must resume against the restarted process using
//! their pre-crash tokens, and a clean probe must produce a localization
//! line bit-identical to the batch pipeline's.
//!
//! The harness talks to its children only through public seams — argv,
//! one environment variable, and the PSTS socket — so `pstrace crash`,
//! the `crash_soak` integration test and CI all drive this one function.
//! Determinism: the [`FaultLedger`] fingerprint is a pure function of the
//! seeded configuration (which faults were *ordered*), never of timing.

use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pstrace_diag::MatchMode;
use pstrace_stream::{
    next_trace_id, request_shutdown, stream_ptw, stream_ptw_resumable_traced, RetryPolicy,
};

use crate::ledger::FaultLedger;
use crate::plan::FaultKind;
use crate::soak::build_fixture;

/// Tenants cycle as in the chaos soak so per-tenant accounting is live.
const TENANT_CYCLE: u64 = 4;

/// Knobs of one crash-recovery soak.
#[derive(Debug, Clone)]
pub struct CrashSoakConfig {
    /// Argv prefix that launches the daemon (binary plus subcommand,
    /// e.g. `["/path/to/pstrace", "serve"]`). The harness appends
    /// `--addr`, `--shards`, `--durability strict`, `--wal-dir` and
    /// `--wal-budget`.
    pub daemon: Vec<String>,
    /// WAL directory shared by the crashed and the restarted daemon —
    /// the only state that survives the kill.
    pub wal_dir: PathBuf,
    /// Resumable client sessions to stream across the crash.
    pub sessions: usize,
    /// Synthetic records per capture.
    pub records: usize,
    /// Client chunk size in bytes.
    pub chunk_bytes: usize,
    /// Daemon shard workers.
    pub shards: usize,
    /// Seed folded into the ledger fingerprint (the soak streams clean
    /// captures; the only "fault" is the one this harness orders).
    pub seed: u64,
    /// When set, daemon #1 runs with `PSTRACE_CRASH_POINT` armed and is
    /// expected to abort itself inside that WAL critical section; when
    /// `None` the harness SIGKILLs it instead.
    pub crash_point: Option<String>,
    /// How long the storm runs before the kill is delivered (ignored if
    /// an armed crash point fires first).
    pub kill_after: Duration,
    /// WAL rotation budget handed to the daemon. Kept small so rotation
    /// (and its crash points) actually fire under test-sized soaks.
    pub wal_budget: u64,
}

impl CrashSoakConfig {
    /// A crash soak with defaults sized for an interactive run.
    #[must_use]
    pub fn new(daemon: Vec<String>, wal_dir: PathBuf) -> Self {
        CrashSoakConfig {
            daemon,
            wal_dir,
            sessions: 8,
            records: 2_000,
            chunk_bytes: 256,
            shards: 2,
            seed: 1,
            crash_point: None,
            kill_after: Duration::from_millis(300),
            wal_budget: 4_096,
        }
    }
}

/// What a crash soak produced, with the recovery verdict attached.
#[derive(Debug)]
pub struct CrashSoakReport {
    /// The seed the ledger fingerprint derives from.
    pub seed: u64,
    /// Sessions streamed across the crash.
    pub sessions: usize,
    /// Sessions that completed with a report (before or after the kill).
    pub completed: usize,
    /// Sessions that failed with a typed error.
    pub failed: usize,
    /// Completed sessions whose localization line was bit-identical to
    /// the batch pipeline's.
    pub matched: usize,
    /// Whether daemon #1 died on its own (armed crash point) before the
    /// harness delivered the kill.
    pub crashed_early: bool,
    /// The crash point that was armed, if any.
    pub crash_point: Option<String>,
    /// Wall-clock duration of the whole soak (spawn to probe).
    pub elapsed: Duration,
    /// The faults this harness ordered, fingerprinted deterministically.
    pub ledger: FaultLedger,
    /// Whether the post-restart clean probe completed at all.
    pub probe_completed: bool,
    /// Whether the probe's localization line was bit-identical to the
    /// batch pipeline's.
    pub probe_matches_batch: bool,
    /// The localization line the batch pipeline computed.
    pub batch_localization: String,
}

impl CrashSoakReport {
    /// The recovery criteria: at least 95% of sessions complete across
    /// the crash, every completed session's answer is bit-identical to
    /// batch, and the restarted daemon serves a clean probe that is too.
    ///
    /// # Errors
    ///
    /// Every violated criterion, newline-joined.
    pub fn survival(&self) -> Result<(), String> {
        let mut violations = Vec::new();
        let need = (self.sessions as f64 * 0.95).ceil() as usize;
        if self.completed < need {
            violations.push(format!(
                "only {} of {} sessions completed across the crash (need {need})",
                self.completed, self.sessions
            ));
        }
        if self.matched < self.completed {
            violations.push(format!(
                "{} of {} completed sessions diverged from the batch localization",
                self.completed - self.matched,
                self.completed
            ));
        }
        if !self.probe_completed {
            violations.push("the post-restart clean probe did not complete".to_owned());
        } else if !self.probe_matches_batch {
            violations
                .push("the clean probe's localization diverged from the batch pipeline".to_owned());
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("\n"))
        }
    }

    /// Renders the recovery report (kill mode, completion, verdict).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mode = match &self.crash_point {
            Some(point) => format!("crash point {point}"),
            None => "SIGKILL".to_owned(),
        };
        let _ = writeln!(
            out,
            "crash soak      : seed {}, {} sessions across a {} restart",
            self.seed, self.sessions, mode
        );
        let _ = writeln!(
            out,
            "sessions        : {} completed ({} bit-identical to batch), {} failed, {:.2}s",
            self.completed,
            self.matched,
            self.failed,
            self.elapsed.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "daemon #1       : {}",
            if self.crashed_early {
                "aborted at its armed crash point"
            } else {
                "destroyed by SIGKILL"
            }
        );
        out.push_str(&self.ledger.render());
        let probe = if !self.probe_completed {
            "FAILED"
        } else if self.probe_matches_batch {
            "clean, bit-identical to batch"
        } else {
            "completed but DIVERGED from batch"
        };
        let _ = writeln!(out, "clean probe     : {probe}");
        let _ = match self.survival() {
            Ok(()) => writeln!(out, "verdict         : recovered"),
            Err(v) => writeln!(out, "verdict         : FAILED\n{v}"),
        };
        out
    }
}

/// Truncates a WAL (or checkpoint) file to `keep` bytes, simulating a
/// torn final entry — what a crash mid-`write` leaves behind. Returns
/// the number of bytes removed.
///
/// # Errors
///
/// Propagates filesystem failures; `keep` beyond the current length is
/// an error (tearing must shorten the file).
pub fn tear_wal_tail(path: &Path, keep: u64) -> io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    if keep > len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot tear {path:?} to {keep} bytes: file holds only {len}"),
        ));
    }
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    file.sync_all()?;
    Ok(len - keep)
}

/// Flips every bit of one byte of a WAL (or checkpoint) file in place,
/// simulating media damage the entry checksum must catch. Returns the
/// new byte value.
///
/// # Errors
///
/// Propagates filesystem failures; `offset` past the end is an error.
pub fn flip_wal_byte(path: &Path, offset: u64) -> io::Result<u8> {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let len = file.metadata()?.len();
    if offset >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot flip byte {offset} of {path:?}: file holds only {len}"),
        ));
    }
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut byte)?;
    byte[0] = !byte[0];
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_all()?;
    Ok(byte[0])
}

/// A spawned daemon child that is killed (not leaked) if the harness
/// errors out before reaping it.
struct DaemonGuard(Option<Child>);

impl DaemonGuard {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("daemon child already reaped")
    }

    /// Kills and reaps the child, returning whether it had already
    /// exited on its own before the kill was delivered.
    fn destroy(&mut self) -> bool {
        let Some(mut child) = self.0.take() else {
            return false;
        };
        let already_dead = matches!(child.try_wait(), Ok(Some(_)));
        let _ = child.kill();
        let _ = child.wait();
        already_dead
    }

    /// Waits for a clean exit, escalating to a kill after `patience`.
    fn reap(&mut self, patience: Duration) {
        let Some(mut child) = self.0.take() else {
            return;
        };
        let deadline = Instant::now() + patience;
        loop {
            match child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return;
                }
            }
        }
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.destroy();
    }
}

/// Reserves a loopback address by binding port 0 and releasing it. The
/// tiny bind race is acceptable for a test harness; the daemon reports a
/// bind failure loudly if it ever loses it.
fn pick_free_addr() -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("no loopback port free: {e}"))?;
    listener
        .local_addr()
        .map_err(|e| format!("loopback port has no address: {e}"))
}

fn spawn_daemon(
    config: &CrashSoakConfig,
    addr: SocketAddr,
    crash_point: Option<&str>,
) -> Result<DaemonGuard, String> {
    let (bin, rest) = config
        .daemon
        .split_first()
        .ok_or_else(|| "daemon argv is empty".to_owned())?;
    let mut cmd = Command::new(bin);
    cmd.args(rest)
        .arg("--addr")
        .arg(addr.to_string())
        .arg("--shards")
        .arg(config.shards.max(1).to_string())
        .arg("--durability")
        .arg("strict")
        .arg("--wal-dir")
        .arg(&config.wal_dir)
        .arg("--wal-budget")
        .arg(config.wal_budget.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match crash_point {
        Some(point) => {
            cmd.env("PSTRACE_CRASH_POINT", point);
        }
        None => {
            cmd.env_remove("PSTRACE_CRASH_POINT");
        }
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("daemon failed to spawn ({bin}): {e}"))?;
    Ok(DaemonGuard(Some(child)))
}

/// Polls until the daemon accepts connections; fails fast if the child
/// exits first (unless an armed crash point makes that legitimate).
fn wait_listening(addr: SocketAddr, daemon: &mut DaemonGuard, patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    while Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
            return true;
        }
        if matches!(daemon.child().try_wait(), Ok(Some(_))) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Runs one seeded crash soak: resumable sessions streamed into daemon
/// #1, the process destroyed mid-soak (SIGKILL or armed crash point),
/// daemon #2 recovered from the same WAL directory, every client resumed
/// against it, then the clean probe. See the module docs.
///
/// # Errors
///
/// Only harness-construction failures (fixture, spawn, restart); crash-
/// induced session failures are *data*, reported in the
/// [`CrashSoakReport`].
pub fn run_crash_soak(config: &CrashSoakConfig) -> Result<CrashSoakReport, String> {
    let fixture = build_fixture(config.records.max(1))?;
    std::fs::create_dir_all(&config.wal_dir)
        .map_err(|e| format!("wal dir {:?} not creatable: {e}", config.wal_dir))?;

    // The ledger is a pure function of the seeded order of battle —
    // which fault was commanded against which target — never of timing.
    let mut ledger = FaultLedger::new();
    let kind = if config.crash_point.is_some() {
        FaultKind::CrashPoint
    } else {
        FaultKind::ProcessKill
    };
    ledger.record(
        config.seed,
        kind,
        config.sessions as u64,
        config.shards as u64,
    );

    let addr1 = pick_free_addr()?;
    let mut daemon = spawn_daemon(config, addr1, config.crash_point.as_deref())?;
    if !wait_listening(addr1, &mut daemon, Duration::from_secs(20)) {
        // An armed crash point may legally fire during startup recovery;
        // anything else is a harness failure.
        if config.crash_point.is_none() {
            return Err(format!("daemon #1 never listened on {addr1}"));
        }
    }

    // Clients resolve the daemon through this register on every
    // (re)connect attempt, so the restarted process is reachable without
    // fighting the dead listener's port for it.
    let register = Arc::new(Mutex::new(addr1));
    let policy = RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        max_reconnects: 12,
        initial_backoff: Duration::from_millis(250),
        max_backoff: Duration::from_secs(1),
    };
    let chunk_bytes = config.chunk_bytes.max(1);

    let slots: Vec<OnceLock<Option<String>>> =
        (0..config.sessions).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let mut crashed_early = false;
    let mut restart_error = None;
    std::thread::scope(|scope| {
        for _ in 0..config.sessions.max(1) {
            let register = Arc::clone(&register);
            let fixture = &fixture;
            let slots = &slots;
            let next = &next;
            scope.spawn(move || loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= config.sessions {
                    break;
                }
                let session = s as u64;
                let trace = next_trace_id();
                let register = Arc::clone(&register);
                let result = stream_ptw_resumable_traced(
                    move |_attempt| -> io::Result<TcpStream> {
                        let addr = *register.lock().expect("address register poisoned");
                        let stream = TcpStream::connect_timeout(&addr, policy.connect_timeout)?;
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(policy.read_timeout)).ok();
                        Ok(stream)
                    },
                    fixture.model.catalog(),
                    1,
                    MatchMode::Prefix,
                    (session % TENANT_CYCLE) as u32,
                    trace,
                    &fixture.clean_ptw,
                    chunk_bytes,
                    &policy,
                );
                let _ = slots[s].set(result.ok());
            });
        }

        // The crash, delivered from the orchestrating thread while the
        // storm runs: wait out the grace period (or the armed crash
        // point firing early), then make sure the process is dead.
        let crash_deadline = Instant::now() + config.kill_after;
        while Instant::now() < crash_deadline {
            if matches!(daemon.child().try_wait(), Ok(Some(_))) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        crashed_early = daemon.destroy();

        // Crash-only recovery: daemon #2 starts cold from nothing but
        // the WAL directory, with no crash point armed.
        match pick_free_addr().and_then(|addr2| {
            let mut second = spawn_daemon(config, addr2, None)?;
            if !wait_listening(addr2, &mut second, Duration::from_secs(20)) {
                return Err(format!("daemon #2 never listened on {addr2}"));
            }
            Ok((addr2, second))
        }) {
            Ok((addr2, second)) => {
                *register.lock().expect("address register poisoned") = addr2;
                daemon = second;
            }
            Err(e) => restart_error = Some(e),
        }
    });
    let elapsed = started.elapsed();
    if let Some(e) = restart_error {
        return Err(e);
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut matched = 0usize;
    for slot in slots {
        match slot.into_inner().flatten() {
            Some(report) => {
                completed += 1;
                if report.contains(&fixture.batch_localization) {
                    matched += 1;
                }
            }
            None => failed += 1,
        }
    }

    // The restarted daemon must serve a clean session exactly like
    // batch — recovery bent nothing.
    let addr = *register.lock().expect("address register poisoned");
    let probe = stream_ptw(
        addr,
        fixture.model.catalog(),
        1,
        MatchMode::Prefix,
        &fixture.clean_ptw,
        chunk_bytes,
    );
    let (probe_completed, probe_matches_batch) = match &probe {
        Ok(report) => (true, report.contains(&fixture.batch_localization)),
        Err(_) => (false, false),
    };

    // Graceful drain of daemon #2; escalate only if the verb is ignored.
    let _ = request_shutdown(addr);
    daemon.reap(Duration::from_secs(10));

    Ok(CrashSoakReport {
        seed: config.seed,
        sessions: config.sessions,
        completed,
        failed,
        matched,
        crashed_early,
        crash_point: config.crash_point.clone(),
        elapsed,
        ledger,
        probe_completed,
        probe_matches_batch,
        batch_localization: fixture.batch_localization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_file(dir: &Path, bytes: &[u8]) -> PathBuf {
        let path = dir.join("wal-0.wal");
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn tearing_shortens_and_rejects_growth() {
        let dir = std::env::temp_dir().join(format!("pstrace-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_file(&dir, &[0xAA; 128]);
        assert_eq!(tear_wal_tail(&path, 33).unwrap(), 95);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 33);
        assert!(tear_wal_tail(&path, 64).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipping_inverts_one_byte_in_place() {
        let dir = std::env::temp_dir().join(format!("pstrace-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_file(&dir, &[0x0F; 64]);
        assert_eq!(flip_wal_byte(&path, 10).unwrap(), 0xF0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[10], 0xF0);
        assert_eq!(bytes[9], 0x0F);
        assert_eq!(bytes[11], 0x0F);
        assert!(flip_wal_byte(&path, 64).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_ledger_fingerprint_is_seed_deterministic() {
        let config = |seed| {
            let mut c = CrashSoakConfig::new(vec!["unused".into()], PathBuf::from("/nonexistent"));
            c.seed = seed;
            c
        };
        let fp = |seed| {
            let mut ledger = FaultLedger::new();
            let c = config(seed);
            ledger.record(
                c.seed,
                FaultKind::ProcessKill,
                c.sessions as u64,
                c.shards as u64,
            );
            ledger.fingerprint()
        };
        assert_eq!(fp(7), fp(7));
        assert_ne!(fp(7), fp(8));
    }
}
