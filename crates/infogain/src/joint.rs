//! The empirical joint distribution of §3.2 over an interleaved flow.
//!
//! The paper associates two random variables with an interleaved flow `U`:
//!
//! * `X` — the product state `U` is in, uniform over `S`
//!   (`p_X(x) = 1/|S|`);
//! * `Y` — the indexed message observed, for a *candidate message
//!   combination* `Y'`. Its marginal is estimated by edge counting:
//!   `p_Y(y) = (#edges labeled y) / (#edges labeled with ANY indexed
//!   message)` — note the denominator counts **all** edges of the
//!   interleaving, not just the selected ones, exactly as in the worked
//!   example (`p(y) = 3/18` with 18 total edges). For a strict subset of
//!   the alphabet `Σ_y p_Y(y) < 1`; the residual mass is the unobserved
//!   "no selected message" event, which contributes nothing to the mutual
//!   information sum.
//!
//! The conditional `p(x|y)` is the fraction of `y`-labeled edges entering
//! `x`, and the joint is `p(x, y) = p(x|y)·p(y)`.

use std::collections::HashMap;

use pstrace_flow::{IndexedMessage, InterleavedFlow, MessageId, ProductStateId};

use crate::pmf::LogBase;

/// Empirical joint distribution of interleaved-flow states `X` and indexed
/// messages `Y` for one candidate message combination.
///
/// Exposes the marginals, conditionals and joint probabilities used in the
/// mutual-information computation so callers can audit intermediate values.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow};
/// use pstrace_infogain::{JointDistribution, LogBase};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, catalog) = cache_coherence();
/// let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
/// let joint = JointDistribution::from_combination(&product, &combo);
///
/// // Worked example of §3.2: I(X; Y₁) = 1.073 (nats).
/// let gain = joint.mutual_information(LogBase::Nats);
/// assert!((gain - 1.073).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JointDistribution {
    ys: Vec<IndexedMessage>,
    y_counts: Vec<u64>,
    /// Per `y`: target-state occurrence counts (`x`, #edges labeled `y`
    /// entering `x`).
    xy_counts: Vec<Vec<(ProductStateId, u64)>>,
    total_edges: u64,
    state_count: usize,
}

impl JointDistribution {
    /// Builds the distribution for the candidate combination `combination`
    /// (un-indexed messages; all their indexed instances in `flow` become
    /// outcomes of `Y`).
    #[must_use]
    pub fn from_combination(flow: &InterleavedFlow, combination: &[MessageId]) -> Self {
        let mut ys: Vec<IndexedMessage> = Vec::new();
        let mut y_index: HashMap<IndexedMessage, usize> = HashMap::new();
        let mut y_counts: Vec<u64> = Vec::new();
        let mut xy_maps: Vec<HashMap<ProductStateId, u64>> = Vec::new();

        for edge in flow.edges() {
            if !combination.contains(&edge.message.message) {
                continue;
            }
            let yi = *y_index.entry(edge.message).or_insert_with(|| {
                ys.push(edge.message);
                y_counts.push(0);
                xy_maps.push(HashMap::new());
                ys.len() - 1
            });
            y_counts[yi] += 1;
            *xy_maps[yi].entry(edge.to).or_insert(0) += 1;
        }

        let xy_counts = xy_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(ProductStateId, u64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|(s, _)| *s);
                v
            })
            .collect();

        JointDistribution {
            ys,
            y_counts,
            xy_counts,
            total_edges: flow.edge_count() as u64,
            state_count: flow.state_count(),
        }
    }

    /// The indexed messages (outcomes of `Y`) that actually label edges.
    #[must_use]
    pub fn indexed_messages(&self) -> &[IndexedMessage] {
        &self.ys
    }

    /// `p_X(x) = 1/|S|` — the uniform state prior.
    #[must_use]
    pub fn p_x(&self) -> f64 {
        1.0 / self.state_count as f64
    }

    /// Marginal `p_Y(yᵢ)`: occurrences of `yᵢ` over all edge occurrences.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn p_y(&self, i: usize) -> f64 {
        self.y_counts[i] as f64 / self.total_edges as f64
    }

    /// Conditional `p(x | yᵢ)`: fraction of `yᵢ`-labeled edges entering `x`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn p_x_given_y(&self, x: ProductStateId, i: usize) -> f64 {
        let total = self.y_counts[i];
        if total == 0 {
            return 0.0;
        }
        let count = self.xy_counts[i]
            .iter()
            .find(|(s, _)| *s == x)
            .map_or(0, |(_, c)| *c);
        count as f64 / total as f64
    }

    /// Joint `p(x, yᵢ) = p(x|yᵢ)·p(yᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn p_xy(&self, x: ProductStateId, i: usize) -> f64 {
        self.p_x_given_y(x, i) * self.p_y(i)
    }

    /// Total number of edges in the interleaving (the marginal's
    /// denominator).
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Number of product states `|S|`.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Entropy of the uniform state prior, `H(X) = log |S|`.
    #[must_use]
    pub fn entropy_x(&self, base: LogBase) -> f64 {
        base.log(self.state_count as f64)
    }

    /// Entropy of the observation variable over the *observed* outcomes,
    /// `H(Y) = -Σ_y p(y)·log p(y)`.
    ///
    /// For a strict subset of the alphabet the marginal is subnormalized
    /// (the residual mass is the "no selected message" event); its
    /// contribution is included as one aggregate outcome so `H(Y)` stays a
    /// true entropy.
    #[must_use]
    pub fn entropy_y(&self, base: LogBase) -> f64 {
        let mut h = 0.0;
        let mut mass = 0.0;
        for i in 0..self.ys.len() {
            let p = self.p_y(i);
            if p > 0.0 {
                h -= p * base.log(p);
                mass += p;
            }
        }
        let residual = 1.0 - mass;
        if residual > 1e-15 {
            h -= residual * base.log(residual);
        }
        h
    }

    /// Conditional entropy `H(X|Y) = Σ_y p(y)·H(X|y) + p(∅)·H(X)`, where
    /// the unobserved residual event `∅` tells the debugger nothing and
    /// therefore leaves the full prior entropy.
    ///
    /// By construction `I(X;Y) = H(X) − H(X|Y)` (see
    /// [`JointDistribution::mutual_information`]); the identity is pinned
    /// by tests.
    #[must_use]
    pub fn conditional_entropy_x(&self, base: LogBase) -> f64 {
        let mut h = 0.0;
        let mut mass = 0.0;
        for (i, pairs) in self.xy_counts.iter().enumerate() {
            let p_y = self.p_y(i);
            if p_y == 0.0 {
                continue;
            }
            mass += p_y;
            let y_total = self.y_counts[i] as f64;
            let mut h_x_given_y = 0.0;
            for &(_, count) in pairs {
                let p = count as f64 / y_total;
                h_x_given_y -= p * base.log(p);
            }
            h += p_y * h_x_given_y;
        }
        h + (1.0 - mass) * self.entropy_x(base)
    }

    /// Mutual information gain `I(X; Y) = Σ_{x,y} p(x,y)·log(p(x,y) /
    /// (p(x)·p(y)))` in the requested base.
    ///
    /// Equivalent to `Σ_y p(y)·KL(p(X|y) ‖ p(X))`, hence always
    /// non-negative and at most `log |S|`.
    #[must_use]
    pub fn mutual_information(&self, base: LogBase) -> f64 {
        let p_x = self.p_x();
        let mut total = 0.0;
        for (i, pairs) in self.xy_counts.iter().enumerate() {
            let p_y = self.p_y(i);
            if p_y == 0.0 {
                continue;
            }
            let y_total = self.y_counts[i] as f64;
            for &(_, count) in pairs {
                let p_x_given_y = count as f64 / y_total;
                let p_xy = p_x_given_y * p_y;
                total += p_xy * base.log(p_xy / (p_x * p_y));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{examples::cache_coherence, instantiate};
    use std::sync::Arc;

    fn product() -> (InterleavedFlow, Arc<pstrace_flow::MessageCatalog>) {
        let (flow, catalog) = cache_coherence();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
        (u, catalog)
    }

    #[test]
    fn worked_example_marginals() {
        let (u, catalog) = product();
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        assert_eq!(j.indexed_messages().len(), 4);
        assert_eq!(j.total_edges(), 18);
        assert_eq!(j.state_count(), 15);
        assert!((j.p_x() - 1.0 / 15.0).abs() < 1e-12);
        for i in 0..4 {
            assert!((j.p_y(i) - 3.0 / 18.0).abs() < 1e-12, "p(y) = 3/18");
        }
    }

    #[test]
    fn worked_example_conditionals_are_thirds() {
        let (u, catalog) = product();
        let combo = [catalog.get("GntE").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        // Each indexed GntE has exactly 3 target states, each with p = 1/3.
        for (i, _) in j.indexed_messages().iter().enumerate() {
            let mut mass = 0.0;
            for x in u.states() {
                let p = j.p_x_given_y(x, i);
                assert!(p == 0.0 || (p - 1.0 / 3.0).abs() < 1e-12);
                mass += p;
            }
            assert!((mass - 1.0).abs() < 1e-12, "conditional normalizes");
        }
    }

    #[test]
    fn worked_example_gain_is_1_073_nats() {
        let (u, catalog) = product();
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        let gain = j.mutual_information(LogBase::Nats);
        // Closed form: (2/3)·ln 5 = 1.07295…
        assert!((gain - (2.0 / 3.0) * 5f64.ln()).abs() < 1e-12);
        assert!((gain - 1.073).abs() < 1e-3);
    }

    #[test]
    fn information_identity_holds() {
        // I(X;Y) = H(X) − H(X|Y) for every combination size.
        let (u, catalog) = product();
        let all: Vec<_> = catalog.iter().map(|(id, _)| id).collect();
        for k in 0..=all.len() {
            let combo = &all[..k];
            let j = JointDistribution::from_combination(&u, combo);
            let lhs = j.mutual_information(LogBase::Nats);
            let rhs = j.entropy_x(LogBase::Nats) - j.conditional_entropy_x(LogBase::Nats);
            assert!((lhs - rhs).abs() < 1e-12, "k = {k}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn entropies_are_bounded() {
        let (u, catalog) = product();
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        assert!((j.entropy_x(LogBase::Nats) - (15f64).ln()).abs() < 1e-12);
        let hy = j.entropy_y(LogBase::Nats);
        // 4 outcomes at 1/6 each plus a 1/3 residual event.
        let expect = -(4.0 * (1.0 / 6.0) * (1.0f64 / 6.0).ln() + (1.0 / 3.0) * (1.0f64 / 3.0).ln());
        assert!((hy - expect).abs() < 1e-12);
        // Conditioning cannot increase entropy.
        assert!(j.conditional_entropy_x(LogBase::Nats) <= j.entropy_x(LogBase::Nats) + 1e-12);
    }

    #[test]
    fn empty_combination_has_zero_gain() {
        let (u, _) = product();
        let j = JointDistribution::from_combination(&u, &[]);
        assert_eq!(j.indexed_messages().len(), 0);
        assert_eq!(j.mutual_information(LogBase::Nats), 0.0);
    }

    #[test]
    fn gain_is_bounded_by_log_state_count() {
        let (u, catalog) = product();
        let all: Vec<_> = catalog.iter().map(|(id, _)| id).collect();
        let j = JointDistribution::from_combination(&u, &all);
        let gain = j.mutual_information(LogBase::Nats);
        assert!(gain >= 0.0);
        assert!(gain <= (u.state_count() as f64).ln() + 1e-12);
    }

    #[test]
    fn bits_and_nats_differ_by_ln2() {
        let (u, catalog) = product();
        let combo = [catalog.get("Ack").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        let nats = j.mutual_information(LogBase::Nats);
        let bits = j.mutual_information(LogBase::Bits);
        assert!((nats - bits * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn joint_equals_conditional_times_marginal() {
        let (u, catalog) = product();
        let combo = [catalog.get("ReqE").unwrap()];
        let j = JointDistribution::from_combination(&u, &combo);
        for x in u.states() {
            for i in 0..j.indexed_messages().len() {
                let lhs = j.p_xy(x, i);
                let rhs = j.p_x_given_y(x, i) * j.p_y(i);
                assert!((lhs - rhs).abs() < 1e-15);
            }
        }
    }
}
