//! Per-message mutual-information cache (the hot-path accelerator).
//!
//! [`JointDistribution::from_combination`](crate::JointDistribution) walks
//! every edge of the interleaving for every candidate combination, which
//! makes Step 2 of the paper quadratic-ish: `O(|candidates| · |edges|)`.
//! But the MI estimator has a special structure worth exploiting: every
//! edge of the interleaving is labeled by exactly one indexed message, each
//! indexed message belongs to exactly one catalog message, and both the
//! state prior `p_X(x) = 1/|S|` and the marginal denominator (the total
//! edge count) are *combination-independent*. The MI sum
//!
//! ```text
//! I(X;Y) = Σ_y Σ_x p(x,y)·log(p(x,y)/(p(x)·p(y)))
//! ```
//!
//! therefore decomposes exactly into per-indexed-message contributions that
//! can be computed once, in a single pass over the edges, and reused by
//! every combination containing that message.
//!
//! [`MiCache`] stores, for every catalog message, the list of its indexed
//! messages in first-edge order, each with its pre-computed MI summand
//! terms. [`MiCache::combination_mi`] then reproduces
//! `JointDistribution::from_combination(..).mutual_information(..)`
//! **bit-identically**: the from-scratch computation visits indexed
//! messages in first-encounter edge order and accumulates the per-state
//! terms left to right into a single accumulator, so replaying the cached
//! terms in the same merged order performs the exact same sequence of
//! floating-point additions.
//!
//! For greedy extension loops (beam search, Step-3 packing) the cache also
//! exposes [`MiCache::message_delta`]: the *incremental* gain of adding one
//! more message, exact in real arithmetic and within a few ULPs of the
//! merged sum in floating point.

use std::collections::HashMap;

use pstrace_flow::{InterleavedFlow, MessageId};

use crate::joint::JointDistribution;
use crate::pmf::LogBase;

/// One indexed message's cached slice of the MI sum.
#[derive(Debug, Clone)]
struct IndexedEntry {
    /// Position (in `flow.edges()` order) of the first edge labeled with
    /// this indexed message. Determines the merge order that makes
    /// [`MiCache::combination_mi`] bit-identical to the from-scratch sum.
    first_pos: usize,
    /// The MI summand `p(x,y)·log(p(x,y)/(p(x)·p(y)))` for each target
    /// state of this indexed message, in ascending state order (the order
    /// the from-scratch computation visits them).
    terms: Vec<f64>,
}

/// A catalog message's cached data: all its indexed instances.
#[derive(Debug, Clone, Default)]
struct MessageEntry {
    /// Indexed instances in first-edge order.
    ys: Vec<IndexedEntry>,
    /// Flat sum of all terms (one accumulator, ys then terms in order):
    /// the message's standalone MI, also its exact additive delta.
    contribution: f64,
    /// Total marginal probability mass Σ p(y) over this message's indexed
    /// instances.
    marginal_mass: f64,
}

/// Per-message MI cache over one interleaved flow and one logarithm base.
///
/// Build once per `(flow, base)` with [`MiCache::new`], then score any
/// number of combinations with [`MiCache::combination_mi`] — each scoring
/// costs a merge of the combination's cached term lists instead of a full
/// pass over the interleaving's edges.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow};
/// use pstrace_infogain::{mutual_information, LogBase, MiCache};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, catalog) = cache_coherence();
/// let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// let cache = MiCache::new(&product, LogBase::Nats);
///
/// let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
/// // Bit-identical to the from-scratch computation, at a fraction of the
/// // cost when scoring many combinations.
/// assert_eq!(
///     cache.combination_mi(&combo),
///     mutual_information(&product, &combo, LogBase::Nats),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MiCache {
    base: LogBase,
    entries: HashMap<MessageId, MessageEntry>,
    state_count: usize,
    total_edges: u64,
}

impl MiCache {
    /// Builds the cache in one pass over `flow`'s edges.
    #[must_use]
    pub fn new(flow: &InterleavedFlow, base: LogBase) -> Self {
        // Single-message statistics, keyed by indexed message in
        // first-encounter order (mirrors JointDistribution's bookkeeping
        // for the full-alphabet combination).
        let mut y_order: HashMap<pstrace_flow::IndexedMessage, usize> = HashMap::new();
        let mut ys: Vec<(pstrace_flow::IndexedMessage, usize)> = Vec::new(); // (y, first_pos)
        let mut y_counts: Vec<u64> = Vec::new();
        let mut xy_maps: Vec<HashMap<pstrace_flow::ProductStateId, u64>> = Vec::new();

        for (pos, edge) in flow.edges().iter().enumerate() {
            let yi = *y_order.entry(edge.message).or_insert_with(|| {
                ys.push((edge.message, pos));
                y_counts.push(0);
                xy_maps.push(HashMap::new());
                ys.len() - 1
            });
            y_counts[yi] += 1;
            *xy_maps[yi].entry(edge.to).or_insert(0) += 1;
        }

        let total_edges = flow.edge_count() as u64;
        let state_count = flow.state_count();
        let p_x = 1.0 / state_count as f64;

        let mut entries: HashMap<MessageId, MessageEntry> = HashMap::new();
        for (yi, &(y, first_pos)) in ys.iter().enumerate() {
            // Exactly the summand sequence of
            // `JointDistribution::mutual_information` for this y.
            let mut pairs: Vec<(pstrace_flow::ProductStateId, u64)> =
                xy_maps[yi].iter().map(|(&s, &c)| (s, c)).collect();
            pairs.sort_unstable_by_key(|(s, _)| *s);
            let p_y = y_counts[yi] as f64 / total_edges as f64;
            let y_total = y_counts[yi] as f64;
            let terms: Vec<f64> = pairs
                .iter()
                .map(|&(_, count)| {
                    let p_x_given_y = count as f64 / y_total;
                    let p_xy = p_x_given_y * p_y;
                    p_xy * base.log(p_xy / (p_x * p_y))
                })
                .collect();
            let entry = entries.entry(y.message).or_default();
            entry.marginal_mass += p_y;
            entry.ys.push(IndexedEntry { first_pos, terms });
        }
        for entry in entries.values_mut() {
            // ys were inserted in edge-scan order, so they are already
            // sorted by first_pos; keep the invariant explicit.
            entry.ys.sort_unstable_by_key(|y| y.first_pos);
            let mut sum = 0.0;
            for y in &entry.ys {
                for &t in &y.terms {
                    sum += t;
                }
            }
            entry.contribution = sum;
        }

        MiCache {
            base,
            entries,
            state_count,
            total_edges,
        }
    }

    /// The logarithm base the cached terms were computed in.
    #[must_use]
    pub fn base(&self) -> LogBase {
        self.base
    }

    /// Number of product states `|S|` of the underlying interleaving.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Total number of edges of the underlying interleaving (the marginal
    /// denominator).
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Mutual information of `combination`, bit-identical to
    /// [`JointDistribution::from_combination`] followed by
    /// [`JointDistribution::mutual_information`] with this cache's base.
    ///
    /// Duplicate message ids are ignored (as the from-scratch membership
    /// test does); messages that never label an edge contribute nothing.
    #[must_use]
    pub fn combination_mi(&self, combination: &[MessageId]) -> f64 {
        // Collect the combination's indexed messages and replay their
        // cached terms in global first-edge order — the exact visit order
        // of the from-scratch computation.
        let mut seen: Vec<MessageId> = Vec::with_capacity(combination.len());
        let mut ys: Vec<&IndexedEntry> = Vec::new();
        for &m in combination {
            if seen.contains(&m) {
                continue;
            }
            seen.push(m);
            if let Some(entry) = self.entries.get(&m) {
                ys.extend(entry.ys.iter());
            }
        }
        ys.sort_unstable_by_key(|y| y.first_pos);
        let mut total = 0.0;
        for y in ys {
            for &t in &y.terms {
                total += t;
            }
        }
        total
    }

    /// The exact incremental MI of adding `message` to any combination not
    /// already containing it: per-message contributions are disjoint, so
    /// `MI(C ∪ {m}) = MI(C) + message_delta(m)` in real arithmetic (in
    /// floating point the two sides agree to a few ULPs; use
    /// [`MiCache::combination_mi`] where bit-stability matters).
    ///
    /// Returns `0.0` for messages that never label an edge.
    #[must_use]
    pub fn message_delta(&self, message: MessageId) -> f64 {
        self.entries.get(&message).map_or(0.0, |e| e.contribution)
    }

    /// Total marginal mass `Σ p(y)` over `message`'s indexed instances —
    /// the cached single-message marginal.
    #[must_use]
    pub fn message_marginal(&self, message: MessageId) -> f64 {
        self.entries.get(&message).map_or(0.0, |e| e.marginal_mass)
    }

    /// Number of indexed instances of `message` observed on edges.
    #[must_use]
    pub fn indexed_instance_count(&self, message: MessageId) -> usize {
        self.entries.get(&message).map_or(0, |e| e.ys.len())
    }

    /// Whether `message` labels at least one edge (i.e. the cache holds an
    /// entry for it and a lookup would hit).
    #[must_use]
    pub fn contains(&self, message: MessageId) -> bool {
        self.entries.contains_key(&message)
    }

    /// Counts the `(hits, misses)` a [`MiCache::combination_mi`] call over
    /// `combination` performs against the per-message table, deduplicating
    /// the way the scoring path does.
    ///
    /// This exists for observability: the ranking hot path stays free of
    /// instrumentation (shared atomic hit counters would contend across
    /// worker threads), and profilers recount after the fact instead.
    #[must_use]
    pub fn lookup_stats(&self, combination: &[MessageId]) -> (u64, u64) {
        let mut seen: Vec<MessageId> = Vec::with_capacity(combination.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for &m in combination {
            if seen.contains(&m) {
                continue;
            }
            seen.push(m);
            if self.contains(m) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        (hits, misses)
    }

    /// Debug helper: asserts the cache reproduces the from-scratch value
    /// for `combination`. Used by tests; cheap enough to call ad hoc.
    ///
    /// # Panics
    ///
    /// Panics if the cached and from-scratch values differ in any bit.
    pub fn verify_against(&self, flow: &InterleavedFlow, combination: &[MessageId]) {
        let cached = self.combination_mi(combination);
        let scratch =
            JointDistribution::from_combination(flow, combination).mutual_information(self.base);
        assert!(
            cached.to_bits() == scratch.to_bits(),
            "cache mismatch for {combination:?}: cached {cached:e} vs scratch {scratch:e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{examples::cache_coherence, instantiate};
    use std::sync::Arc;

    fn product() -> (InterleavedFlow, Arc<pstrace_flow::MessageCatalog>) {
        let (flow, catalog) = cache_coherence();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
        (u, catalog)
    }

    #[test]
    fn matches_scratch_bitwise_on_all_subsets() {
        let (u, catalog) = product();
        let all: Vec<MessageId> = catalog.iter().map(|(id, _)| id).collect();
        for base in [LogBase::Nats, LogBase::Bits] {
            let cache = MiCache::new(&u, base);
            // All 2^n subsets of the running example's alphabet.
            for mask in 0u32..(1 << all.len()) {
                let combo: Vec<MessageId> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &m)| m)
                    .collect();
                cache.verify_against(&u, &combo);
            }
        }
    }

    #[test]
    fn order_of_combination_does_not_matter() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        let req = catalog.get("ReqE").unwrap();
        let gnt = catalog.get("GntE").unwrap();
        assert_eq!(
            cache.combination_mi(&[req, gnt]).to_bits(),
            cache.combination_mi(&[gnt, req]).to_bits()
        );
    }

    #[test]
    fn duplicates_are_ignored() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        let req = catalog.get("ReqE").unwrap();
        assert_eq!(
            cache.combination_mi(&[req, req]).to_bits(),
            cache.combination_mi(&[req]).to_bits()
        );
    }

    #[test]
    fn deltas_are_additive_to_ulp() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        let all: Vec<MessageId> = catalog.iter().map(|(id, _)| id).collect();
        let mut combo: Vec<MessageId> = Vec::new();
        let mut additive = 0.0;
        for &m in &all {
            additive += cache.message_delta(m);
            combo.push(m);
            let merged = cache.combination_mi(&combo);
            assert!(
                (additive - merged).abs() <= 1e-12 * merged.abs().max(1.0),
                "additive {additive} vs merged {merged}"
            );
        }
    }

    #[test]
    fn empty_combination_is_zero() {
        let (u, _) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        assert_eq!(cache.combination_mi(&[]), 0.0);
    }

    #[test]
    fn running_example_value() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let gain = cache.combination_mi(&combo);
        assert!((gain - (2.0 / 3.0) * 5f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lookup_stats_dedup_and_miss_counting() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        let req = catalog.get("ReqE").unwrap();
        let gnt = catalog.get("GntE").unwrap();
        assert!(cache.contains(req));
        // A freshly interned message never labels an edge of the product.
        let mut extended = (*catalog).clone();
        let bogus = extended.intern("NeverSent", 1);
        assert!(!cache.contains(bogus));
        assert_eq!(cache.lookup_stats(&[req, gnt]), (2, 0));
        assert_eq!(cache.lookup_stats(&[req, req, gnt]), (2, 0));
        assert_eq!(cache.lookup_stats(&[req, bogus]), (1, 1));
        assert_eq!(cache.lookup_stats(&[]), (0, 0));
    }

    #[test]
    fn marginals_and_instance_counts_match_joint() {
        let (u, catalog) = product();
        let cache = MiCache::new(&u, LogBase::Nats);
        for (m, _) in catalog.iter() {
            let j = JointDistribution::from_combination(&u, &[m]);
            let mass: f64 = (0..j.indexed_messages().len()).map(|i| j.p_y(i)).sum();
            assert!((cache.message_marginal(m) - mass).abs() < 1e-15);
            assert_eq!(cache.indexed_instance_count(m), j.indexed_messages().len());
        }
    }
}
