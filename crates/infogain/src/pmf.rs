//! Probability mass functions and entropy.

use std::fmt;

/// Logarithm base used for information measures.
///
/// The paper's worked example (`I(X;Y₁) = 1.073` for the running
/// cache-coherence interleaving, §3.2) is only reproduced with the natural
/// logarithm, so [`LogBase::Nats`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogBase {
    /// Natural logarithm — information in nats (paper default).
    #[default]
    Nats,
    /// Base-2 logarithm — information in bits.
    Bits,
}

impl LogBase {
    /// Applies the logarithm in this base.
    #[must_use]
    pub fn log(self, x: f64) -> f64 {
        match self {
            LogBase::Nats => x.ln(),
            LogBase::Bits => x.log2(),
        }
    }
}

impl fmt::Display for LogBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogBase::Nats => write!(f, "nats"),
            LogBase::Bits => write!(f, "bits"),
        }
    }
}

/// A finite probability mass function over `0..len`.
///
/// Construction validates non-negativity and (approximate) normalization;
/// a `Pmf` in circulation is always a valid distribution.
///
/// # Examples
///
/// ```
/// use pstrace_infogain::{LogBase, Pmf};
///
/// # fn main() -> Result<(), pstrace_infogain::PmfError> {
/// let p = Pmf::new(vec![0.5, 0.25, 0.25])?;
/// let h = p.entropy(LogBase::Bits);
/// assert!((h - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    probs: Vec<f64>,
}

/// Error building a [`Pmf`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PmfError {
    /// The probability vector was empty.
    Empty,
    /// A probability was negative or not finite.
    Invalid {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The probabilities do not sum to 1 (beyond tolerance).
    NotNormalized {
        /// The observed sum.
        sum: f64,
    },
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::Empty => write!(f, "probability vector is empty"),
            PmfError::Invalid { index, value } => {
                write!(f, "probability at index {index} is invalid: {value}")
            }
            PmfError::NotNormalized { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
        }
    }
}

impl std::error::Error for PmfError {}

const NORMALIZATION_TOLERANCE: f64 = 1e-9;

impl Pmf {
    /// Builds a PMF from explicit probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError`] if the vector is empty, contains negative or
    /// non-finite entries, or does not sum to 1 within `1e-9`.
    pub fn new(probs: Vec<f64>) -> Result<Self, PmfError> {
        if probs.is_empty() {
            return Err(PmfError::Empty);
        }
        for (index, &value) in probs.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(PmfError::Invalid { index, value });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(PmfError::NotNormalized { sum });
        }
        Ok(Pmf { probs })
    }

    /// Builds a PMF from event counts, normalizing by their total.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::Empty`] if `counts` is empty, or
    /// [`PmfError::NotNormalized`] if every count is zero.
    pub fn from_counts(counts: &[u64]) -> Result<Self, PmfError> {
        if counts.is_empty() {
            return Err(PmfError::Empty);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(PmfError::NotNormalized { sum: 0.0 });
        }
        let probs = counts.iter().map(|&c| c as f64 / total as f64).collect();
        Ok(Pmf { probs })
    }

    /// The uniform distribution over `len` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn uniform(len: usize) -> Self {
        assert!(len > 0, "uniform distribution needs at least one outcome");
        Pmf {
            probs: vec![1.0 / len as f64; len],
        }
    }

    /// Probability of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the PMF has no outcomes (never true for a valid `Pmf`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The probabilities as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Shannon entropy `H = -Σ p log p` in the given base. Zero-probability
    /// outcomes contribute nothing.
    #[must_use]
    pub fn entropy(&self, base: LogBase) -> f64 {
        entropy_of(&self.probs, base)
    }
}

/// Shannon entropy of an arbitrary (possibly subnormalized) weight vector,
/// treating `0 log 0 = 0`.
#[must_use]
pub fn entropy_of(probs: &[f64], base: LogBase) -> f64 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * base.log(p))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_entropy_is_log_n() {
        let p = Pmf::uniform(8);
        assert!((p.entropy(LogBase::Bits) - 3.0).abs() < 1e-12);
        assert!((p.entropy(LogBase::Nats) - (8f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn point_mass_entropy_is_zero() {
        let p = Pmf::new(vec![1.0, 0.0, 0.0]).unwrap();
        assert_eq!(p.entropy(LogBase::Bits), 0.0);
    }

    #[test]
    fn from_counts_normalizes() {
        let p = Pmf::from_counts(&[1, 3]).unwrap();
        assert!((p.prob(0) - 0.25).abs() < 1e-12);
        assert!((p.prob(1) - 0.75).abs() < 1e-12);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Pmf::new(vec![]).unwrap_err(), PmfError::Empty);
        assert_eq!(Pmf::from_counts(&[]).unwrap_err(), PmfError::Empty);
    }

    #[test]
    fn rejects_negative() {
        let err = Pmf::new(vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(err, PmfError::Invalid { index: 1, .. }));
    }

    #[test]
    fn rejects_unnormalized() {
        let err = Pmf::new(vec![0.4, 0.4]).unwrap_err();
        assert!(matches!(err, PmfError::NotNormalized { .. }));
        assert!(matches!(
            Pmf::from_counts(&[0, 0]).unwrap_err(),
            PmfError::NotNormalized { .. }
        ));
    }

    #[test]
    fn rejects_nan() {
        let err = Pmf::new(vec![f64::NAN, 1.0]).unwrap_err();
        assert!(matches!(err, PmfError::Invalid { index: 0, .. }));
    }

    #[test]
    fn log_base_display() {
        assert_eq!(LogBase::Nats.to_string(), "nats");
        assert_eq!(LogBase::Bits.to_string(), "bits");
        assert_eq!(LogBase::default(), LogBase::Nats);
    }
}
