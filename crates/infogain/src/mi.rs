//! Convenience entry points for mutual information gain.

use pstrace_flow::{InterleavedFlow, MessageId};

use crate::joint::JointDistribution;
use crate::pmf::LogBase;

/// Mutual information gain of the interleaved-flow state `X` relative to
/// the indexed messages of `combination` (§3.2), in the requested base.
///
/// This is the selection metric of the paper: higher gain means observing
/// the combination's messages tells the debugger more about where the
/// interleaved execution is.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow};
/// use pstrace_infogain::{mutual_information, LogBase};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, catalog) = cache_coherence();
/// let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
/// let gain = mutual_information(&product, &combo, LogBase::Nats);
/// assert!((gain - 1.073).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn mutual_information(flow: &InterleavedFlow, combination: &[MessageId], base: LogBase) -> f64 {
    JointDistribution::from_combination(flow, combination).mutual_information(base)
}

/// Mutual information gain in nats (the paper's convention).
#[must_use]
pub fn mutual_information_nats(flow: &InterleavedFlow, combination: &[MessageId]) -> f64 {
    mutual_information(flow, combination, LogBase::Nats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{examples::cache_coherence, instantiate};
    use std::sync::Arc;

    #[test]
    fn convenience_matches_joint() {
        let (flow, catalog) = cache_coherence();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
        let combo = [catalog.get("ReqE").unwrap()];
        let direct = mutual_information(&u, &combo, LogBase::Nats);
        let via_joint =
            JointDistribution::from_combination(&u, &combo).mutual_information(LogBase::Nats);
        assert_eq!(direct, via_joint);
        assert_eq!(mutual_information_nats(&u, &combo), direct);
    }

    #[test]
    fn all_single_messages_rank_below_the_best_pair() {
        // In the running example the highest-gain pair is {ReqE, GntE};
        // every singleton carries strictly less information.
        let (flow, catalog) = cache_coherence();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
        let req = catalog.get("ReqE").unwrap();
        let gnt = catalog.get("GntE").unwrap();
        let ack = catalog.get("Ack").unwrap();
        let best = mutual_information_nats(&u, &[req, gnt]);
        for single in [req, gnt, ack] {
            assert!(mutual_information_nats(&u, &[single]) < best);
        }
    }
}
