//! Information-theoretic machinery for trace message selection.
//!
//! Implements the mutual-information-gain metric of *Application Level
//! Hardware Tracing for Scaling Post-Silicon Debug* (DAC 2018, §3.2):
//! the interleaved flow's state `X` is uniform over the product states, the
//! observed variable `Y` ranges over the indexed messages of a candidate
//! combination, and both marginal and conditional are estimated by edge
//! counting over the interleaving. See [`JointDistribution`] for the exact
//! estimator and [`mutual_information`] for the one-call entry point.
//!
//! The paper's worked example (`I(X;Y₁) = 1.073`) pins the logarithm base
//! to nats; [`LogBase`] lets callers switch to bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod joint;
mod mi;
mod pmf;

pub use cache::MiCache;
pub use joint::JointDistribution;
pub use mi::{mutual_information, mutual_information_nats};
pub use pmf::{entropy_of, LogBase, Pmf, PmfError};
