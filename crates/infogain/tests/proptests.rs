//! Property-based tests for the information-gain machinery.

use std::sync::Arc;

use proptest::prelude::*;
use pstrace_flow::{FlowBuilder, FlowIndex, IndexedFlow, InterleavedFlow, MessageCatalog};
use pstrace_infogain::{mutual_information, JointDistribution, LogBase, Pmf};

fn linear_pair(a: usize, b: usize) -> (InterleavedFlow, Arc<MessageCatalog>) {
    let mut c = MessageCatalog::new();
    for f in 0..2 {
        for i in 0..6 {
            c.intern(&format!("f{f}_m{i}"), 1);
        }
    }
    let catalog = Arc::new(c);
    let mut flows = Vec::new();
    for (f, len) in [(0usize, a), (1usize, b)] {
        let name = format!("f{f}");
        let mut builder = FlowBuilder::new(&name);
        for i in 0..=len {
            let s = format!("{name}_s{i}");
            builder = if i == len {
                builder.stop_state(&s)
            } else {
                builder.state(&s)
            };
        }
        builder = builder.initial(&format!("{name}_s0"));
        for i in 0..len {
            builder = builder.edge(
                &format!("{name}_s{i}"),
                &format!("{name}_m{i}"),
                &format!("{name}_s{}", i + 1),
            );
        }
        flows.push(IndexedFlow::new(
            Arc::new(builder.build(&catalog).unwrap()),
            FlowIndex(1),
        ));
    }
    (InterleavedFlow::build(&flows).unwrap(), catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MI is non-negative and bounded by log |S| for any sub-combination.
    #[test]
    fn mi_bounds(a in 1usize..5, b in 1usize..5, pick in proptest::collection::vec(any::<bool>(), 10)) {
        let (u, _) = linear_pair(a, b);
        let alphabet = u.message_alphabet();
        let combo: Vec<_> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let gain = mutual_information(&u, &combo, LogBase::Nats);
        prop_assert!(gain >= -1e-12);
        prop_assert!(gain <= (u.state_count() as f64).ln() + 1e-9);
    }

    /// MI is monotone under combination growth for this estimator: adding a
    /// message adds non-negative KL mass.
    #[test]
    fn mi_monotone_in_combination(a in 1usize..5, b in 1usize..5, pick in proptest::collection::vec(any::<bool>(), 10)) {
        let (u, _) = linear_pair(a, b);
        let alphabet = u.message_alphabet();
        let combo: Vec<_> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let sub = mutual_information(&u, &combo, LogBase::Nats);
        let full = mutual_information(&u, &alphabet, LogBase::Nats);
        prop_assert!(sub <= full + 1e-12);
    }

    /// For every y outcome, the conditional p(x|y) is a distribution; the
    /// joint sums to the marginal.
    #[test]
    fn conditionals_normalize(a in 1usize..5, b in 1usize..5) {
        let (u, _) = linear_pair(a, b);
        let alphabet = u.message_alphabet();
        let j = JointDistribution::from_combination(&u, &alphabet);
        for i in 0..j.indexed_messages().len() {
            let mut cond = 0.0;
            let mut joint = 0.0;
            for x in u.states() {
                cond += j.p_x_given_y(x, i);
                joint += j.p_xy(x, i);
            }
            prop_assert!((cond - 1.0).abs() < 1e-9);
            prop_assert!((joint - j.p_y(i)).abs() < 1e-9);
        }
        // Full-alphabet marginals sum to 1 (every edge is selected).
        let total: f64 = (0..j.indexed_messages().len()).map(|i| j.p_y(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// PMFs from counts are valid and have entropy ≤ log n.
    #[test]
    fn pmf_entropy_bound(counts in proptest::collection::vec(0u64..100, 1..12)) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let p = Pmf::from_counts(&counts).unwrap();
        let h = p.entropy(LogBase::Nats);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (p.len() as f64).ln() + 1e-9);
    }
}
