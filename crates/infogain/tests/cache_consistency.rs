//! Cache consistency: MI computed through [`MiCache`] must equal MI
//! computed from scratch via [`JointDistribution`] — not approximately,
//! but bit for bit, because the exhaustive ranking tie-breaks on exact
//! gain comparisons and the docs/results goldens pin printed digits.

use std::sync::Arc;

use pstrace_flow::{
    examples::cache_coherence, instantiate, FlowBuilder, InterleavedFlow, MessageCatalog, MessageId,
};
use pstrace_infogain::{mutual_information, JointDistribution, LogBase, MiCache};

/// Every subset of `alphabet` (up to 2^16 of them) scores identically
/// through the cache and from scratch.
fn assert_all_subsets_bitwise(flow: &InterleavedFlow, alphabet: &[MessageId], base: LogBase) {
    assert!(alphabet.len() <= 16, "subset sweep too large");
    let cache = MiCache::new(flow, base);
    for mask in 0u32..(1 << alphabet.len()) {
        let combo: Vec<MessageId> = alphabet
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        let cached = cache.combination_mi(&combo);
        let scratch = mutual_information(flow, &combo, base);
        assert_eq!(
            cached.to_bits(),
            scratch.to_bits(),
            "mask {mask:#b}: cached {cached:e} vs scratch {scratch:e}"
        );
    }
}

#[test]
fn running_example_all_subsets_all_instance_counts() {
    let (flow, catalog) = cache_coherence();
    let flow = Arc::new(flow);
    let alphabet: Vec<MessageId> = catalog.iter().map(|(id, _)| id).collect();
    for instances in 1..=3u32 {
        let product = InterleavedFlow::build(&instantiate(&flow, instances)).unwrap();
        for base in [LogBase::Nats, LogBase::Bits] {
            assert_all_subsets_bitwise(&product, &alphabet, base);
        }
    }
}

#[test]
fn asymmetric_widths_and_reused_messages() {
    // A branching flow where one message labels several edges (so its
    // edge counts differ from the others') and widths are unequal.
    let mut catalog = MessageCatalog::new();
    catalog.intern("left", 2);
    catalog.intern("right", 3);
    catalog.intern("join", 1);
    let catalog = Arc::new(catalog);
    let flow = FlowBuilder::new("branchy")
        .state("s0")
        .state("s1")
        .state("s2")
        .stop_state("fin")
        .initial("s0")
        .edge("s0", "left", "s1")
        .edge("s0", "right", "s2")
        .edge("s1", "join", "fin")
        .edge("s2", "join", "fin")
        .build(&catalog)
        .unwrap();
    let flow = Arc::new(flow);
    let alphabet: Vec<MessageId> = catalog.iter().map(|(id, _)| id).collect();
    for instances in 1..=3u32 {
        let product = InterleavedFlow::build(&instantiate(&flow, instances)).unwrap();
        assert_all_subsets_bitwise(&product, &alphabet, LogBase::Nats);
    }
}

#[test]
fn cache_agrees_with_joint_distribution_internals() {
    // The cached per-message contribution equals the single-message MI,
    // and the additive identity holds to floating-point accuracy.
    let (flow, catalog) = cache_coherence();
    let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
    let cache = MiCache::new(&product, LogBase::Nats);
    assert_eq!(cache.total_edges(), product.edge_count() as u64);
    assert_eq!(cache.state_count(), product.state_count());

    let mut running: Vec<MessageId> = Vec::new();
    let mut additive = 0.0;
    for (m, _) in catalog.iter() {
        let single =
            JointDistribution::from_combination(&product, &[m]).mutual_information(LogBase::Nats);
        assert_eq!(cache.message_delta(m).to_bits(), single.to_bits());

        additive += cache.message_delta(m);
        running.push(m);
        let merged = cache.combination_mi(&running);
        assert!(
            (additive - merged).abs() <= 1e-12 * merged.abs().max(1.0),
            "additive {additive} vs merged {merged}"
        );
    }
}
