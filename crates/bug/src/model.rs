//! Bug specifications (Table 2 / the QED bug-model classes).

use std::fmt;

use pstrace_flow::MessageId;
use pstrace_soc::Ip;

/// Functional category of a bug (Table 2, column 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugCategory {
    /// Control-path bug: wrong command, wrong decode, lost handshake.
    Control,
    /// Data-path bug: payload corruption, wrong address generation.
    Data,
}

impl fmt::Display for BugCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugCategory::Control => write!(f, "Control"),
            BugCategory::Data => write!(f, "Data"),
        }
    }
}

/// How a bug perturbs the message it fires on.
///
/// The kinds map onto the paper's Table 2 bug types and the QED bug model's
/// commonly occurring SoC communication bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BugKind {
    /// Payload bits flipped (data corruption): value XORed with `mask`.
    CorruptPayload {
        /// Bits to flip.
        mask: u64,
    },
    /// Wrong address generation: the payload is replaced by a deranged
    /// rehash of itself (Table 2, bug 2).
    WrongAddress,
    /// Wrong command generation by data misinterpretation (Table 2, bug 1):
    /// the command field (low bits) is replaced by a fixed wrong opcode.
    WrongCommand,
    /// Malformed request construction, e.g. a bad Unit Control Block
    /// (Table 2, bug 3): high bits are zeroed.
    MalformedRequest,
    /// Incorrect decoding of an incoming packet (Table 2, bug 4): the
    /// payload is replaced by the decode of the wrong source field.
    WrongDecode,
    /// The message is never generated (e.g. an interrupt that is never
    /// raised, §5.7): the sending flow instance hangs.
    DropMessage,
    /// The message is sent to the wrong destination IP.
    Misroute {
        /// The erroneous destination.
        to: Ip,
    },
    /// The message's channel buffer credit is never returned (a credit
    /// accounting bug). Requires the simulator's credit backpressure
    /// ([`SimConfig::channel_credits`]) to be enabled; once the channel's
    /// pool drains, senders stall — a symptom that takes many messages to
    /// manifest, like the paper's subtlest bugs.
    ///
    /// [`SimConfig::channel_credits`]: pstrace_soc::SimConfig::channel_credits
    LeakCredit,
}

/// When a bug fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugTrigger {
    /// Fires on every matching message.
    Always,
    /// Fires only on the `n`-th (0-based) occurrence of the matching
    /// message, making the bug rare and subtle.
    OnOccurrence(u32),
}

/// A complete bug specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugSpec {
    /// Catalog id.
    pub id: u32,
    /// Hierarchical depth of the buggy block from the SoC top (Table 2,
    /// column 2).
    pub depth: u32,
    /// Control or data.
    pub category: BugCategory,
    /// The perturbation applied.
    pub kind: BugKind,
    /// The buggy IP; only messages *sourced* by it can be affected.
    pub ip: Ip,
    /// The specific message the bug corrupts at injection time.
    pub target: MessageId,
    /// Firing condition.
    pub trigger: BugTrigger,
    /// Human-readable description (Table 2, column 4 style).
    pub description: &'static str,
}

impl BugSpec {
    /// Whether this bug makes its flow instance hang (drop-class bugs).
    #[must_use]
    pub fn causes_hang(&self) -> bool {
        matches!(self.kind, BugKind::DropMessage)
    }
}

impl fmt::Display for BugSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bug {} [{} in {} @ depth {}]: {}",
            self.id, self.category, self.ip, self.depth, self.description
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_soc::SocModel;

    #[test]
    fn display_mentions_id_ip_and_category() {
        let model = SocModel::t2();
        let target = model.catalog().get("dmusiidata").unwrap();
        let bug = BugSpec {
            id: 1,
            depth: 4,
            category: BugCategory::Control,
            kind: BugKind::WrongCommand,
            ip: Ip::Dmu,
            target,
            trigger: BugTrigger::Always,
            description: "wrong command generation by data misinterpretation",
        };
        let s = bug.to_string();
        assert!(s.contains("bug 1"));
        assert!(s.contains("DMU"));
        assert!(s.contains("Control"));
        assert!(!bug.causes_hang());
    }

    #[test]
    fn drop_bugs_cause_hangs() {
        let model = SocModel::t2();
        let target = model.catalog().get("reqtot").unwrap();
        let bug = BugSpec {
            id: 2,
            depth: 3,
            category: BugCategory::Control,
            kind: BugKind::DropMessage,
            ip: Ip::Dmu,
            target,
            trigger: BugTrigger::Always,
            description: "interrupt never generated",
        };
        assert!(bug.causes_hang());
    }
}
