//! Bug models, injection and bug-coverage analysis.
//!
//! Reproduces the bug side of the paper's evaluation: a catalog of subtle
//! communication bugs (Table 2 rows among them, following the industrial
//! examples and QED bug-model classes the paper cites), an injection layer
//! hooking into the SoC simulator, symptom detection (hangs and
//! `Bad Trap`-style payload check failures), and the bug-coverage /
//! message-importance analysis of Table 5.
//!
//! # Examples
//!
//! Run case study 1 — the never-generated Mondo interrupt — and observe its
//! hang symptom:
//!
//! ```
//! use pstrace_bug::{bug_catalog, case_studies, detect_symptom, BugInterceptor, Symptom};
//! use pstrace_soc::{SimConfig, Simulator, SocModel};
//!
//! let model = SocModel::t2();
//! let catalog = bug_catalog(&model);
//! let cs = &case_studies()[0];
//! let sim = Simulator::new(&model, cs.scenario.clone(), SimConfig::with_seed(cs.seed));
//! let golden = sim.run();
//! let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&catalog)));
//! assert!(matches!(detect_symptom(&golden, &buggy), Some(Symptom::Hang { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod catalog;
mod coverage;
mod inject;
mod model;
mod symptom;

pub use catalog::{bug_catalog, case_studies, CaseStudy};
pub use coverage::{affected_messages, bug_coverage, BugCoverageRow, BugCoverageTable};
pub use inject::BugInterceptor;
pub use model::{BugCategory, BugKind, BugSpec, BugTrigger};
pub use symptom::{detect_symptom, Symptom};
