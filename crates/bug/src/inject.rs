//! Bug injection: turning [`BugSpec`]s into a simulator interceptor.
//!
//! A fired bug perturbs the targeted message, and — except for drops —
//! *taints* the emitting flow instance: every later message of that
//! instance carries data derived from the corrupted state, so its payload
//! is garbled too. This models downstream propagation (a wrongly decoded
//! request produces a wrong response, etc.) and is what makes a single
//! injection affect several messages, as in the paper's Table 5 where each
//! bug affects up to four messages.

use std::collections::{HashMap, HashSet};

use pstrace_flow::{FlowIndex, MessageId};
use pstrace_soc::value::{mask_to_width, splitmix64};
use pstrace_soc::{InterceptAction, MessageEvent, MessageInterceptor, SocModel};

use crate::model::{BugKind, BugSpec, BugTrigger};

/// Salt mixed into tainted downstream payloads.
const TAINT_SALT: u64 = 0x7a17_7a17_7a17_7a17;

/// Interceptor activating a set of bugs during simulation.
///
/// # Examples
///
/// ```
/// use pstrace_bug::{bug_catalog, BugInterceptor};
/// use pstrace_soc::{SimConfig, Simulator, SocModel, UsageScenario};
///
/// let model = SocModel::t2();
/// let catalog = bug_catalog(&model);
/// let mut interceptor = BugInterceptor::new(&model, vec![catalog[1].clone()]);
/// let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(1));
/// let buggy = sim.run_with(&mut interceptor);
/// let golden = sim.run();
/// assert_ne!(golden, buggy, "the bug must leave a trace-level footprint");
/// ```
#[derive(Debug, Clone)]
pub struct BugInterceptor {
    bugs: Vec<BugSpec>,
    widths: HashMap<MessageId, u32>,
    tainted: HashSet<FlowIndex>,
    fired: Vec<bool>,
    /// Per-bug count of matching emissions seen so far (drives
    /// [`BugTrigger::OnOccurrence`], which counts the buggy IP's emissions
    /// of the target message regardless of flow instance).
    seen: Vec<u32>,
}

impl BugInterceptor {
    /// Creates an interceptor with the given active bugs.
    ///
    /// `model` supplies message widths so corrupted payloads stay within
    /// their message's bit width.
    #[must_use]
    pub fn new(model: &SocModel, bugs: Vec<BugSpec>) -> Self {
        let widths = model
            .catalog()
            .iter()
            .map(|(id, m)| (id, m.width()))
            .collect();
        let fired = vec![false; bugs.len()];
        let seen = vec![0; bugs.len()];
        BugInterceptor {
            bugs,
            widths,
            tainted: HashSet::new(),
            fired,
            seen,
        }
    }

    /// The active bugs.
    #[must_use]
    pub fn bugs(&self) -> &[BugSpec] {
        &self.bugs
    }

    /// Which bugs fired at least once since the last [`reset`].
    ///
    /// [`reset`]: BugInterceptor::reset
    #[must_use]
    pub fn fired(&self) -> &[bool] {
        &self.fired
    }

    /// Resets per-run state (taints, fired flags, occurrence counters) for
    /// reuse across runs.
    pub fn reset(&mut self) {
        self.tainted.clear();
        self.fired.iter_mut().for_each(|f| *f = false);
        self.seen.iter_mut().for_each(|s| *s = 0);
    }

    /// Applies `kind` to `event`, keeping the payload within `width` bits
    /// and guaranteeing that value-corrupting kinds actually change the
    /// value (a corruption that happens to be the identity would make the
    /// bug silently benign).
    fn apply_kind(kind: BugKind, event: &mut MessageEvent, width: u32) -> InterceptAction {
        let original = event.value;
        match kind {
            BugKind::CorruptPayload { mask } => {
                event.value ^= mask;
            }
            BugKind::WrongAddress => {
                event.value = splitmix64(event.value ^ 0x0bad_add4);
            }
            BugKind::WrongCommand => {
                // Replace the low command bits by a wrong opcode.
                event.value = (event.value & !0xf) | 0xe;
            }
            BugKind::MalformedRequest => {
                // Zero the upper half of the field: a half-built UCB.
                event.value &= (1u64 << width.div_ceil(2)) - 1;
            }
            BugKind::WrongDecode => {
                event.value = splitmix64(event.value.rotate_left(17));
            }
            BugKind::DropMessage => return InterceptAction::Drop,
            BugKind::Misroute { to } => {
                event.dst = to;
                return InterceptAction::Deliver;
            }
            BugKind::LeakCredit => return InterceptAction::DeliverLeakCredit,
        }
        event.value = mask_to_width(event.value, width);
        if event.value == original {
            event.value ^= 1;
        }
        InterceptAction::Deliver
    }
}

impl MessageInterceptor for BugInterceptor {
    fn intercept(&mut self, event: &mut MessageEvent) -> InterceptAction {
        let width = self
            .widths
            .get(&event.message.message)
            .copied()
            .unwrap_or(64);
        // Taint propagation: downstream messages of a corrupted instance
        // carry garbled payloads.
        if self.tainted.contains(&event.message.index) {
            let garbled = mask_to_width(splitmix64(event.value ^ TAINT_SALT), width);
            event.value = if garbled == event.value {
                garbled ^ 1
            } else {
                garbled
            };
        }
        for (i, bug) in self.bugs.iter().enumerate() {
            if bug.target != event.message.message || bug.ip != event.src {
                continue;
            }
            let emission = self.seen[i];
            self.seen[i] += 1;
            let fires = match bug.trigger {
                BugTrigger::Always => true,
                BugTrigger::OnOccurrence(n) => emission == n,
            };
            if !fires {
                continue;
            }
            self.fired[i] = true;
            match Self::apply_kind(bug.kind, event, width) {
                InterceptAction::Drop => return InterceptAction::Drop,
                InterceptAction::DeliverLeakCredit => return InterceptAction::DeliverLeakCredit,
                InterceptAction::Deliver => {
                    self.tainted.insert(event.message.index);
                }
            }
        }
        InterceptAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BugCategory;
    use pstrace_soc::{Ip, SimConfig, Simulator, SocModel, UsageScenario};

    fn corrupt_bug(model: &SocModel, message: &str, ip: Ip) -> BugSpec {
        BugSpec {
            id: 99,
            depth: 3,
            category: BugCategory::Data,
            kind: BugKind::CorruptPayload { mask: 0b101 },
            ip,
            target: model.catalog().get(message).unwrap(),
            trigger: BugTrigger::Always,
            description: "test corruption",
        }
    }

    #[test]
    fn taint_propagates_downstream_within_the_instance() {
        let model = SocModel::t2();
        // Corrupt the very first PIOR message; every later PIOR message
        // must differ from golden, other instances must be untouched.
        let bug = corrupt_bug(&model, "piorreq", Ip::Ccx);
        let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(5));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bug]));
        assert_eq!(golden.message_sequence(), buggy.message_sequence());
        let pior_index = golden
            .events
            .iter()
            .find(|e| model.catalog().name(e.message.message) == "piorreq")
            .unwrap()
            .message
            .index;
        for (g, b) in golden.events.iter().zip(&buggy.events) {
            if g.message.index == pior_index {
                assert_ne!(g.value, b.value, "tainted instance message must differ");
            } else {
                assert_eq!(g.value, b.value, "other instances stay golden");
            }
        }
    }

    #[test]
    fn occurrence_trigger_fires_once() {
        let model = SocModel::t2();
        let mut bug = corrupt_bug(&model, "siincu", Ip::Siu);
        bug.trigger = BugTrigger::OnOccurrence(1);
        let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(5));
        let golden = sim.run();
        let mut interceptor = BugInterceptor::new(&model, vec![bug]);
        let buggy = sim.run_with(&mut interceptor);
        assert!(interceptor.fired()[0]);
        // siincu occurrence 0 (whichever instance) is untouched.
        let diffs = golden
            .events
            .iter()
            .zip(&buggy.events)
            .filter(|(g, b)| g.value != b.value)
            .count();
        assert!(diffs >= 1);
        let first_siincu = golden
            .events
            .iter()
            .zip(&buggy.events)
            .find(|(g, _)| model.catalog().name(g.message.message) == "siincu" && g.occurrence == 0)
            .unwrap();
        assert_eq!(first_siincu.0.value, first_siincu.1.value);
    }

    #[test]
    fn ip_filter_prevents_misattributed_firing() {
        let model = SocModel::t2();
        // siincu is sourced by SIU; a bug claiming it from DMU never fires.
        let bug = corrupt_bug(&model, "siincu", Ip::Dmu);
        let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(5));
        let golden = sim.run();
        let mut interceptor = BugInterceptor::new(&model, vec![bug]);
        let buggy = sim.run_with(&mut interceptor);
        assert!(!interceptor.fired()[0]);
        assert_eq!(golden, buggy);
    }

    #[test]
    fn misroute_changes_destination_only() {
        let model = SocModel::t2();
        let bug = BugSpec {
            kind: BugKind::Misroute { to: Ip::Mcu },
            ..corrupt_bug(&model, "grant", Ip::Siu)
        };
        let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(5));
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bug]));
        let grant_event = buggy
            .events
            .iter()
            .find(|e| model.catalog().name(e.message.message) == "grant")
            .unwrap();
        assert_eq!(grant_event.dst, Ip::Mcu);
    }

    #[test]
    fn reset_clears_state() {
        let model = SocModel::t2();
        let bug = corrupt_bug(&model, "piorreq", Ip::Ccx);
        let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(5));
        let mut interceptor = BugInterceptor::new(&model, vec![bug]);
        let _ = sim.run_with(&mut interceptor);
        assert!(interceptor.fired()[0]);
        interceptor.reset();
        assert!(!interceptor.fired()[0]);
    }
}
