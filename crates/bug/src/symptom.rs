//! Bug symptom detection: how a failure first becomes observable.
//!
//! The paper's case studies fail with hangs or a `FAIL: Bad Trap` checker
//! message (§5.7). Here the end-of-test checker is the golden run: a buggy
//! run's symptom is either a hang (an instance never completed) or the
//! first message whose payload or destination deviates from golden.

use pstrace_flow::{FlowIndex, IndexedMessage};
use pstrace_soc::{Ip, RunStatus, SimOutcome};

/// The first observable failure of a buggy run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Symptom {
    /// One or more flow instances never completed (lost handshake,
    /// never-generated interrupt): the paper's hang/timeout class.
    Hang {
        /// Instances that never reached their stop state.
        stuck: Vec<FlowIndex>,
        /// Cycle at which the run gave up.
        cycles: u64,
    },
    /// A payload check failed — the equivalent of `FAIL: Bad Trap`.
    BadTrap {
        /// The first deviating message.
        message: IndexedMessage,
        /// Its occurrence number.
        occurrence: u32,
        /// Golden payload.
        expected: u64,
        /// Observed payload.
        observed: u64,
    },
    /// A message reached the wrong IP.
    Misroute {
        /// The misrouted message.
        message: IndexedMessage,
        /// Where it should have gone.
        expected_dst: Ip,
        /// Where it went.
        observed_dst: Ip,
    },
}

impl Symptom {
    /// The indexed message at which the symptom is observed, if any
    /// (hangs are observed by absence, not by a message).
    #[must_use]
    pub fn symptom_message(&self) -> Option<IndexedMessage> {
        match self {
            Symptom::Hang { .. } => None,
            Symptom::BadTrap { message, .. } | Symptom::Misroute { message, .. } => Some(*message),
        }
    }
}

impl std::fmt::Display for Symptom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Symptom::Hang { stuck, cycles } => {
                write!(f, "HANG: {} instance(s) incomplete after {cycles} cycles", stuck.len())
            }
            Symptom::BadTrap { occurrence, expected, observed, .. } => write!(
                f,
                "FAIL: Bad Trap (occurrence {occurrence}: expected {expected:#x}, observed {observed:#x})"
            ),
            Symptom::Misroute { expected_dst, observed_dst, .. } => {
                write!(f, "FAIL: misroute (expected {expected_dst}, observed {observed_dst})")
            }
        }
    }
}

/// Compares a buggy run against its golden twin and returns the first
/// observable symptom, or `None` if the runs are indistinguishable.
///
/// Events are matched by `(indexed message, occurrence)`, which is stable
/// across runs with the same seed; deviations are reported in buggy-run
/// time order.
#[must_use]
pub fn detect_symptom(golden: &SimOutcome, buggy: &SimOutcome) -> Option<Symptom> {
    if let RunStatus::Hang { ref stuck } = buggy.status {
        return Some(Symptom::Hang {
            stuck: stuck.clone(),
            cycles: buggy.cycles,
        });
    }
    for event in &buggy.events {
        let twin = golden
            .events
            .iter()
            .find(|g| g.message == event.message && g.occurrence == event.occurrence);
        let Some(twin) = twin else { continue };
        if twin.value != event.value {
            return Some(Symptom::BadTrap {
                message: event.message,
                occurrence: event.occurrence,
                expected: twin.value,
                observed: event.value,
            });
        }
        if twin.dst != event.dst {
            return Some(Symptom::Misroute {
                message: event.message,
                expected_dst: twin.dst,
                observed_dst: event.dst,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{bug_catalog, case_studies};
    use crate::inject::BugInterceptor;
    use pstrace_soc::{SimConfig, Simulator, SocModel};

    #[test]
    fn golden_vs_golden_has_no_symptom() {
        let model = SocModel::t2();
        let cs = &case_studies()[0];
        let sim = Simulator::new(&model, cs.scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        assert_eq!(detect_symptom(&golden, &golden), None);
    }

    #[test]
    fn every_case_study_produces_a_symptom() {
        let model = SocModel::t2();
        let catalog = bug_catalog(&model);
        for cs in case_studies() {
            let sim = Simulator::new(&model, cs.scenario.clone(), SimConfig::with_seed(cs.seed));
            let golden = sim.run();
            let mut interceptor = BugInterceptor::new(&model, cs.bugs(&catalog));
            let buggy = sim.run_with(&mut interceptor);
            let symptom = detect_symptom(&golden, &buggy);
            assert!(
                symptom.is_some(),
                "case study {} shows no symptom",
                cs.number
            );
        }
    }

    #[test]
    fn case_study_1_hangs() {
        // Bug 5 drops reqtot: the Mondo flow never starts.
        let model = SocModel::t2();
        let catalog = bug_catalog(&model);
        let cs = &case_studies()[0];
        let sim = Simulator::new(&model, cs.scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&catalog)));
        match detect_symptom(&golden, &buggy) {
            Some(Symptom::Hang { stuck, .. }) => assert_eq!(stuck.len(), 1),
            other => panic!("expected hang, got {other:?}"),
        }
    }

    #[test]
    fn case_study_5_is_a_bad_trap_on_mcudata_or_downstream() {
        let model = SocModel::t2();
        let catalog = bug_catalog(&model);
        let cs = &case_studies()[4];
        let sim = Simulator::new(&model, cs.scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&catalog)));
        match detect_symptom(&golden, &buggy) {
            Some(Symptom::BadTrap { message, .. }) => {
                // The first deviation is on the NCUU flow (mcudata or a
                // tainted downstream message of the same instance).
                let name = model.catalog().name(message.message);
                assert!(
                    ["mcudata", "ncucpxgnt", "cpxdata"].contains(&name),
                    "unexpected symptom message {name}"
                );
            }
            other => panic!("expected bad trap, got {other:?}"),
        }
    }

    #[test]
    fn symptom_display_is_informative() {
        let s = Symptom::Hang {
            stuck: vec![FlowIndex(3)],
            cycles: 512,
        };
        assert!(s.to_string().contains("HANG"));
        assert_eq!(s.symptom_message(), None);
    }
}
