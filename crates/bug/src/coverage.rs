//! Bug coverage and message importance (§5.5, Table 5).
//!
//! A message is *affected* by a bug if its value in a buggy execution
//! differs from its value in the bug-free execution (or if it goes missing
//! entirely). *Bug coverage* of a message is the fraction of injected bugs
//! that affect it; a message is *important* for debugging when its coverage
//! is low — it symptomizes few, subtle bugs — so importance is the
//! reciprocal of coverage.

use std::collections::HashMap;

use pstrace_flow::MessageId;
use pstrace_soc::{SimConfig, SimOutcome, Simulator, SocModel, UsageScenario};

use crate::inject::BugInterceptor;
use crate::model::BugSpec;

/// Messages whose observations differ between a golden and a buggy run.
///
/// A message counts as affected when any `(indexed message, occurrence)`
/// pair differs in payload or destination, or occurs in one run but not
/// the other (dropped or never-reached messages).
#[must_use]
pub fn affected_messages(golden: &SimOutcome, buggy: &SimOutcome) -> Vec<MessageId> {
    let mut affected: Vec<MessageId> = Vec::new();
    let mut golden_map: HashMap<_, _> = HashMap::new();
    for e in &golden.events {
        golden_map.insert((e.message, e.occurrence), (e.value, e.dst));
    }
    let mut buggy_keys: HashMap<_, _> = HashMap::new();
    for e in &buggy.events {
        buggy_keys.insert((e.message, e.occurrence), (e.value, e.dst));
        match golden_map.get(&(e.message, e.occurrence)) {
            Some(&(v, d)) => {
                if v != e.value || d != e.dst {
                    push_unique(&mut affected, e.message.message);
                }
            }
            None => push_unique(&mut affected, e.message.message),
        }
    }
    // Messages present in golden but missing in the buggy run.
    for (key, _) in golden_map {
        if !buggy_keys.contains_key(&key) {
            push_unique(&mut affected, key.0.message);
        }
    }
    affected.sort_unstable();
    affected
}

fn push_unique(v: &mut Vec<MessageId>, m: MessageId) {
    if !v.contains(&m) {
        v.push(m);
    }
}

/// One row of the Table 5 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct BugCoverageRow {
    /// The message under analysis.
    pub message: MessageId,
    /// Ids of the bugs affecting it.
    pub affecting_bugs: Vec<u32>,
    /// Bug coverage: affecting bugs over total bugs.
    pub coverage: f64,
    /// Message importance: `1 / coverage`; `None` when no bug affects the
    /// message.
    pub importance: Option<f64>,
}

/// The full bug-coverage analysis over a bug catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct BugCoverageTable {
    rows: Vec<BugCoverageRow>,
    total_bugs: usize,
}

impl BugCoverageTable {
    /// Rows sorted by message id.
    #[must_use]
    pub fn rows(&self) -> &[BugCoverageRow] {
        &self.rows
    }

    /// The row for `message`, if it was analyzed.
    #[must_use]
    pub fn row(&self, message: MessageId) -> Option<&BugCoverageRow> {
        self.rows.iter().find(|r| r.message == message)
    }

    /// Number of bugs the analysis ran.
    #[must_use]
    pub fn total_bugs(&self) -> usize {
        self.total_bugs
    }
}

/// Runs every bug of `bugs` in isolation against every scenario whose flows
/// carry the bug's target message, differencing buggy against golden runs,
/// and aggregates per-message bug coverage (§5.5).
///
/// Deterministic: runs share `seed`.
#[must_use]
pub fn bug_coverage(
    model: &SocModel,
    scenarios: &[UsageScenario],
    bugs: &[BugSpec],
    seed: u64,
) -> BugCoverageTable {
    let mut affecting: HashMap<MessageId, Vec<u32>> = HashMap::new();
    let mut all_messages: Vec<MessageId> = Vec::new();
    for scenario in scenarios {
        for m in scenario.messages(model) {
            push_unique(&mut all_messages, m);
        }
    }

    for bug in bugs {
        for scenario in scenarios {
            if !scenario.messages(model).contains(&bug.target) {
                continue;
            }
            let sim = Simulator::new(model, scenario.clone(), SimConfig::with_seed(seed));
            let golden = sim.run();
            let mut interceptor = BugInterceptor::new(model, vec![bug.clone()]);
            let buggy = sim.run_with(&mut interceptor);
            for m in affected_messages(&golden, &buggy) {
                let entry = affecting.entry(m).or_default();
                if !entry.contains(&bug.id) {
                    entry.push(bug.id);
                }
            }
        }
    }

    all_messages.sort_unstable();
    let total = bugs.len();
    let rows = all_messages
        .into_iter()
        .map(|message| {
            let mut affecting_bugs = affecting.remove(&message).unwrap_or_default();
            affecting_bugs.sort_unstable();
            let coverage = affecting_bugs.len() as f64 / total as f64;
            let importance = (coverage > 0.0).then(|| 1.0 / coverage);
            BugCoverageRow {
                message,
                affecting_bugs,
                coverage,
                importance,
            }
        })
        .collect();
    BugCoverageTable {
        rows,
        total_bugs: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::bug_catalog;

    fn setup() -> (SocModel, Vec<UsageScenario>, Vec<BugSpec>) {
        let model = SocModel::t2();
        let scenarios = UsageScenario::all_paper_scenarios();
        let bugs = bug_catalog(&model);
        (model, scenarios, bugs)
    }

    #[test]
    fn identical_runs_affect_nothing() {
        let (model, scenarios, _) = setup();
        let sim = Simulator::new(&model, scenarios[0].clone(), SimConfig::with_seed(3));
        let golden = sim.run();
        assert!(affected_messages(&golden, &golden).is_empty());
    }

    #[test]
    fn dropped_messages_count_as_affected() {
        let (model, scenarios, bugs) = setup();
        let drop_bug = bugs.iter().find(|b| b.id == 5).unwrap().clone();
        let sim = Simulator::new(&model, scenarios[0].clone(), SimConfig::with_seed(3));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![drop_bug]));
        let affected = affected_messages(&golden, &buggy);
        let reqtot = model.catalog().get("reqtot").unwrap();
        assert!(
            affected.contains(&reqtot),
            "dropped reqtot must be affected"
        );
        // Downstream Mondo messages never happen either.
        let grant = model.catalog().get("grant").unwrap();
        assert!(affected.contains(&grant));
    }

    #[test]
    fn coverage_table_over_the_full_catalog() {
        let (model, scenarios, bugs) = setup();
        let table = bug_coverage(&model, &scenarios, &bugs, 0x5eed);
        assert_eq!(table.total_bugs(), 14);
        assert_eq!(table.rows().len(), 16, "all model messages analyzed");

        // Every bug's own target is affected by it.
        for bug in &bugs {
            let row = table.row(bug.target).expect("target analyzed");
            assert!(
                row.affecting_bugs.contains(&bug.id),
                "bug {} does not affect its own target",
                bug.id
            );
        }

        // Coverage/importance arithmetic (Table 5 style): coverage =
        // |affecting| / 14, importance = 1 / coverage.
        for row in table.rows() {
            let expect = row.affecting_bugs.len() as f64 / 14.0;
            assert!((row.coverage - expect).abs() < 1e-12);
            if let Some(imp) = row.importance {
                assert!((imp - 1.0 / expect).abs() < 1e-9);
            } else {
                assert!(row.affecting_bugs.is_empty());
            }
        }

        // Subtlety (paper: bugs tend to affect few messages): no message is
        // affected by more than half the bugs.
        for row in table.rows() {
            assert!(
                row.affecting_bugs.len() <= 7,
                "{} affected by {} bugs",
                model.catalog().name(row.message),
                row.affecting_bugs.len()
            );
        }
    }

    #[test]
    fn taint_makes_downstream_messages_affected() {
        let (model, scenarios, bugs) = setup();
        // Bug 4 wrongly decodes ncudmupio (2nd PIOR message); the three
        // downstream PIOR messages are tainted.
        let bug = bugs.iter().find(|b| b.id == 4).unwrap().clone();
        let sim = Simulator::new(&model, scenarios[0].clone(), SimConfig::with_seed(3));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bug]));
        let affected = affected_messages(&golden, &buggy);
        for name in ["ncudmupio", "dmupioack", "piorcrd"] {
            let id = model.catalog().get(name).unwrap();
            assert!(affected.contains(&id), "{name} should be tainted");
        }
        // PIOW messages are untouched.
        let piowreq = model.catalog().get("piowreq").unwrap();
        assert!(!affected.contains(&piowreq));
    }
}
