//! Property-based tests for bug injection: any catalog bug, any scenario,
//! any seed — the pipeline never panics, symptoms are always classified,
//! and differencing behaves.

use proptest::prelude::*;
use pstrace_bug::{
    affected_messages, bug_catalog, detect_symptom, BugInterceptor, BugKind, Symptom,
};
use pstrace_soc::{RunStatus, SimConfig, Simulator, SocModel, UsageScenario};

fn scenario_for(no: u8) -> UsageScenario {
    match no {
        1 => UsageScenario::scenario1(),
        2 => UsageScenario::scenario2(),
        3 => UsageScenario::scenario3(),
        _ => UsageScenario::scenario_dma(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-bug injection: the run always terminates with a classified
    /// status, and if the bug fired the golden/buggy pair differ.
    #[test]
    fn single_bug_injection_is_total(
        bug_idx in 0usize..14,
        scenario_no in 1u8..=4,
        seed in any::<u64>(),
    ) {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let bug = bugs[bug_idx].clone();
        let scenario = scenario_for(scenario_no);
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed));
        let golden = sim.run();
        prop_assert!(golden.status.is_completed());

        let mut interceptor = BugInterceptor::new(&model, vec![bug.clone()]);
        let buggy = sim.run_with(&mut interceptor);
        let fired = interceptor.fired()[0];
        let in_scenario = scenario.messages(&model).contains(&bug.target);
        prop_assert_eq!(fired, in_scenario, "bug fires iff its target is exercised");

        let symptom = detect_symptom(&golden, &buggy);
        if fired {
            prop_assert!(symptom.is_some(), "a fired bug must be observable");
            let affected = affected_messages(&golden, &buggy);
            prop_assert!(affected.contains(&bug.target));
            if matches!(bug.kind, BugKind::DropMessage) {
                let hung = matches!(symptom, Some(Symptom::Hang { .. }));
                prop_assert!(hung, "drop bugs must hang");
            }
        } else {
            prop_assert_eq!(golden, buggy);
            prop_assert!(symptom.is_none());
        }
    }

    /// Multi-bug injection never panics and still classifies the run.
    #[test]
    fn multi_bug_injection_is_total(
        picks in proptest::collection::vec(any::<bool>(), 14),
        scenario_no in 1u8..=4,
        seed in any::<u64>(),
    ) {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let active: Vec<_> = bugs
            .iter()
            .zip(&picks)
            .filter(|(_, &p)| p)
            .map(|(b, _)| b.clone())
            .collect();
        prop_assume!(!active.is_empty());
        let scenario = scenario_for(scenario_no);
        let sim = Simulator::new(&model, scenario, SimConfig::with_seed(seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, active));
        match buggy.status {
            RunStatus::Completed | RunStatus::Hang { .. } => {}
        }
        // Differencing never panics either.
        let _ = affected_messages(&golden, &buggy);
        let _ = detect_symptom(&golden, &buggy);
    }

    /// Injection under credit backpressure also stays total.
    #[test]
    fn injection_under_credits_is_total(
        bug_idx in 0usize..14,
        seed in any::<u64>(),
        credits in 1u32..3,
    ) {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let scenario = UsageScenario::scenario_dma();
        let mut config = SimConfig::with_seed(seed);
        config.channel_credits = Some(credits);
        let sim = Simulator::new(&model, scenario, config);
        let golden = sim.run();
        prop_assert!(golden.status.is_completed(), "golden must not deadlock");
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bugs[bug_idx].clone()]));
        let _ = detect_symptom(&golden, &buggy);
    }
}
