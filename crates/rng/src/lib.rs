//! A small, dependency-free deterministic PRNG for the workspace.
//!
//! Everything in `pstrace` that needs randomness — arbitration and channel
//! latencies in the SoC simulator, random stimuli for the gate-level
//! substrate, the annealing baseline selector — is *seeded* randomness:
//! the same seed must reproduce the same run bit for bit, forever. None of
//! it needs cryptographic quality, and none of it should force a registry
//! dependency on `rand` just to draw uniform integers. This crate provides
//! the one generator the workspace uses instead.
//!
//! The generator is [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! (Steele, Lea, Flood — *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014): a 64-bit state advanced by a Weyl sequence
//! and finalized with an avalanche mix. It passes BigCrush when used as a
//! 64-bit generator, is trivially seedable from a single `u64` (unlike
//! xorshift it has no all-zero fixed point), and every draw is two shifts
//! and two multiplies.
//!
//! # Examples
//!
//! ```
//! use pstrace_rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(7);
//! let a = rng.gen_range_u64(1, 24);
//! assert!((1..=24).contains(&a));
//! // Same seed, same stream.
//! let mut again = Rng64::seed_from_u64(7);
//! assert_eq!(again.gen_range_u64(1, 24), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// The full generator state is one `u64`; cloning snapshots the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..=hi` (inclusive bounds).
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let raw = self.next_u64();
            if raw <= zone {
                return lo + raw % span;
            }
        }
    }

    /// Uniform draw in `0..n` (exclusive upper bound), for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        usize::try_from(self.gen_range_u64(0, n as u64 - 1)).expect("index fits usize")
    }

    /// A uniformly random `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits of one draw.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent generator for a labeled sub-stream.
    ///
    /// Useful for giving each test case / each worker its own stream that
    /// is still a pure function of `(parent seed, label)`.
    #[must_use]
    pub fn fork(&self, label: u64) -> Rng64 {
        let mut child = Rng64 {
            state: self.state ^ label.wrapping_mul(0xa076_1d64_78bd_642f),
        };
        child.next_u64();
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_are_inclusive_and_respected() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range_u64(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "all range values are reachable");
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(rng.gen_range_u64(7, 7), 7);
        }
    }

    #[test]
    fn full_range_does_not_loop_forever() {
        let mut rng = Rng64::seed_from_u64(11);
        let _ = rng.gen_range_u64(0, u64::MAX);
    }

    #[test]
    fn index_covers_all_slots() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[rng.gen_index(4)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 500, "slot {i} drawn {h} times of 4000");
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(6);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 1/2");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = Rng64::seed_from_u64(8);
        let trues = (0..1000).filter(|_| rng.gen_bool()).count();
        assert!((400..=600).contains(&trues), "{trues} of 1000");
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let parent = Rng64::seed_from_u64(13);
        let mut a1 = parent.fork(1);
        let mut a2 = parent.fork(1);
        let mut b = parent.fork(2);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }
}
