//! Property-based tests for path localization.

use std::sync::Arc;

use proptest::prelude::*;
use pstrace_diag::{
    consistent_paths, consistent_paths_bruteforce, localize, MatchMode, OnlineLocalizer,
};
use pstrace_flow::{
    examples::{cache_coherence, diamond},
    executions, instantiate, path_count, InterleavedFlow, MessageId,
};

fn product() -> InterleavedFlow {
    let (flow, _) = cache_coherence();
    InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap()
}

/// Interleaving of two *branching* (diamond) flows: unlike the linear
/// cache-coherence flows, each instance independently picks one of two
/// paths, so observations genuinely disambiguate branch choices.
fn branching_product() -> InterleavedFlow {
    let (flow, _) = diamond();
    InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The localization DP agrees with brute-force path enumeration for
    /// observations derived from real executions, in both match modes.
    #[test]
    fn dp_matches_bruteforce(
        exec_idx in 0usize..6,
        pick in proptest::collection::vec(any::<bool>(), 3),
        cut in 0usize..7,
        prefix_mode in any::<bool>(),
    ) {
        let u = product();
        let alphabet = u.message_alphabet();
        let selected: Vec<MessageId> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let exec = executions(&u).nth(exec_idx).unwrap();
        let mut observed = exec.project(&selected);
        observed.truncate(cut);
        let mode = if prefix_mode { MatchMode::Prefix } else { MatchMode::Exact };
        let dp = consistent_paths(&u, &observed, &selected, mode);
        let bf = consistent_paths_bruteforce(&u, &observed, &selected, mode);
        prop_assert_eq!(dp, bf);
    }

    /// A full (untruncated) projected observation is always consistent
    /// with at least its own execution; the fraction is in (0, 1].
    #[test]
    fn own_projection_is_consistent(
        exec_idx in 0usize..6,
        pick in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let u = product();
        let alphabet = u.message_alphabet();
        let selected: Vec<MessageId> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let exec = executions(&u).nth(exec_idx).unwrap();
        let observed = exec.project(&selected);
        let loc = localize(&u, &observed, &selected, MatchMode::Exact);
        prop_assert!(loc.consistent >= 1);
        prop_assert!(loc.consistent <= loc.total);
        prop_assert!(loc.fraction() > 0.0 && loc.fraction() <= 1.0);
    }

    /// On branching flows, every mode's DP agrees with brute force, and a
    /// full observation pins the branch choices exactly.
    #[test]
    fn branching_flows_localize_correctly(
        exec_idx in 0usize..24,
        pick in proptest::collection::vec(any::<bool>(), 4),
        prefix_cut in 0usize..5,
    ) {
        let u = branching_product();
        let alphabet = u.message_alphabet();
        let selected: Vec<MessageId> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let execs: Vec<_> = executions(&u).collect();
        let exec = &execs[exec_idx % execs.len()];
        let observed = exec.project(&selected);
        for mode in [MatchMode::Exact, MatchMode::Prefix, MatchMode::Suffix, MatchMode::Substring] {
            let cut = prefix_cut.min(observed.len());
            let piece = match mode {
                MatchMode::Prefix => &observed[..cut],
                MatchMode::Suffix => &observed[observed.len() - cut..],
                _ => &observed[..],
            };
            let dp = consistent_paths(&u, piece, &selected, mode);
            let bf = consistent_paths_bruteforce(&u, piece, &selected, mode);
            prop_assert_eq!(dp, bf, "mode {:?}", mode);
            prop_assert!(dp >= 1, "the generating execution always matches");
        }
        // Observing the full alphabet pins the exact path.
        let full = exec.project(&alphabet);
        let hits = consistent_paths(&u, &full, &alphabet, MatchMode::Exact);
        prop_assert_eq!(hits, 1);
    }

    /// Feeding an observation to [`OnlineLocalizer`] one record at a time
    /// reports, after every push, exactly what batch localization computes
    /// on that prefix — for all four match modes, on observations that mix
    /// real projections with random noise records.
    #[test]
    fn online_localizer_matches_batch_at_every_prefix(
        branching in any::<bool>(),
        exec_idx in 0usize..24,
        pick in proptest::collection::vec(any::<bool>(), 4),
        noise in proptest::collection::vec((0usize..12, any::<bool>()), 0..4),
        mode_idx in 0usize..4,
    ) {
        let u = if branching { branching_product() } else { product() };
        let alphabet = u.message_alphabet();
        let selected: Vec<MessageId> = alphabet
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let execs: Vec<_> = executions(&u).collect();
        let exec = &execs[exec_idx % execs.len()];
        let mut observed = exec.project(&selected);
        // Splice selected-alphabet records at random positions: the
        // resulting sequence is usually NOT a projection of any path, so
        // the zero-count regime is exercised too.
        for &(pos, early) in &noise {
            if let Some(&m) = exec.project(&alphabet).get(pos) {
                if selected.contains(&m.message) {
                    let at = if early { 0 } else { observed.len() };
                    observed.insert(at, m);
                }
            }
        }
        let mode = [MatchMode::Exact, MatchMode::Prefix, MatchMode::Suffix, MatchMode::Substring]
            [mode_idx];
        let mut online = OnlineLocalizer::new(&u, &selected, mode);
        prop_assert_eq!(
            online.consistent(),
            consistent_paths(&u, &[], &selected, mode),
            "empty-observation seed diverged ({:?})", mode
        );
        for (n, &m) in observed.iter().enumerate() {
            online.push(m);
            let batch = consistent_paths(&u, &observed[..=n], &selected, mode);
            prop_assert_eq!(
                online.consistent(), batch,
                "prefix of {} records diverged ({:?})", n + 1, mode
            );
            prop_assert_eq!(online.total(), path_count(&u));
        }
    }

    /// Growing the selection never makes localization worse for the same
    /// underlying execution (more observability ⇒ fewer consistent paths).
    #[test]
    fn more_observability_localizes_at_least_as_well(exec_idx in 0usize..6) {
        let u = product();
        let alphabet = u.message_alphabet();
        let exec = executions(&u).nth(exec_idx).unwrap();
        let mut prev = u128::MAX;
        for k in 0..=alphabet.len() {
            let selected = &alphabet[..k];
            let observed = exec.project(selected);
            let c = consistent_paths(&u, &observed, selected, MatchMode::Exact);
            prop_assert!(c <= prev, "selection growth increased consistent paths");
            prev = c;
        }
    }
}
