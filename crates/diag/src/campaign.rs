//! Multi-seed debugging campaigns.
//!
//! The paper reports one debugging session per case study. Simulated
//! substrates are cheap, so a campaign re-runs each case study under many
//! arbitration/latency seeds and aggregates the metrics — separating what
//! is intrinsic to the bug and the selection from what was luck of one
//! interleaving.

use pstrace_bug::{CaseStudy, Symptom};
use pstrace_core::SelectError;
use pstrace_soc::SocModel;

use crate::report::{run_case_study_with_seed, CaseStudyConfig};

/// Min / mean / max summary of one metric over a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observed value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Summary {
    /// The all-zero summary reported for a campaign with no runs. An
    /// empty value slice has no meaningful extrema; rather than the
    /// `min = +inf / max = -inf` fold identities, zero-seed campaigns
    /// report this sentinel so every field stays finite and `min <= mean
    /// <= max` holds unconditionally.
    pub const ZERO: Summary = Summary {
        min: 0.0,
        mean: 0.0,
        max: 0.0,
    };

    fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::ZERO;
        }
        Summary {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Aggregated results of one case study over many seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// The case study number.
    pub case_number: u8,
    /// Number of seeds run.
    pub runs: usize,
    /// Path localization fraction across runs.
    pub localization: Summary,
    /// Root-cause pruning fraction across runs.
    pub pruning: Summary,
    /// Runs that symptomized as hangs.
    pub hangs: usize,
    /// Runs that symptomized as payload check failures.
    pub bad_traps: usize,
    /// Runs where the bug stayed invisible.
    pub silent: usize,
}

/// Runs `case` once per seed and aggregates the metrics.
///
/// # Errors
///
/// Propagates [`SelectError`] from message selection (the selection is
/// identical across seeds, so this can only fail on the first run).
pub fn run_campaign(
    model: &SocModel,
    case: &CaseStudy,
    config: CaseStudyConfig,
    seeds: &[u64],
) -> Result<CampaignStats, SelectError> {
    let mut localization = Vec::with_capacity(seeds.len());
    let mut pruning = Vec::with_capacity(seeds.len());
    let mut hangs = 0;
    let mut bad_traps = 0;
    let mut silent = 0;
    for &seed in seeds {
        let report = run_case_study_with_seed(model, case, config, seed)?;
        localization.push(report.path_localization());
        pruning.push(report.pruned_fraction());
        match report.symptom {
            Some(Symptom::Hang { .. }) => hangs += 1,
            Some(Symptom::BadTrap { .. } | Symptom::Misroute { .. }) => bad_traps += 1,
            None => silent += 1,
        }
    }
    Ok(CampaignStats {
        case_number: case.number,
        runs: seeds.len(),
        localization: Summary::of(&localization),
        pruning: Summary::of(&pruning),
        hangs,
        bad_traps,
        silent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_bug::case_studies;

    #[test]
    fn campaign_aggregates_across_seeds() {
        let model = SocModel::t2();
        let cs = &case_studies()[0];
        let seeds: Vec<u64> = (0..8).collect();
        let stats = run_campaign(&model, cs, CaseStudyConfig::default(), &seeds).unwrap();
        assert_eq!(stats.runs, 8);
        assert_eq!(stats.hangs + stats.bad_traps + stats.silent, 8);
        // Case study 1 drops the Mondo request: every seed hangs.
        assert_eq!(stats.hangs, 8);
        assert!(stats.localization.min <= stats.localization.mean);
        assert!(stats.localization.mean <= stats.localization.max);
        assert!(stats.pruning.mean > 0.5);
    }

    #[test]
    fn every_case_study_symptomizes_on_every_seed() {
        // The paper's bugs always manifest; across 6 random seeds ours do
        // too (the interceptor fires whenever the target message is sent,
        // and every case-study target is on its scenario's only path).
        let model = SocModel::t2();
        let seeds: Vec<u64> = (100..106).collect();
        for cs in case_studies() {
            let stats = run_campaign(&model, &cs, CaseStudyConfig::default(), &seeds).unwrap();
            assert_eq!(stats.silent, 0, "case {} went silent", cs.number);
            assert!(
                stats.localization.max <= 0.30,
                "case {}: worst localization {:.3}",
                cs.number,
                stats.localization.max
            );
        }
    }

    #[test]
    fn empty_campaign_reports_the_zero_summary() {
        let model = SocModel::t2();
        let cs = &case_studies()[0];
        let stats = run_campaign(&model, cs, CaseStudyConfig::default(), &[]).unwrap();
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.localization, Summary::ZERO);
        assert_eq!(stats.pruning, Summary::ZERO);
        assert!(stats.localization.min.is_finite());
        assert!(stats.localization.min <= stats.localization.mean);
        assert!(stats.localization.mean <= stats.localization.max);
    }

    #[test]
    fn summary_handles_single_run() {
        let model = SocModel::t2();
        let cs = &case_studies()[1];
        let stats = run_campaign(&model, cs, CaseStudyConfig::default(), &[42]).unwrap();
        assert_eq!(stats.runs, 1);
        assert!((stats.localization.min - stats.localization.max).abs() < 1e-15);
    }
}
