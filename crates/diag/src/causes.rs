//! Root-cause catalogs and the elimination engine (§5.6–5.7, Tables 1,
//! 6, 7 and Figure 7).
//!
//! For every usage scenario a set of potential architecture-level root
//! causes is identified a priori from the specification (Table 1, column
//! 8: 9 / 8 / 9 causes). Each cause predicts an observable failure
//! pattern — a conjunction of `(witness, expected verdict)` clauses. A
//! cause is *pruned* when the trace evidence contradicts one of its
//! clauses, and remains *plausible* otherwise. Untraced witnesses can
//! never contradict anything, which is exactly why message selection
//! quality governs pruning power.

use pstrace_soc::{FlowKind, Ip, SocModel, UsageScenario};

use crate::evidence::{Evidence, Verdict, Witness};

/// One clause of a cause signature: the verdict this cause predicts for a
/// witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause {
    /// The witness message.
    pub witness: Witness,
    /// The verdict the cause predicts for it.
    pub expect: Verdict,
}

/// A potential architecture-level root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootCause {
    /// Catalog id, unique within a scenario.
    pub id: u32,
    /// The IP whose logic this cause blames.
    pub ip: Ip,
    /// What went wrong (Table 7, column 2 style).
    pub description: &'static str,
    /// The system-level implication (Table 7, column 3 style).
    pub implication: &'static str,
    /// Conjunctive failure signature.
    pub clauses: Vec<Clause>,
}

/// Elimination status of a cause after confronting the evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseStatus {
    /// Not contradicted: must be explored further.
    Plausible,
    /// Contradicted by trace evidence: eliminated.
    Pruned,
}

impl RootCause {
    /// Confronts this cause with `evidence`.
    ///
    /// A clause is *contradicted* when its witness carries a verdict
    /// incompatible with the prediction; any contradicted clause prunes
    /// the cause. [`Verdict::Unobserved`] is compatible with everything,
    /// and [`Verdict::Occurred`] (the hop demonstrably happened, integrity
    /// unknown) contradicts only an [`Verdict::Absent`] prediction.
    #[must_use]
    pub fn evaluate(&self, evidence: &Evidence) -> CauseStatus {
        for clause in &self.clauses {
            let observed = evidence.verdict(clause.witness);
            let compatible = match observed {
                Verdict::Unobserved => true,
                Verdict::Occurred => clause.expect != Verdict::Absent,
                v => v == clause.expect,
            };
            if !compatible {
                return CauseStatus::Pruned;
            }
        }
        CauseStatus::Plausible
    }
}

/// The evaluated cause set for one run.
#[derive(Debug, Clone)]
pub struct CauseReport {
    /// `(cause, status)` in catalog order.
    pub entries: Vec<(RootCause, CauseStatus)>,
}

impl CauseReport {
    /// Causes still plausible.
    #[must_use]
    pub fn plausible(&self) -> Vec<&RootCause> {
        self.entries
            .iter()
            .filter(|(_, s)| *s == CauseStatus::Plausible)
            .map(|(c, _)| c)
            .collect()
    }

    /// Number of pruned causes.
    #[must_use]
    pub fn pruned_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, s)| *s == CauseStatus::Pruned)
            .count()
    }

    /// Fraction of causes pruned (Figure 7's metric).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.pruned_count() as f64 / self.entries.len() as f64
    }
}

/// Evaluates every cause of `causes` against `evidence`.
#[must_use]
pub fn evaluate_causes(causes: &[RootCause], evidence: &Evidence) -> CauseReport {
    let entries = causes
        .iter()
        .map(|c| (c.clone(), c.evaluate(evidence)))
        .collect();
    CauseReport { entries }
}

/// The potential root causes of a usage scenario (Table 1, column 8:
/// 9 / 8 / 9 for scenarios 1–3; the DMA extension scenario 4 carries 11,
/// the coherence extension scenario 5 carries 7).
///
/// # Panics
///
/// Panics if `scenario.number()` is not 1–5; custom scenarios need custom
/// cause catalogs.
#[must_use]
pub fn scenario_causes(model: &SocModel, scenario: &UsageScenario) -> Vec<RootCause> {
    let c = model.catalog();
    let w = |flow: FlowKind, name: &str| Witness::new(flow, c.get(name).expect("model message"));
    let clause = |flow: FlowKind, name: &str, expect: Verdict| Clause {
        witness: w(flow, name),
        expect,
    };
    use FlowKind::{Mondo, NcuDownstream, NcuUpstream, PioRead, PioWrite};
    use Verdict::{Absent, Corrupt, Healthy};

    match scenario.number() {
        1 => vec![
            RootCause {
                id: 1,
                ip: Ip::Ccx,
                description: "PIO read request lost between CPU buffer and NCU",
                implication: "PIO read never performed; thread spins on completion",
                clauses: vec![clause(PioRead, "piorreq", Absent)],
            },
            RootCause {
                id: 2,
                ip: Ip::Ncu,
                description: "erroneous decoding of PIO read request in NCU",
                implication: "DMU receives a request for the wrong device address",
                clauses: vec![clause(PioRead, "ncudmupio", Corrupt)],
            },
            RootCause {
                id: 3,
                ip: Ip::Dmu,
                description: "wrong command generation for PIO completion in DMU",
                implication: "read completion carries the wrong transaction type",
                clauses: vec![clause(PioRead, "dmupioack", Corrupt)],
            },
            RootCause {
                id: 4,
                ip: Ip::Ncu,
                description: "wrong interrupt decoding logic / corrupted interrupt handling table in NCU",
                implication: "interrupt acknowledged to the wrong handler",
                clauses: vec![clause(Mondo, "mondoacknack", Corrupt)],
            },
            RootCause {
                id: 5,
                ip: Ip::Ncu,
                description: "wrong credit ID returned at the end of PIO read",
                implication: "CPU buffer credit accounting diverges; later PIOs stall",
                clauses: vec![clause(PioRead, "piorcrd", Corrupt)],
            },
            RootCause {
                id: 6,
                ip: Ip::Ccx,
                description: "PIO write command corrupted in crossbar egress",
                implication: "device register written with the wrong value",
                clauses: vec![clause(PioWrite, "piowreq", Corrupt)],
            },
            RootCause {
                id: 7,
                ip: Ip::Siu,
                description: "Mondo request forwarded from DMU to SIU's bypass queue instead of ordered queue",
                implication: "Mondo interrupt not serviced",
                clauses: vec![
                    clause(Mondo, "reqtot", Healthy),
                    clause(Mondo, "grant", Absent),
                ],
            },
            RootCause {
                id: 8,
                ip: Ip::Dmu,
                description: "invalid Mondo payload forwarded to NCU from DMU via SIU",
                implication: "interrupt assigned to wrong CPU ID and Thread ID",
                clauses: vec![clause(Mondo, "dmusiidata", Corrupt)],
            },
            RootCause {
                id: 9,
                ip: Ip::Dmu,
                description: "non-generation of Mondo interrupt by DMU",
                implication: "computing thread fetches operand from wrong memory location",
                clauses: vec![clause(Mondo, "reqtot", Absent)],
            },
        ],
        2 => vec![
            RootCause {
                id: 1,
                ip: Ip::Mcu,
                description: "erroneous decoding of CPU requests in memory controller",
                implication: "memory return carries data from the wrong DRAM row",
                clauses: vec![clause(NcuUpstream, "mcudata", Corrupt)],
            },
            RootCause {
                id: 2,
                ip: Ip::Mcu,
                description: "memory read return lost in MCU scheduler",
                implication: "requesting thread hangs on the load",
                clauses: vec![clause(NcuUpstream, "mcudata", Absent)],
            },
            RootCause {
                id: 3,
                ip: Ip::Ncu,
                description: "NCU upstream arbiter grants the wrong port",
                implication: "return data delivered to the wrong requester",
                clauses: vec![clause(NcuUpstream, "ncucpxgnt", Corrupt)],
            },
            RootCause {
                id: 4,
                ip: Ip::Ccx,
                description: "crossbar corrupts upstream data return",
                implication: "load observes corrupted data; bad trap on use",
                clauses: vec![clause(NcuUpstream, "cpxdata", Corrupt)],
            },
            RootCause {
                id: 5,
                ip: Ip::Ccx,
                description: "malformed CPU request from cache crossbar to NCU",
                implication: "NCU decodes a nonsense request; downstream garbage",
                clauses: vec![clause(NcuDownstream, "cpxreq", Corrupt)],
            },
            RootCause {
                id: 6,
                ip: Ip::Ncu,
                description: "erroneous CPU request decoding logic of NCU",
                implication: "MCU receives a request for the wrong address",
                clauses: vec![clause(NcuDownstream, "ncumcureq", Corrupt)],
            },
            RootCause {
                id: 7,
                ip: Ip::Ncu,
                description: "erroneous interrupt dequeue logic after interrupt is serviced",
                implication: "interrupt table entry leaks; later interrupts mis-acknowledged",
                clauses: vec![clause(Mondo, "mondoacknack", Corrupt)],
            },
            RootCause {
                id: 8,
                ip: Ip::Dmu,
                description: "invalid Mondo payload forwarded to NCU from DMU via SIU",
                implication: "interrupt assigned to wrong CPU ID and Thread ID",
                clauses: vec![clause(Mondo, "dmusiidata", Corrupt)],
            },
        ],
        3 => vec![
            RootCause {
                id: 1,
                ip: Ip::Ccx,
                description: "PIO read request lost between CPU buffer and NCU",
                implication: "PIO read never performed; thread spins on completion",
                clauses: vec![clause(PioRead, "piorreq", Absent)],
            },
            RootCause {
                id: 2,
                ip: Ip::Ncu,
                description: "erroneous decoding of PIO read request in NCU",
                implication: "DMU receives a request for the wrong device address",
                clauses: vec![clause(PioRead, "ncudmupio", Corrupt)],
            },
            RootCause {
                id: 3,
                ip: Ip::Dmu,
                description: "wrong command generation for PIO completion in DMU",
                implication: "read completion carries the wrong transaction type",
                clauses: vec![clause(PioRead, "dmupioack", Corrupt)],
            },
            RootCause {
                id: 4,
                ip: Ip::Siu,
                description: "SIU ordered queue corrupts PIO response payload",
                implication: "thread loads a corrupted device value",
                clauses: vec![clause(PioRead, "siincu", Corrupt)],
            },
            RootCause {
                id: 5,
                ip: Ip::Ncu,
                description: "wrong credit ID returned at the end of PIO read",
                implication: "CPU buffer credit accounting diverges; later PIOs stall",
                clauses: vec![clause(PioRead, "piorcrd", Corrupt)],
            },
            RootCause {
                id: 6,
                ip: Ip::Ccx,
                description: "PIO write command corrupted in crossbar egress",
                implication: "device register written with the wrong value",
                clauses: vec![clause(PioWrite, "piowreq", Corrupt)],
            },
            RootCause {
                id: 7,
                ip: Ip::Mcu,
                description: "erroneous decoding of CPU requests in memory controller",
                implication: "memory return carries data from the wrong DRAM row",
                clauses: vec![clause(NcuUpstream, "mcudata", Corrupt)],
            },
            RootCause {
                id: 8,
                ip: Ip::Ccx,
                description: "crossbar corrupts upstream data return",
                implication: "load observes corrupted data; bad trap on use",
                clauses: vec![clause(NcuUpstream, "cpxdata", Corrupt)],
            },
            RootCause {
                id: 9,
                ip: Ip::Ncu,
                description: "erroneous CPU request decoding logic of NCU",
                implication: "MCU receives a request for the wrong address",
                clauses: vec![clause(NcuDownstream, "ncumcureq", Corrupt)],
            },
        ],
        4 => {
            // The DMA extension scenario: scenario 1's catalog plus two
            // DMA-read causes, so the §5.7 "no prior DMA read messages"
            // reasoning is executable.
            let mut causes = vec![
                RootCause {
                    id: 1,
                    ip: Ip::Ccx,
                    description: "PIO read request lost between CPU buffer and NCU",
                    implication: "PIO read never performed; thread spins on completion",
                    clauses: vec![clause(PioRead, "piorreq", Absent)],
                },
                RootCause {
                    id: 2,
                    ip: Ip::Ncu,
                    description: "erroneous decoding of PIO read request in NCU",
                    implication: "DMU receives a request for the wrong device address",
                    clauses: vec![clause(PioRead, "ncudmupio", Corrupt)],
                },
                RootCause {
                    id: 3,
                    ip: Ip::Dmu,
                    description: "wrong command generation for PIO completion in DMU",
                    implication: "read completion carries the wrong transaction type",
                    clauses: vec![clause(PioRead, "dmupioack", Corrupt)],
                },
                RootCause {
                    id: 4,
                    ip: Ip::Ncu,
                    description: "wrong interrupt decoding logic / corrupted interrupt handling table in NCU",
                    implication: "interrupt acknowledged to the wrong handler",
                    clauses: vec![clause(Mondo, "mondoacknack", Corrupt)],
                },
                RootCause {
                    id: 5,
                    ip: Ip::Ncu,
                    description: "wrong credit ID returned at the end of PIO read",
                    implication: "CPU buffer credit accounting diverges; later PIOs stall",
                    clauses: vec![clause(PioRead, "piorcrd", Corrupt)],
                },
                RootCause {
                    id: 6,
                    ip: Ip::Ccx,
                    description: "PIO write command corrupted in crossbar egress",
                    implication: "device register written with the wrong value",
                    clauses: vec![clause(PioWrite, "piowreq", Corrupt)],
                },
                RootCause {
                    id: 7,
                    ip: Ip::Siu,
                    description: "Mondo request forwarded from DMU to SIU's bypass queue instead of ordered queue",
                    implication: "Mondo interrupt not serviced",
                    clauses: vec![
                        clause(Mondo, "reqtot", Healthy),
                        clause(Mondo, "grant", Absent),
                    ],
                },
                RootCause {
                    id: 8,
                    ip: Ip::Dmu,
                    description: "invalid Mondo payload forwarded to NCU from DMU via SIU",
                    implication: "interrupt assigned to wrong CPU ID and Thread ID",
                    clauses: vec![clause(Mondo, "dmusiidata", Corrupt)],
                },
                RootCause {
                    id: 9,
                    ip: Ip::Dmu,
                    description: "non-generation of Mondo interrupt by DMU",
                    implication: "computing thread fetches operand from wrong memory location",
                    clauses: vec![clause(Mondo, "reqtot", Absent)],
                },
            ];
            causes.push(RootCause {
                id: 10,
                ip: Ip::Dmu,
                description: "DMU starved of credits by in-flight DMA reads; interrupt deferred",
                implication: "Mondo delayed until DMA reads drain",
                clauses: vec![
                    clause(FlowKind::DmaRead, "siudmurd", Absent),
                    clause(Mondo, "reqtot", Absent),
                ],
            });
            causes.push(RootCause {
                id: 11,
                ip: Ip::Mcu,
                description: "DMA read fetches a stale line from memory",
                implication: "device observes stale DMA data",
                clauses: vec![clause(FlowKind::DmaRead, "mcurddata", Corrupt)],
            });
            causes
        }
        5 => vec![
            RootCause {
                id: 1,
                ip: Ip::Cpu,
                description: "coherence request lost in the core-crossbar interface",
                implication: "requesting thread spins on the line acquisition",
                clauses: vec![clause(FlowKind::Coherence, "cohreq", Absent)],
            },
            RootCause {
                id: 2,
                ip: Ip::Ccx,
                description: "wrong share-state encoding in the Shared grant",
                implication: "core caches the line in the wrong state",
                clauses: vec![clause(FlowKind::Coherence, "gnts", Corrupt)],
            },
            RootCause {
                id: 3,
                ip: Ip::Ccx,
                description: "Exclusive grant addressed to the wrong requester",
                implication: "two cores believe they own the line",
                clauses: vec![clause(FlowKind::Coherence, "gntx", Corrupt)],
            },
            RootCause {
                id: 4,
                ip: Ip::Ccx,
                description: "invalidate never broadcast after an Exclusive grant",
                implication: "stale copies survive; silent data corruption",
                clauses: vec![
                    clause(FlowKind::Coherence, "gntx", Healthy),
                    clause(FlowKind::Coherence, "inval", Absent),
                ],
            },
            RootCause {
                id: 5,
                ip: Ip::Cpu,
                description: "stale invalidate acknowledgement from the victim core",
                implication: "owner proceeds before the line is actually invalidated",
                clauses: vec![clause(FlowKind::Coherence, "invack", Corrupt)],
            },
            RootCause {
                id: 6,
                ip: Ip::Ccx,
                description: "fill data corrupted in the crossbar return path",
                implication: "core loads corrupted line contents; bad trap on use",
                clauses: vec![clause(FlowKind::Coherence, "cohfill", Corrupt)],
            },
            RootCause {
                id: 7,
                ip: Ip::Ncu,
                description: "erroneous CPU request decoding logic of NCU",
                implication: "MCU receives a request for the wrong address",
                clauses: vec![clause(NcuDownstream, "ncumcureq", Corrupt)],
            },
        ],
        n => panic!("no built-in cause catalog for scenario {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::distill;
    use pstrace_bug::{bug_catalog, case_studies, BugInterceptor};
    use pstrace_soc::{capture, SimConfig, Simulator, TraceBufferConfig};

    #[test]
    fn cause_counts_match_table_1() {
        let model = SocModel::t2();
        assert_eq!(
            scenario_causes(&model, &UsageScenario::scenario1()).len(),
            9
        );
        assert_eq!(
            scenario_causes(&model, &UsageScenario::scenario2()).len(),
            8
        );
        assert_eq!(
            scenario_causes(&model, &UsageScenario::scenario3()).len(),
            9
        );
    }

    #[test]
    fn no_evidence_means_everything_plausible() {
        let model = SocModel::t2();
        let causes = scenario_causes(&model, &UsageScenario::scenario1());
        let report = evaluate_causes(&causes, &Evidence::default());
        assert_eq!(report.pruned_count(), 0);
        assert_eq!(report.plausible().len(), 9);
        assert_eq!(report.pruned_fraction(), 0.0);
    }

    /// End-to-end pruning with full observability: the paper's §5.7 case
    /// study shape — case study 1 prunes 8 of 9 causes (88.89 %) and the
    /// survivor blames the DMU.
    #[test]
    fn case_study_1_prunes_to_the_dmu_cause() {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let cs = &case_studies()[0];
        let scenario = cs.scenario.clone();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&bugs)));
        let cfg = TraceBufferConfig::messages_only(&scenario.messages(&model));
        let ev = distill(
            &model,
            &scenario,
            &capture(&model, &golden, &cfg),
            &capture(&model, &buggy, &cfg),
        );
        let causes = scenario_causes(&model, &scenario);
        let report = evaluate_causes(&causes, &ev);
        let plausible = report.plausible();
        assert_eq!(plausible.len(), 1, "exactly one cause survives");
        assert_eq!(plausible[0].ip, Ip::Dmu);
        assert_eq!(plausible[0].id, 9, "non-generation of Mondo interrupt");
        assert!((report.pruned_fraction() - 8.0 / 9.0).abs() < 1e-12);
    }

    /// All five case studies: the true buggy IP is always among the
    /// plausible causes, and pruning is substantial (≥ 50 %) under full
    /// observability.
    #[test]
    fn every_case_study_keeps_the_true_ip_plausible() {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        for cs in case_studies() {
            let scenario = cs.scenario.clone();
            let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(cs.seed));
            let golden = sim.run();
            let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&bugs)));
            let cfg = TraceBufferConfig::messages_only(&scenario.messages(&model));
            let ev = distill(
                &model,
                &scenario,
                &capture(&model, &golden, &cfg),
                &capture(&model, &buggy, &cfg),
            );
            let report = evaluate_causes(&scenario_causes(&model, &scenario), &ev);
            let plausible = report.plausible();
            assert!(!plausible.is_empty(), "case study {}", cs.number);
            let true_ip = cs.bugs(&bugs)[0].ip;
            assert!(
                plausible.iter().any(|c| c.ip == true_ip),
                "case study {}: true IP {true_ip} pruned away",
                cs.number
            );
            assert!(
                report.pruned_fraction() >= 0.5,
                "case study {}: only {:.0}% pruned",
                cs.number,
                report.pruned_fraction() * 100.0
            );
        }
    }

    #[test]
    fn unobserved_witness_cannot_prune() {
        let model = SocModel::t2();
        let causes = scenario_causes(&model, &UsageScenario::scenario1());
        // Evidence about nothing: everything stays plausible even for
        // multi-clause causes.
        let report = evaluate_causes(&causes, &Evidence::default());
        assert!(report
            .entries
            .iter()
            .all(|(_, s)| *s == CauseStatus::Plausible));
    }

    #[test]
    fn dma_scenario_has_eleven_causes() {
        let model = SocModel::t2();
        let causes = scenario_causes(&model, &UsageScenario::scenario_dma());
        assert_eq!(causes.len(), 11);
    }

    /// The §5.7 walkthrough made executable: debugging the never-generated
    /// Mondo interrupt while DMA reads run concurrently. Healthy DMA read
    /// messages play the role of "DMU had all its credit available": they
    /// contradict the credit-starvation cause, leaving non-generation as
    /// the diagnosis.
    #[test]
    fn section_5_7_dma_reasoning() {
        use pstrace_bug::BugInterceptor;
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let drop_reqtot = bugs.iter().find(|b| b.id == 5).unwrap().clone();
        let scenario = UsageScenario::scenario_dma();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(0x57));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![drop_reqtot]));
        let cfg = TraceBufferConfig::messages_only(&scenario.messages(&model));
        let ev = distill(
            &model,
            &scenario,
            &capture(&model, &golden, &cfg),
            &capture(&model, &buggy, &cfg),
        );
        let report = evaluate_causes(&scenario_causes(&model, &scenario), &ev);
        let plausible = report.plausible();
        // Credit starvation (cause 10) is exonerated by the healthy DMA
        // read; non-generation (cause 9) survives.
        assert!(plausible.iter().any(|c| c.id == 9));
        assert!(
            !plausible.iter().any(|c| c.id == 10),
            "healthy DMA read exonerates starvation"
        );
        assert!(report.pruned_fraction() >= 0.8);
    }

    #[test]
    #[should_panic(expected = "no built-in cause catalog")]
    fn custom_scenarios_need_custom_catalogs() {
        let model = SocModel::t2();
        let custom = UsageScenario::custom(7, "custom", &[(FlowKind::Mondo, 1)]);
        let _ = scenario_causes(&model, &custom);
    }
}
