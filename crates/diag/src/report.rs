//! End-to-end case-study driver: select → simulate → inject → capture →
//! localize → diagnose.
//!
//! This is the pipeline behind the paper's Tables 3, 6 and 7 and Figures
//! 6–7: message selection runs over the scenario's interleaved flow under
//! the 32-bit trace buffer, the buggy execution is captured through the
//! selected messages only, and localization plus cause pruning are
//! computed from that captured trace.

use pstrace_bug::{bug_catalog, detect_symptom, BugInterceptor, CaseStudy, Symptom};
use pstrace_core::{
    Parallelism, SelectError, SelectionConfig, SelectionReport, Selector, TraceBufferSpec,
};
use pstrace_obs::{maybe_time, Registry};
use pstrace_soc::{
    capture, wirecap, CapturedTrace, SimConfig, SimOutcome, Simulator, SocModel, TraceBufferConfig,
    UsageScenario,
};

use crate::causes::{evaluate_causes, scenario_causes, CauseReport};
use crate::evidence::distill;
use crate::localize::{localize, Localization, MatchMode};
use crate::walk::{investigate, InvestigationWalk};

/// Knobs of a case-study run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStudyConfig {
    /// Trace buffer width (paper: 32 bits).
    pub buffer_bits: u32,
    /// Whether Step 3 packing runs.
    pub packing: bool,
    /// Circular trace-buffer depth in entries; `None` models a streaming
    /// trace port that never wraps.
    pub depth: Option<usize>,
    /// Route captures through the bit-level wire codec: encode the event
    /// stream into frames, decode it back, and debug from the *decoded*
    /// trace — exercising the full `decode(encode(x)) == capture(x)`
    /// contract on every run.
    pub wire: bool,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            buffer_bits: 32,
            packing: true,
            depth: None,
            wire: false,
        }
    }
}

/// What the wire round trip of one case study measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireTripSummary {
    /// Total width of one frame (tag + index + time + body) in bits.
    pub frame_bits: u32,
    /// Frames in the golden run's stream.
    pub golden_frames: usize,
    /// Frames in the buggy run's stream.
    pub buggy_frames: usize,
    /// Measured per-frame body occupancy over body width.
    pub measured_utilization: f64,
    /// Whether both streams decoded without damage.
    pub clean: bool,
}

/// Everything a case-study run produced.
#[derive(Debug, Clone)]
pub struct CaseStudyReport {
    /// Which case study ran.
    pub case_number: u8,
    /// Its scenario.
    pub scenario: UsageScenario,
    /// The message selection that configured the trace buffer.
    pub selection: SelectionReport,
    /// The buggy run's captured trace.
    pub captured: CapturedTrace,
    /// The detected symptom (`None` if the bug stayed invisible).
    pub symptom: Option<Symptom>,
    /// Path localization from the captured trace.
    pub localization: Localization,
    /// Cause pruning from the captured trace.
    pub causes: CauseReport,
    /// The backtracking investigation walk.
    pub walk: InvestigationWalk,
    /// Wire round-trip measurements (`Some` when the run was routed
    /// through the codec).
    pub wire: Option<WireTripSummary>,
}

impl CaseStudyReport {
    /// Fraction of interleaved-flow paths explored (Table 3, columns 7–8).
    #[must_use]
    pub fn path_localization(&self) -> f64 {
        self.localization.fraction()
    }

    /// Fraction of potential root causes pruned (Figure 7).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        self.causes.pruned_fraction()
    }

    /// Renders the debugging session as the §5.7-style narrative: traced
    /// messages, symptom, localization, investigation and surviving
    /// causes.
    #[must_use]
    pub fn render(&self, model: &SocModel) -> String {
        use std::fmt::Write as _;
        let catalog = model.catalog();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "case study {} ({})",
            self.case_number,
            self.scenario.name()
        );
        let traced: Vec<&str> = self
            .selection
            .chosen
            .messages
            .iter()
            .map(|&m| catalog.name(m))
            .collect();
        let _ = writeln!(out, "  traced messages : {}", traced.join(", "));
        let packed: Vec<String> = self
            .selection
            .packed_groups
            .iter()
            .map(|&g| catalog.group_qualified_name(g))
            .collect();
        if !packed.is_empty() {
            let _ = writeln!(out, "  packed subgroups: {}", packed.join(", "));
        }
        let _ = writeln!(
            out,
            "  buffer          : {:.2}% utilized, {:.2}% flow-spec coverage",
            self.selection.utilization() * 100.0,
            self.selection.coverage() * 100.0
        );
        if let Some(w) = &self.wire {
            let _ = writeln!(
                out,
                "  wire round trip : {} + {} frames of {} bits, {:.2}% measured, {}",
                w.golden_frames,
                w.buggy_frames,
                w.frame_bits,
                w.measured_utilization * 100.0,
                if w.clean { "clean" } else { "DAMAGED" }
            );
        }
        match &self.symptom {
            Some(s) => {
                let _ = writeln!(out, "  symptom         : {s}");
            }
            None => {
                let _ = writeln!(out, "  symptom         : none observed");
            }
        }
        let _ = writeln!(
            out,
            "  localization    : {} of {} interleaved-flow paths ({:.2}%)",
            self.localization.consistent,
            self.localization.total,
            self.path_localization() * 100.0
        );
        let _ = writeln!(
            out,
            "  investigation   : {} messages over {} of {} legal IP pairs",
            self.walk.messages_investigated(),
            self.walk.pairs_investigated.len(),
            self.walk.legal_pairs.len()
        );
        let _ = writeln!(
            out,
            "  root causes     : {} of {} pruned ({:.2}%)",
            self.causes.pruned_count(),
            self.causes.entries.len(),
            self.pruned_fraction() * 100.0
        );
        for cause in self.causes.plausible() {
            let _ = writeln!(out, "    plausible -> [{}] {}", cause.ip, cause.description);
            let _ = writeln!(out, "                 implication: {}", cause.implication);
        }
        out
    }
}

/// Runs one case study end to end with its built-in seed.
///
/// # Errors
///
/// Propagates [`SelectError`] from message selection.
pub fn run_case_study(
    model: &SocModel,
    case: &CaseStudy,
    config: CaseStudyConfig,
) -> Result<CaseStudyReport, SelectError> {
    run_case_study_with_seed(model, case, config, case.seed)
}

/// Runs one case study end to end with an explicit simulation seed
/// (multi-seed campaigns re-run the same bug under different arbitration
/// and latency draws).
///
/// # Errors
///
/// Propagates [`SelectError`] from message selection.
pub fn run_case_study_with_seed(
    model: &SocModel,
    case: &CaseStudy,
    config: CaseStudyConfig,
    seed: u64,
) -> Result<CaseStudyReport, SelectError> {
    run_case_study_observed(model, case, config, seed, None)
}

/// [`run_case_study_with_seed`] with optional instrumentation: with a
/// registry, every pipeline phase (`interleave`, the selection phases,
/// `simulate-golden`, `simulate-buggy`, `capture` / `wire-trip`,
/// `localize`, `causes`, `investigate`) is timed as a span. The report is
/// identical with and without a registry.
///
/// # Errors
///
/// Propagates [`SelectError`] from message selection.
pub fn run_case_study_observed(
    model: &SocModel,
    case: &CaseStudy,
    config: CaseStudyConfig,
    seed: u64,
    obs: Option<&Registry>,
) -> Result<CaseStudyReport, SelectError> {
    run_case_study_routed(model, model, case, config, seed, obs)
}

/// [`run_case_study_observed`] with the *analysis* model decoupled from
/// the *capture* model.
///
/// The capture side (simulation, bug injection, trace capture / wire
/// trip, cause evidence) always runs on `model` — silicon does not care
/// what spec the debugger holds. The analysis side (scenario
/// interleaving, hence message selection and path localization) runs on
/// `analysis`, which may substitute mined flow specifications via
/// [`SocModel::with_flow`]. With `analysis = model` this is exactly
/// [`run_case_study_observed`]; with a structurally equivalent mined
/// model the report is byte-identical — the acceptance gate for inferred
/// flows.
///
/// Both models must share one message catalog (enforced by `with_flow`).
///
/// # Errors
///
/// Propagates [`SelectError`] from message selection.
pub fn run_case_study_routed(
    model: &SocModel,
    analysis: &SocModel,
    case: &CaseStudy,
    config: CaseStudyConfig,
    seed: u64,
    obs: Option<&Registry>,
) -> Result<CaseStudyReport, SelectError> {
    let scenario = case.scenario.clone();
    let interleaving = maybe_time(obs, "interleave", || {
        scenario
            .interleaving(analysis)
            .expect("paper scenarios always interleave")
    });

    // Select messages for the trace buffer.
    let buffer = TraceBufferSpec::new(config.buffer_bits)?;
    let mut sel_config = SelectionConfig::new(buffer);
    sel_config.packing = config.packing;
    let selection = Selector::new(&interleaving, sel_config).select_observed(obs)?;

    // Golden and buggy runs under identical randomness.
    let sim = Simulator::new(model, scenario.clone(), SimConfig::with_seed(seed));
    let golden = maybe_time(obs, "simulate-golden", || sim.run());
    let catalog = bug_catalog(model);
    let mut interceptor = BugInterceptor::new(model, case.bugs(&catalog));
    let buggy = maybe_time(obs, "simulate-buggy", || sim.run_with(&mut interceptor));
    let symptom = detect_symptom(&golden, &buggy);

    // The trace buffer sees only the selected messages/subgroups.
    let trace_config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: config.depth,
    };
    // Either capture directly at the record level, or push the events
    // through the wire codec and debug from the decoded streams.
    let mut wire_summary = None;
    let (golden_capture, buggy_capture) = if config.wire {
        let _span = obs.map(|r| r.span("wire-trip"));
        let schema = wirecap::wire_schema(model, &trace_config, config.buffer_bits)
            .expect("a selection-derived schema fits its own buffer");
        let trip = |events: &SimOutcome| {
            let stream =
                wirecap::encode_events(model.catalog(), &schema, &events.events, &trace_config)
                    .expect("simulated records fit the schema's field widths");
            let frames = stream.frames;
            let (trace, report) = wirecap::decode_capture(
                &schema,
                &stream.bytes,
                Some(stream.bit_len),
                Parallelism::Off,
            );
            (trace, frames, report.is_clean(), report.utilization())
        };
        let (golden_trace, golden_frames, golden_clean, utilization) = trip(&golden);
        let (buggy_trace, buggy_frames, buggy_clean, _) = trip(&buggy);
        wire_summary = Some(WireTripSummary {
            frame_bits: schema.frame_bits(),
            golden_frames,
            buggy_frames,
            measured_utilization: utilization,
            clean: golden_clean && buggy_clean,
        });
        (golden_trace, buggy_trace)
    } else {
        maybe_time(obs, "capture", || {
            (
                capture(model, &golden, &trace_config),
                capture(model, &buggy, &trace_config),
            )
        })
    };

    // Path localization mode: a complete capture of a complete run is
    // matched exactly; a hung run only constrains a prefix; a wrapped
    // circular buffer only preserves a suffix (or an unanchored window if
    // the run also hung).
    let wrapped = config.depth.is_some_and(|d| buggy_capture.len() >= d);
    let mode = match (buggy.status.is_completed(), wrapped) {
        (true, false) => MatchMode::Exact,
        (false, false) => MatchMode::Prefix,
        (true, true) => MatchMode::Suffix,
        (false, true) => MatchMode::Substring,
    };
    let observed = buggy_capture.message_sequence();
    let localization = maybe_time(obs, "localize", || {
        localize(
            &interleaving,
            &observed,
            &selection.effective_messages,
            mode,
        )
    });

    // Cause pruning and the investigation walk. A wrapped buffer cannot
    // testify about absence (the evicted window might have held the
    // message), so absence verdicts are weakened to keep pruning sound.
    let (causes, cause_report) = maybe_time(obs, "causes", || {
        let causes = scenario_causes(model, &scenario);
        let mut evidence = distill(model, &scenario, &golden_capture, &buggy_capture);
        if wrapped {
            evidence.weaken_absence();
        }
        let cause_report = evaluate_causes(&causes, &evidence);
        (causes, cause_report)
    });
    let walk = maybe_time(obs, "investigate", || {
        investigate(model, &scenario, &golden_capture, &buggy_capture, &causes)
    });

    Ok(CaseStudyReport {
        case_number: case.number,
        scenario,
        selection,
        captured: buggy_capture,
        symptom,
        localization,
        causes: cause_report,
        walk,
        wire: wire_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_bug::case_studies;

    #[test]
    fn all_five_case_studies_run_end_to_end() {
        let model = SocModel::t2();
        for cs in case_studies() {
            let report = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
            assert_eq!(report.case_number, cs.number);
            assert!(report.symptom.is_some(), "case {} symptomless", cs.number);
            assert!(
                report.selection.utilization() > 0.9,
                "case {}: utilization {:.2}",
                cs.number,
                report.selection.utilization()
            );
            assert!(
                report.path_localization() < 0.5,
                "case {}: localization {:.3}",
                cs.number,
                report.path_localization()
            );
            assert!(report.localization.total > 0);
        }
    }

    #[test]
    fn observed_case_study_is_identical_and_covers_the_pipeline_phases() {
        let model = SocModel::t2();
        let cs = &case_studies()[0];
        for wire in [false, true] {
            let config = CaseStudyConfig {
                wire,
                ..CaseStudyConfig::default()
            };
            let plain = run_case_study(&model, cs, config).unwrap();
            let obs = pstrace_obs::Registry::with_clock(Box::new(pstrace_obs::ManualClock::new()));
            let observed =
                run_case_study_observed(&model, cs, config, cs.seed, Some(&obs)).unwrap();
            assert_eq!(plain.captured, observed.captured);
            assert_eq!(plain.localization, observed.localization);
            assert_eq!(plain.symptom, observed.symptom);
            let phases: Vec<String> = obs.spans().iter().map(|s| s.name.clone()).collect();
            let mut expected = vec![
                "interleave",
                "mi-cache",
                "rank",
                "simulate-golden",
                "simulate-buggy",
                "localize",
                "causes",
                "investigate",
            ];
            expected.push(if wire { "wire-trip" } else { "capture" });
            for phase in expected {
                assert!(
                    phases.iter().any(|p| p == phase),
                    "wire={wire}: missing phase {phase} in {phases:?}"
                );
            }
        }
    }

    #[test]
    fn packing_never_hurts_localization_or_pruning() {
        let model = SocModel::t2();
        for cs in case_studies() {
            let with = run_case_study(
                &model,
                &cs,
                CaseStudyConfig {
                    buffer_bits: 32,
                    packing: true,
                    depth: None,
                    wire: false,
                },
            )
            .unwrap();
            let without = run_case_study(
                &model,
                &cs,
                CaseStudyConfig {
                    buffer_bits: 32,
                    packing: false,
                    depth: None,
                    wire: false,
                },
            )
            .unwrap();
            assert!(
                with.path_localization() <= without.path_localization() + 1e-12,
                "case {}: packing worsened localization",
                cs.number
            );
            assert!(
                with.selection.utilization() >= without.selection.utilization(),
                "case {}",
                cs.number
            );
            assert!(
                with.pruned_fraction() + 1e-12 >= without.pruned_fraction(),
                "case {}: packing worsened pruning",
                cs.number
            );
        }
    }

    #[test]
    fn render_contains_the_whole_story() {
        let model = SocModel::t2();
        let cs = &case_studies()[0];
        let report = run_case_study(&model, cs, CaseStudyConfig::default()).unwrap();
        let text = report.render(&model);
        assert!(text.contains("case study 1"));
        assert!(text.contains("traced messages"));
        assert!(text.contains("HANG"));
        assert!(text.contains("plausible ->"));
        assert!(text.contains("root causes"));
    }

    #[test]
    fn wrapped_buffer_still_localizes() {
        // A shallow circular buffer keeps only the newest records; suffix
        // (or substring) matching still yields a sound, if weaker,
        // localization.
        let model = SocModel::t2();
        for cs in case_studies() {
            let full = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
            let wrapped = run_case_study(
                &model,
                &cs,
                CaseStudyConfig {
                    buffer_bits: 32,
                    packing: true,
                    depth: Some(3),
                    wire: false,
                },
            )
            .unwrap();
            assert!(wrapped.captured.len() <= 3, "case {}", cs.number);
            // The true execution still matches, so at least one path is
            // consistent whenever the full capture had one.
            if full.localization.consistent >= 1 {
                assert!(wrapped.localization.consistent >= 1, "case {}", cs.number);
            }
            // Less observation can only weaken localization.
            assert!(
                wrapped.localization.consistent >= full.localization.consistent,
                "case {}",
                cs.number
            );
        }
    }

    #[test]
    fn wire_mode_reproduces_direct_capture_exactly() {
        // Tentpole acceptance: for every case study, debugging from the
        // decoded wire stream is indistinguishable from debugging from the
        // directly modeled capture.
        let model = SocModel::t2();
        for cs in case_studies() {
            let direct = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
            let wired = run_case_study(
                &model,
                &cs,
                CaseStudyConfig {
                    wire: true,
                    ..CaseStudyConfig::default()
                },
            )
            .unwrap();
            assert_eq!(wired.captured, direct.captured, "case {}", cs.number);
            assert_eq!(
                wired.localization, direct.localization,
                "case {}",
                cs.number
            );
            assert_eq!(wired.symptom, direct.symptom, "case {}", cs.number);
            let summary = wired.wire.expect("wire mode records a summary");
            assert!(summary.clean, "case {}: wire stream damaged", cs.number);
            assert!(
                (summary.measured_utilization - wired.selection.utilization()).abs() < 1e-12,
                "case {}: measured {} vs modeled {}",
                cs.number,
                summary.measured_utilization,
                wired.selection.utilization()
            );
            assert!(direct.wire.is_none());
            let text = wired.render(&model);
            assert!(text.contains("wire round trip"));
        }
    }

    #[test]
    fn localization_consistent_count_is_positive_for_badtrap_cases() {
        // Completed buggy runs took a real path of the interleaving, so at
        // least that path is consistent with the observation.
        let model = SocModel::t2();
        for cs in case_studies() {
            let report = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
            if matches!(report.symptom, Some(Symptom::BadTrap { .. })) {
                assert!(report.localization.consistent >= 1, "case {}", cs.number);
            }
        }
    }
}
