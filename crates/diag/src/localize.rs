//! Path localization (§5.2): how far an observed trace narrows down the
//! interleaved-flow paths a buggy execution could have taken.
//!
//! The debugger sees only the selected messages. An interleaved-flow path
//! is *consistent* with the observed trace when projecting its full message
//! sequence onto the selected set reproduces the observation. Localization
//! is the consistent fraction of all root-to-stop paths — the smaller, the
//! less the debugger has to explore.

use std::collections::HashMap;

use pstrace_flow::{path_count, topological_order, IndexedMessage, InterleavedFlow, MessageId};

/// How observed traces are matched against path projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// The observation is the complete projected trace of the execution
    /// (runs that terminated, unbounded trace buffer).
    Exact,
    /// The observation is a prefix of the projected trace (hung runs whose
    /// tail never happened).
    Prefix,
    /// The observation is a suffix of the projected trace (a circular
    /// trace buffer that wrapped: only the newest entries survived).
    Suffix,
    /// The observation appears contiguously somewhere inside the projected
    /// trace (a circular buffer that wrapped *and* the run hung: the
    /// surviving window is neither anchored at the start nor at the end).
    Substring,
}

/// Counts the root-to-stop paths of `flow` whose projection onto
/// `selected` matches `observed` under `mode`.
///
/// Dynamic programming over `(product state, observation position)`; cost
/// is `O(states × (observed.len() + 1) + edges × (observed.len() + 1))`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, InterleavedFlow};
/// use pstrace_diag::{consistent_paths, MatchMode};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// use pstrace_flow::{FlowIndex, IndexedMessage};
/// let (flow, catalog) = cache_coherence();
/// let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// // §3.2: observing {1:ReqE, 1:GntE, 2:ReqE} with {ReqE, GntE} traced
/// // localizes the execution to a single path prefix: the atomic GntW
/// // state forces 1:Ack between 1:GntE and 2:ReqE.
/// let req = catalog.get("ReqE").unwrap();
/// let gnt = catalog.get("GntE").unwrap();
/// let observed = [
///     IndexedMessage::new(req, FlowIndex(1)),
///     IndexedMessage::new(gnt, FlowIndex(1)),
///     IndexedMessage::new(req, FlowIndex(2)),
/// ];
/// let hits = consistent_paths(&u, &observed, &[req, gnt], MatchMode::Prefix);
/// assert_eq!(hits, 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn consistent_paths(
    flow: &InterleavedFlow,
    observed: &[IndexedMessage],
    selected: &[MessageId],
    mode: MatchMode,
) -> u128 {
    if mode == MatchMode::Suffix || mode == MatchMode::Substring {
        return consistent_paths_automaton(flow, observed, selected, mode);
    }
    let n = flow.state_count();
    let len = observed.len();
    // ways[s][k] = number of paths from state s to a stop state whose
    // projection equals observed[k..] (Exact) or has it as prefix (Prefix).
    let mut ways = vec![vec![0u128; len + 1]; n];
    for &s in flow.stop_states() {
        // Exact and Prefix both require the whole observation consumed by
        // the time a stop state is reached (Suffix is handled above).
        ways[s.index()][len] = 1;
    }
    let order = topological_order(flow);
    for &u in order.iter().rev() {
        let state = flow.state_at(u);
        // Start from whatever stop-state seeding already placed there.
        let mut acc = ways[u].clone();
        for e in flow.edges_from(state) {
            let to = e.to.index();
            if selected.contains(&e.message.message) {
                for k in 0..len {
                    if observed[k] == e.message {
                        acc[k] = acc[k].saturating_add(ways[to][k + 1]);
                    }
                }
                if mode == MatchMode::Prefix {
                    // Beyond the observed prefix, further selected
                    // messages are allowed (they were never captured
                    // because the run died, or the buffer wrapped).
                    acc[len] = acc[len].saturating_add(ways[to][len]);
                }
            } else {
                for k in 0..=len {
                    acc[k] = acc[k].saturating_add(ways[to][k]);
                }
            }
        }
        ways[u] = acc;
    }
    flow.initial_states()
        .iter()
        .fold(0u128, |a, s| a.saturating_add(ways[s.index()][0]))
}

/// Suffix-mode path counting via a KMP matching automaton.
///
/// A path's projection ends with `observed` exactly when the automaton
/// tracking the longest suffix-of-input that is a prefix-of-`observed`
/// finishes in its accepting state. The DP runs over
/// `(product state, automaton state)`; determinism of the automaton keeps
/// the count free of double counting across overlapping alignments.
fn consistent_paths_automaton(
    flow: &InterleavedFlow,
    observed: &[IndexedMessage],
    selected: &[MessageId],
    mode: MatchMode,
) -> u128 {
    let n = flow.state_count();
    let len = observed.len();

    // KMP failure function over the observed sequence.
    let mut fail = vec![0usize; len + 1];
    for i in 1..len {
        let mut k = fail[i];
        while k > 0 && observed[i] != observed[k] {
            k = fail[k];
        }
        if observed[i] == observed[k] {
            k += 1;
        }
        fail[i + 1] = k;
    }
    // delta(q, m): automaton step. Suffix mode continues past full
    // matches (accepting iff the input *ends* with `observed`); substring
    // mode makes the accepting state absorbing (accepting iff `observed`
    // appeared anywhere).
    let step = |mut q: usize, m: IndexedMessage| -> usize {
        if mode == MatchMode::Substring && q == len {
            return len;
        }
        loop {
            if q < len && observed[q] == m {
                return q + 1;
            }
            if q == 0 {
                return 0;
            }
            q = fail[q];
        }
    };

    // f[s][q] = paths from s (automaton in q) to a stop state whose
    // remaining projection drives the automaton to `len` at the end.
    let order = topological_order(flow);
    let mut f = vec![vec![0u128; len + 1]; n];
    for &s in flow.stop_states() {
        // With a non-empty observation only the accepting state counts;
        // an empty observation is matched by every path (and `len == 0`
        // makes state 0 the accepting state anyway).
        f[s.index()][len] = 1;
    }
    for &u in order.iter().rev() {
        let state = flow.state_at(u);
        let mut acc = f[u].clone();
        for e in flow.edges_from(state) {
            let to = e.to.index();
            if selected.contains(&e.message.message) {
                for (q, slot) in acc.iter_mut().enumerate() {
                    let q2 = step(q, e.message);
                    *slot = slot.saturating_add(f[to][q2]);
                }
            } else {
                for (q, slot) in acc.iter_mut().enumerate() {
                    *slot = slot.saturating_add(f[to][q]);
                }
            }
        }
        f[u] = acc;
    }
    flow.initial_states()
        .iter()
        .fold(0u128, |a, s| a.saturating_add(f[s.index()][0]))
}

/// The localization report for one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Localization {
    /// Paths consistent with the observation.
    pub consistent: u128,
    /// All root-to-stop paths of the interleaving.
    pub total: u128,
}

impl Localization {
    /// The localized fraction (`consistent / total`), the paper's Table 3
    /// metric.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.consistent as f64 / self.total as f64
    }
}

/// Convenience wrapper computing both counts.
#[must_use]
pub fn localize(
    flow: &InterleavedFlow,
    observed: &[IndexedMessage],
    selected: &[MessageId],
    mode: MatchMode,
) -> Localization {
    Localization {
        consistent: consistent_paths(flow, observed, selected, mode),
        total: path_count(flow),
    }
}

/// Brute-force localization by explicit path enumeration — used by tests
/// and property checks to validate the DP. Exponential; only for small
/// interleavings.
#[must_use]
pub fn consistent_paths_bruteforce(
    flow: &InterleavedFlow,
    observed: &[IndexedMessage],
    selected: &[MessageId],
    mode: MatchMode,
) -> u128 {
    let mut count = 0u128;
    for exec in pstrace_flow::executions(flow) {
        let projected = exec.project(selected);
        let matches = match mode {
            MatchMode::Exact => projected == observed,
            MatchMode::Prefix => projected.starts_with(observed),
            MatchMode::Suffix => projected.ends_with(observed),
            MatchMode::Substring => {
                observed.is_empty() || projected.windows(observed.len()).any(|w| w == observed)
            }
        };
        if matches {
            count += 1;
        }
    }
    count
}

/// Groups observation sequences by their localization, for reporting.
#[derive(Debug, Clone, Default)]
pub struct LocalizationStats {
    fractions: Vec<f64>,
}

impl LocalizationStats {
    /// Creates empty stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one localization fraction.
    pub fn record(&mut self, fraction: f64) {
        self.fractions.push(fraction);
    }

    /// Mean localization fraction.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.fractions.is_empty() {
            return 0.0;
        }
        self.fractions.iter().sum::<f64>() / self.fractions.len() as f64
    }

    /// Worst (largest) localization fraction.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.fractions.iter().copied().fold(0.0, f64::max)
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }
}

/// Mapping from observation histograms to per-message state; kept private.
#[allow(dead_code)]
type ObservationKey = HashMap<IndexedMessage, u32>;

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{examples::cache_coherence, executions, instantiate};
    use std::sync::Arc;

    fn two_instances() -> InterleavedFlow {
        let (flow, _) = cache_coherence();
        InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap()
    }

    #[test]
    fn paper_red_paths_example() {
        // The paper's §3.2 narrative: an observed trace over {ReqE, GntE}
        // immediately localizes the execution to a tiny number of paths.
        let u = two_instances();
        let catalog = u.catalog();
        let req = catalog.get("ReqE").unwrap();
        let gnt = catalog.get("GntE").unwrap();
        let one = pstrace_flow::FlowIndex(1);
        let two = pstrace_flow::FlowIndex(2);
        let observed = [
            IndexedMessage::new(req, one),
            IndexedMessage::new(gnt, one),
            IndexedMessage::new(req, two),
        ];
        let hits = consistent_paths(&u, &observed, &[req, gnt], MatchMode::Exact);
        // The projection is complete: with {ReqE, GntE} traced, 2:GntE
        // would also be captured, so "2:GntE missing" means instance 2
        // never got its grant before the run ended: prefix semantics.
        // Figure 2 highlights two graph paths, but under the full
        // Definition 5 semantics the atomic GntW state forces 1:Ack
        // between 1:GntE and 2:ReqE, leaving exactly one consistent
        // complete-path prefix.
        let prefix_hits = consistent_paths(&u, &observed, &[req, gnt], MatchMode::Prefix);
        assert_eq!(hits, 0, "exact: every complete path shows 2:GntE too");
        assert_eq!(prefix_hits, 1);
        assert_eq!(
            prefix_hits,
            consistent_paths_bruteforce(&u, &observed, &[req, gnt], MatchMode::Prefix)
        );
    }

    #[test]
    fn dp_matches_bruteforce_on_all_exact_observations() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        // Every execution's own projection must be consistent with itself,
        // and DP must agree with brute force.
        for exec in executions(&u) {
            let obs = exec.project(&selected);
            let dp = consistent_paths(&u, &obs, &selected, MatchMode::Exact);
            let bf = consistent_paths_bruteforce(&u, &obs, &selected, MatchMode::Exact);
            assert_eq!(dp, bf);
            assert!(dp >= 1);
        }
    }

    #[test]
    fn empty_selection_localizes_nothing() {
        let u = two_instances();
        let loc = localize(&u, &[], &[], MatchMode::Exact);
        assert_eq!(loc.consistent, loc.total);
        assert_eq!(loc.fraction(), 1.0);
    }

    #[test]
    fn full_trace_localizes_to_one_path() {
        let u = two_instances();
        let all = u.message_alphabet();
        for exec in executions(&u) {
            let obs = exec.project(&all);
            let loc = localize(&u, &obs, &all, MatchMode::Exact);
            assert_eq!(loc.consistent, 1, "full observability pins the path");
        }
    }

    #[test]
    fn inconsistent_observation_matches_zero_paths() {
        let u = two_instances();
        let catalog = u.catalog();
        let ack = catalog.get("Ack").unwrap();
        let one = pstrace_flow::FlowIndex(1);
        // Two Acks from the same instance can never happen.
        let observed = [IndexedMessage::new(ack, one), IndexedMessage::new(ack, one)];
        assert_eq!(consistent_paths(&u, &observed, &[ack], MatchMode::Exact), 0);
    }

    #[test]
    fn prefix_mode_is_weaker_than_exact() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap()];
        let one = pstrace_flow::FlowIndex(1);
        let observed = [IndexedMessage::new(selected[0], one)];
        let exact = consistent_paths(&u, &observed, &selected, MatchMode::Exact);
        let prefix = consistent_paths(&u, &observed, &selected, MatchMode::Prefix);
        assert!(prefix >= exact);
    }

    #[test]
    fn suffix_mode_matches_bruteforce_exhaustively() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        // Every suffix of every execution's projection must be counted
        // identically by the automaton DP and brute force.
        for exec in executions(&u) {
            let projected = exec.project(&selected);
            for cut in 0..=projected.len() {
                let suffix = &projected[cut..];
                let dp = consistent_paths(&u, suffix, &selected, MatchMode::Suffix);
                let bf = consistent_paths_bruteforce(&u, suffix, &selected, MatchMode::Suffix);
                assert_eq!(dp, bf, "cut {cut}");
                assert!(dp >= 1, "own suffix must match");
            }
        }
    }

    #[test]
    fn empty_suffix_matches_every_path() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("Ack").unwrap()];
        let dp = consistent_paths(&u, &[], &selected, MatchMode::Suffix);
        assert_eq!(dp, pstrace_flow::path_count(&u));
    }

    #[test]
    fn suffix_is_weaker_than_exact_and_incomparable_to_prefix() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        for exec in executions(&u) {
            let projected = exec.project(&selected);
            let exact = consistent_paths(&u, &projected, &selected, MatchMode::Exact);
            let suffix = consistent_paths(&u, &projected, &selected, MatchMode::Suffix);
            assert!(suffix >= exact);
        }
    }

    #[test]
    fn substring_mode_matches_bruteforce() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("Ack").unwrap()];
        for exec in executions(&u) {
            let projected = exec.project(&selected);
            for start in 0..projected.len() {
                for end in start..=projected.len() {
                    let window = &projected[start..end];
                    let dp = consistent_paths(&u, window, &selected, MatchMode::Substring);
                    let bf =
                        consistent_paths_bruteforce(&u, window, &selected, MatchMode::Substring);
                    assert_eq!(dp, bf);
                    assert!(dp >= 1, "own window must match");
                }
            }
        }
    }

    #[test]
    fn substring_is_the_weakest_mode() {
        let u = two_instances();
        let catalog = u.catalog();
        let selected = [catalog.get("GntE").unwrap()];
        for exec in executions(&u) {
            let projected = exec.project(&selected);
            for cut in 0..=projected.len() {
                let piece = &projected[..cut];
                let prefix = consistent_paths(&u, piece, &selected, MatchMode::Prefix);
                let substring = consistent_paths(&u, piece, &selected, MatchMode::Substring);
                assert!(substring >= prefix);
            }
        }
    }

    #[test]
    fn stats_aggregate() {
        let mut stats = LocalizationStats::new();
        assert!(stats.is_empty());
        stats.record(0.25);
        stats.record(0.75);
        assert_eq!(stats.len(), 2);
        assert!((stats.mean() - 0.5).abs() < 1e-12);
        assert_eq!(stats.max(), 0.75);
    }
}
