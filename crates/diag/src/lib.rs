//! Post-silicon diagnosis engine: path localization, IP-pair
//! investigation and root-cause pruning.
//!
//! Reproduces the debugging side of *Application Level Hardware Tracing
//! for Scaling Post-Silicon Debug* (DAC 2018, §5):
//!
//! * [`localize`] / [`consistent_paths`] — the §5.2 path-localization
//!   metric: the fraction of interleaved-flow paths consistent with the
//!   captured trace (exact for completed runs, prefix for hangs);
//! * [`OnlineLocalizer`] — the streaming form of the same DP: one decoded
//!   record folded in at a time in `O(edges)` amortized, bit-identical to
//!   the batch result at every prefix (the engine behind `pstrace-stream`);
//! * [`Evidence`] / [`distill`] — per-witness verdicts (healthy, corrupt,
//!   absent, unobserved) from a golden/buggy capture pair;
//! * [`RootCause`] / [`scenario_causes`] / [`evaluate_causes`] — the
//!   a-priori cause catalogs of Table 1 (9/8/9 causes) with conjunctive
//!   failure signatures, and the elimination engine behind Figure 7 and
//!   the §5.7 walkthrough;
//! * [`investigate`] — the backtracking investigation walk producing the
//!   Figure 6 elimination series and the Table 6 statistics;
//! * [`run_case_study`] — the end-to-end select → inject → capture →
//!   diagnose pipeline.
//!
//! # Examples
//!
//! ```
//! use pstrace_bug::case_studies;
//! use pstrace_diag::{run_case_study, CaseStudyConfig};
//! use pstrace_soc::SocModel;
//!
//! # fn main() -> Result<(), pstrace_core::SelectError> {
//! let model = SocModel::t2();
//! let cs = &case_studies()[0];
//! let report = run_case_study(&model, cs, CaseStudyConfig::default())?;
//! assert!(report.symptom.is_some());
//! assert!(report.path_localization() < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod causes;
mod evidence;
mod localize;
mod online;
mod report;
mod walk;

pub use campaign::{run_campaign, CampaignStats, Summary};
pub use causes::{evaluate_causes, scenario_causes, CauseReport, CauseStatus, Clause, RootCause};
pub use evidence::{distill, index_to_kind, infer_flow_order, Evidence, Verdict, Witness};
pub use localize::{
    consistent_paths, consistent_paths_bruteforce, localize, Localization, LocalizationStats,
    MatchMode,
};
pub use online::{Frontier, LocalizerCheckpoint, OnlineLocalizer};
pub use report::{
    run_case_study, run_case_study_observed, run_case_study_routed, run_case_study_with_seed,
    CaseStudyConfig, CaseStudyReport, WireTripSummary,
};
pub use walk::{investigate, InvestigationWalk, WalkStep};
