//! Trace evidence: what the captured trace says about each witness
//! message.
//!
//! Debugging (§5.7) reasons from the captured trace in three ways: a
//! traced message observed with its expected payload *exonerates* the
//! logic that produced it; a traced message with a wrong payload
//! *incriminates* it; and the *absence* of a traced message that the flow
//! specification says should have appeared incriminates its producer.
//! Untraced messages say nothing. This module distills a golden/buggy
//! capture pair into exactly those verdicts.

use std::collections::HashMap;

use pstrace_flow::{FlowIndex, MessageId};
use pstrace_soc::{CapturedTrace, FlowKind, SocModel, UsageScenario};

/// What the trace says about one `(flow, message)` witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Observed with the expected payload everywhere — the producing logic
    /// demonstrably worked. Also inferred for untraced messages when a
    /// *later* message of the same flow instance was observed healthy:
    /// corruption propagates downstream, so a healthy tail exonerates the
    /// hops before it (the paper's "NCU got back correct credit ID" step).
    Healthy,
    /// Observed, but at least one payload deviates from golden.
    Corrupt,
    /// Expected (the golden run captured it) but missing from the buggy
    /// capture. Also inferred for untraced messages when an *earlier*
    /// message of the same flow instance is absent: a flow cannot skip
    /// ahead, so nothing after a missing hop ever happened.
    Absent,
    /// Known to have occurred (a later message of the instance was
    /// captured) but with unknown integrity — a corrupt tail does not say
    /// which upstream hop corrupted it.
    Occurred,
    /// Not traced and nothing could be inferred.
    Unobserved,
}

/// A witness: a message as emitted by instances of one flow kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Witness {
    /// The flow the message belongs to.
    pub flow: FlowKind,
    /// The message.
    pub message: MessageId,
}

impl Witness {
    /// Creates a witness.
    #[must_use]
    pub fn new(flow: FlowKind, message: MessageId) -> Self {
        Witness { flow, message }
    }
}

/// The distilled evidence for a scenario run: a verdict per witness.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    verdicts: HashMap<Witness, Verdict>,
}

impl Evidence {
    /// The verdict for `witness` ([`Verdict::Unobserved`] if unknown).
    #[must_use]
    pub fn verdict(&self, witness: Witness) -> Verdict {
        self.verdicts
            .get(&witness)
            .copied()
            .unwrap_or(Verdict::Unobserved)
    }

    /// Iterates over all `(witness, verdict)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Witness, Verdict)> + '_ {
        self.verdicts.iter().map(|(w, v)| (*w, *v))
    }

    /// Overrides one verdict (used by the incremental investigation walk).
    pub fn set(&mut self, witness: Witness, verdict: Verdict) {
        self.verdicts.insert(witness, verdict);
    }

    /// Number of witnesses with a non-[`Verdict::Unobserved`] verdict.
    #[must_use]
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Whether no verdicts are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Downgrades every [`Verdict::Absent`] to [`Verdict::Unobserved`].
    ///
    /// A circular trace buffer that wrapped cannot testify about absence:
    /// a message missing from the surviving window may simply have been
    /// overwritten, and the golden and buggy windows need not align. Call
    /// this after [`distill`](crate::distill) whenever either capture hit
    /// its depth limit, so that only positive evidence (healthy / corrupt
    /// observations) drives cause pruning.
    pub fn weaken_absence(&mut self) {
        for v in self.verdicts.values_mut() {
            if *v == Verdict::Absent {
                *v = Verdict::Unobserved;
            }
        }
    }
}

/// Maps each flow-instance index of `scenario` to its flow kind.
#[must_use]
pub fn index_to_kind(scenario: &UsageScenario) -> HashMap<FlowIndex, FlowKind> {
    let mut map = HashMap::new();
    let mut next = 1u32;
    for &(kind, count) in scenario.flows() {
        for _ in 0..count {
            map.insert(FlowIndex(next), kind);
            next += 1;
        }
    }
    map
}

/// Fills in verdicts for untraced witnesses by flow-order inference:
///
/// * anything after an [`Verdict::Absent`] hop of the same flow is absent
///   too (flows cannot skip ahead);
/// * anything before a directly-observed [`Verdict::Healthy`] hop is
///   healthy (corruption propagates downstream, so a clean tail exonerates
///   the head);
/// * anything before any directly-observed hop at least [`Verdict::Occurred`].
///
/// Inference never overrides a direct verdict, and it only applies to
/// *linear* flows: on a branching flow an untraced message may simply lie
/// on the path not taken, so neither absence cascades nor healthy-tail
/// exoneration are sound there.
pub fn infer_flow_order(model: &SocModel, scenario: &UsageScenario, evidence: &mut Evidence) {
    let kinds: Vec<FlowKind> = scenario.flows().iter().map(|&(k, _)| k).collect();
    for kind in kinds {
        if !model.flow(kind).is_linear() {
            continue;
        }
        let order = model.flow(kind).messages().to_vec();
        let direct: Vec<Verdict> = order
            .iter()
            .map(|&m| evidence.verdict(Witness::new(kind, m)))
            .collect();
        let mut absent_cascade = false;
        for (i, &m) in order.iter().enumerate() {
            if direct[i] == Verdict::Absent {
                absent_cascade = true;
                continue;
            }
            if direct[i] != Verdict::Unobserved {
                continue;
            }
            let w = Witness::new(kind, m);
            if absent_cascade {
                evidence.set(w, Verdict::Absent);
                continue;
            }
            let later = &direct[i + 1..];
            if later.contains(&Verdict::Healthy) {
                evidence.set(w, Verdict::Healthy);
            } else if later
                .iter()
                .any(|&v| v == Verdict::Corrupt || v == Verdict::Occurred)
            {
                evidence.set(w, Verdict::Occurred);
            }
        }
    }
}

/// Distills evidence from a golden/buggy capture pair taken with the same
/// trace-buffer configuration and seed, then applies
/// [`infer_flow_order`].
///
/// For each `(flow kind, message)` with at least one golden record:
/// missing buggy records → [`Verdict::Absent`]; any payload mismatch →
/// [`Verdict::Corrupt`]; otherwise [`Verdict::Healthy`]. Witnesses never
/// captured in the golden run get their verdict by flow-order inference or
/// stay [`Verdict::Unobserved`].
#[must_use]
pub fn distill(
    model: &SocModel,
    scenario: &UsageScenario,
    golden: &CapturedTrace,
    buggy: &CapturedTrace,
) -> Evidence {
    let kinds = index_to_kind(scenario);
    // Key: (witness, index, per-indexed-message position).
    let mut golden_vals: HashMap<(Witness, FlowIndex, u32), u64> = HashMap::new();
    let mut golden_counts: HashMap<(Witness, FlowIndex), u32> = HashMap::new();
    for r in golden.records() {
        let Some(&kind) = kinds.get(&r.message.index) else {
            continue;
        };
        let w = Witness::new(kind, r.message.message);
        let pos = golden_counts.entry((w, r.message.index)).or_insert(0);
        golden_vals.insert((w, r.message.index, *pos), r.value);
        *pos += 1;
    }
    let mut buggy_vals: HashMap<(Witness, FlowIndex, u32), u64> = HashMap::new();
    let mut buggy_counts: HashMap<(Witness, FlowIndex), u32> = HashMap::new();
    for r in buggy.records() {
        let Some(&kind) = kinds.get(&r.message.index) else {
            continue;
        };
        let w = Witness::new(kind, r.message.message);
        let pos = buggy_counts.entry((w, r.message.index)).or_insert(0);
        buggy_vals.insert((w, r.message.index, *pos), r.value);
        *pos += 1;
    }

    let mut verdicts: HashMap<Witness, Verdict> = HashMap::new();
    for (&(w, idx), &count) in &golden_counts {
        let buggy_count = buggy_counts.get(&(w, idx)).copied().unwrap_or(0);
        let verdict = if buggy_count < count {
            Verdict::Absent
        } else {
            let mismatch =
                (0..count).any(|p| golden_vals.get(&(w, idx, p)) != buggy_vals.get(&(w, idx, p)));
            if mismatch {
                Verdict::Corrupt
            } else {
                Verdict::Healthy
            }
        };
        // Merge across instances of the same flow kind: the worst verdict
        // wins (Absent > Corrupt > Occurred > Healthy).
        let entry = verdicts.entry(w).or_insert(Verdict::Healthy);
        *entry = worst(*entry, verdict);
    }
    let mut evidence = Evidence { verdicts };
    infer_flow_order(model, scenario, &mut evidence);
    evidence
}

fn worst(a: Verdict, b: Verdict) -> Verdict {
    use Verdict::{Absent, Corrupt, Healthy, Occurred};
    match (a, b) {
        (Absent, _) | (_, Absent) => Absent,
        (Corrupt, _) | (_, Corrupt) => Corrupt,
        (Occurred, _) | (_, Occurred) => Occurred,
        _ => Healthy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_bug::{bug_catalog, BugInterceptor};
    use pstrace_soc::{capture, SimConfig, Simulator, TraceBufferConfig};

    fn full_selection(model: &SocModel, scenario: &UsageScenario) -> TraceBufferConfig {
        TraceBufferConfig::messages_only(&scenario.messages(model))
    }

    #[test]
    fn golden_vs_golden_is_all_healthy() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2));
        let out = sim.run();
        let cfg = full_selection(&model, &scenario);
        let trace = capture(&model, &out, &cfg);
        let ev = distill(&model, &scenario, &trace, &trace);
        assert!(!ev.is_empty());
        for (_, v) in ev.iter() {
            assert_eq!(v, Verdict::Healthy);
        }
    }

    #[test]
    fn dropped_interrupt_shows_absent_mondo_chain() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let bugs = bug_catalog(&model);
        let drop = bugs.iter().find(|b| b.id == 5).unwrap().clone();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![drop]));
        let cfg = full_selection(&model, &scenario);
        let ev = distill(
            &model,
            &scenario,
            &capture(&model, &golden, &cfg),
            &capture(&model, &buggy, &cfg),
        );
        let c = model.catalog();
        let w = |name: &str| Witness::new(FlowKind::Mondo, c.get(name).unwrap());
        assert_eq!(ev.verdict(w("reqtot")), Verdict::Absent);
        assert_eq!(ev.verdict(w("grant")), Verdict::Absent);
        assert_eq!(ev.verdict(w("dmusiidata")), Verdict::Absent);
        // The PIOR flow's siincu is healthy even though Mondo's is absent.
        let pior_siincu = Witness::new(FlowKind::PioRead, c.get("siincu").unwrap());
        assert_eq!(ev.verdict(pior_siincu), Verdict::Healthy);
    }

    #[test]
    fn corruption_shows_corrupt_verdict() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario2();
        let bugs = bug_catalog(&model);
        let bug8 = bugs.iter().find(|b| b.id == 8).unwrap().clone();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bug8]));
        let cfg = full_selection(&model, &scenario);
        let ev = distill(
            &model,
            &scenario,
            &capture(&model, &golden, &cfg),
            &capture(&model, &buggy, &cfg),
        );
        let ack = model.catalog().get("mondoacknack").unwrap();
        assert_eq!(
            ev.verdict(Witness::new(FlowKind::Mondo, ack)),
            Verdict::Corrupt
        );
    }

    #[test]
    fn untraced_messages_are_unobserved() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2));
        let out = sim.run();
        let cfg = TraceBufferConfig::default();
        let trace = capture(&model, &out, &cfg);
        let ev = distill(&model, &scenario, &trace, &trace);
        let reqtot = model.catalog().get("reqtot").unwrap();
        assert_eq!(
            ev.verdict(Witness::new(FlowKind::Mondo, reqtot)),
            Verdict::Unobserved
        );
    }

    #[test]
    fn weaken_absence_downgrades_only_absent() {
        let model = SocModel::t2();
        let c = model.catalog();
        let mut ev = Evidence::default();
        let w1 = Witness::new(FlowKind::Mondo, c.get("reqtot").unwrap());
        let w2 = Witness::new(FlowKind::Mondo, c.get("grant").unwrap());
        let w3 = Witness::new(FlowKind::Mondo, c.get("dmusiidata").unwrap());
        ev.set(w1, Verdict::Absent);
        ev.set(w2, Verdict::Corrupt);
        ev.set(w3, Verdict::Healthy);
        ev.weaken_absence();
        assert_eq!(ev.verdict(w1), Verdict::Unobserved);
        assert_eq!(ev.verdict(w2), Verdict::Corrupt);
        assert_eq!(ev.verdict(w3), Verdict::Healthy);
    }

    #[test]
    fn index_to_kind_follows_declaration_order() {
        let scenario = UsageScenario::scenario3();
        let map = index_to_kind(&scenario);
        assert_eq!(map[&FlowIndex(1)], FlowKind::PioRead);
        assert_eq!(map[&FlowIndex(2)], FlowKind::PioWrite);
        assert_eq!(map[&FlowIndex(3)], FlowKind::NcuUpstream);
        assert_eq!(map[&FlowIndex(4)], FlowKind::NcuDownstream);
    }
}
