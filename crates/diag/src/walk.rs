//! The backtracking investigation walk (§5.6, Figure 6).
//!
//! Debugging starts at the traced message where the bug symptom is
//! observed and backtracks through earlier traced messages. Every
//! investigated message adds evidence: healthy observations exonerate
//! their `⟨source IP, destination IP⟩` link and prune predicted causes;
//! corrupt or missing observations incriminate theirs. The walk records,
//! per investigated message, how many candidate legal IP pairs and
//! candidate root causes remain — the two series plotted in Figure 6.

use std::collections::HashMap;

use pstrace_flow::FlowIndex;
use pstrace_soc::{CapturedTrace, IpPair, SocModel, UsageScenario};

use crate::causes::{evaluate_causes, CauseReport, RootCause};
use crate::evidence::{index_to_kind, infer_flow_order, Evidence, Verdict, Witness};

/// One step of the investigation walk.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkStep {
    /// 1-based step number.
    pub step: usize,
    /// The witness examined at this step.
    pub witness: Witness,
    /// The verdict this step contributed.
    pub verdict: Verdict,
    /// The IP pair of the investigated message.
    pub pair: Option<IpPair>,
    /// Candidate legal IP pairs still under suspicion after this step.
    pub pairs_remaining: usize,
    /// Root causes still plausible after this step.
    pub causes_remaining: usize,
}

/// The complete investigation of one buggy run.
#[derive(Debug, Clone)]
pub struct InvestigationWalk {
    /// Per-message investigation steps, in investigation order.
    pub steps: Vec<WalkStep>,
    /// All legal IP pairs of the scenario (§5.6's denominator).
    pub legal_pairs: Vec<IpPair>,
    /// Distinct pairs actually touched by investigated messages.
    pub pairs_investigated: Vec<IpPair>,
    /// Cause evaluation after all evidence is in.
    pub final_causes: CauseReport,
}

impl InvestigationWalk {
    /// Number of traced messages investigated (Table 6, column 5).
    #[must_use]
    pub fn messages_investigated(&self) -> usize {
        self.steps.len()
    }

    /// The Figure 6(a) series: cumulative eliminated IP pairs per step.
    #[must_use]
    pub fn pair_elimination_series(&self) -> Vec<(usize, usize)> {
        let total = self.legal_pairs.len();
        self.steps
            .iter()
            .map(|s| (s.step, total - s.pairs_remaining))
            .collect()
    }

    /// The Figure 6(b) series: cumulative eliminated root causes per step.
    #[must_use]
    pub fn cause_elimination_series(&self) -> Vec<(usize, usize)> {
        let total = self.final_causes.entries.len();
        self.steps
            .iter()
            .map(|s| (s.step, total - s.causes_remaining))
            .collect()
    }
}

fn worst(a: Verdict, b: Verdict) -> Verdict {
    use Verdict::{Absent, Corrupt, Healthy, Occurred, Unobserved};
    match (a, b) {
        (Absent, _) | (_, Absent) => Absent,
        (Corrupt, _) | (_, Corrupt) => Corrupt,
        (Occurred, _) | (_, Occurred) => Occurred,
        (Healthy, _) | (_, Healthy) => Healthy,
        (Unobserved, Unobserved) => Unobserved,
    }
}

/// Runs the backtracking investigation over a golden/buggy capture pair.
///
/// The walk starts at the symptom — the last deviating record, or the end
/// of the trace for hangs — proceeds backwards through the captured
/// records, and finally checks the expected-but-absent messages (the
/// paper's "absence of trace message X implies…" reasoning, §5.7).
#[must_use]
pub fn investigate(
    model: &SocModel,
    scenario: &UsageScenario,
    golden: &CapturedTrace,
    buggy: &CapturedTrace,
    causes: &[RootCause],
) -> InvestigationWalk {
    let kinds = index_to_kind(scenario);
    let legal_pairs = model.legal_ip_pairs(&scenario.messages(model));

    // Organize golden records per (witness, instance) value sequences.
    let mut golden_vals: HashMap<(Witness, FlowIndex), Vec<u64>> = HashMap::new();
    for r in golden.records() {
        if let Some(&kind) = kinds.get(&r.message.index) {
            golden_vals
                .entry((Witness::new(kind, r.message.message), r.message.index))
                .or_default()
                .push(r.value);
        }
    }

    // Per-record verdicts for the buggy capture, in capture order.
    let mut buggy_pos: HashMap<(Witness, FlowIndex), usize> = HashMap::new();
    let mut record_verdicts: Vec<(Witness, Verdict)> = Vec::new();
    let mut buggy_counts: HashMap<(Witness, FlowIndex), usize> = HashMap::new();
    for r in buggy.records() {
        let Some(&kind) = kinds.get(&r.message.index) else {
            continue;
        };
        let w = Witness::new(kind, r.message.message);
        let key = (w, r.message.index);
        let pos = {
            let p = buggy_pos.entry(key).or_insert(0);
            let pos = *p;
            *p += 1;
            pos
        };
        *buggy_counts.entry(key).or_insert(0) += 1;
        let verdict = match golden_vals.get(&key).and_then(|v| v.get(pos)) {
            Some(&expected) if expected == r.value => Verdict::Healthy,
            Some(_) => Verdict::Corrupt,
            // More occurrences than golden: treat as corrupt behaviour.
            None => Verdict::Corrupt,
        };
        record_verdicts.push((w, verdict));
    }

    // Investigation order: backwards from the symptom (last deviating
    // record, else the last record), then absence checks for every
    // expected-but-missing (witness, instance).
    let symptom_at = record_verdicts
        .iter()
        .rposition(|(_, v)| *v != Verdict::Healthy)
        .unwrap_or(record_verdicts.len().saturating_sub(1));
    let mut order: Vec<(Witness, Verdict)> = Vec::new();
    if !record_verdicts.is_empty() {
        for i in (0..=symptom_at).rev() {
            order.push(record_verdicts[i]);
        }
        for item in record_verdicts.iter().skip(symptom_at + 1) {
            order.push(*item);
        }
    }
    let mut absent: Vec<(Witness, FlowIndex)> = golden_vals
        .iter()
        .filter(|(key, vals)| buggy_counts.get(key).copied().unwrap_or(0) < vals.len())
        .map(|(key, _)| *key)
        .collect();
    absent.sort_by_key(|(w, idx)| (idx.0, w.message));
    for (w, _) in absent {
        order.push((w, Verdict::Absent));
    }

    // Replay the order, accumulating evidence and recomputing candidates.
    // Flow-order inference runs on a scratch copy at every step so that
    // inferred verdicts never mask later direct observations.
    let mut evidence = Evidence::default();
    let mut steps = Vec::new();
    let mut pairs_suspect: Vec<IpPair> = legal_pairs.clone();
    let mut pairs_investigated: Vec<IpPair> = Vec::new();
    for (i, (witness, verdict)) in order.iter().enumerate() {
        let merged = worst(evidence.verdict(*witness), *verdict);
        evidence.set(*witness, merged);
        let pair = model.endpoints(witness.message);
        if let Some(p) = pair {
            if !pairs_investigated.contains(&p) {
                pairs_investigated.push(p);
            }
            // A healthy observation exonerates its link.
            if merged == Verdict::Healthy {
                pairs_suspect.retain(|&q| q != p);
            }
        }
        let mut inferred = evidence.clone();
        infer_flow_order(model, scenario, &mut inferred);
        let report = evaluate_causes(causes, &inferred);
        steps.push(WalkStep {
            step: i + 1,
            witness: *witness,
            verdict: *verdict,
            pair,
            pairs_remaining: pairs_suspect.len(),
            causes_remaining: report.plausible().len(),
        });
    }

    let mut inferred = evidence.clone();
    infer_flow_order(model, scenario, &mut inferred);
    let final_causes = evaluate_causes(causes, &inferred);
    InvestigationWalk {
        steps,
        legal_pairs,
        pairs_investigated,
        final_causes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::scenario_causes;
    use pstrace_bug::{bug_catalog, case_studies, BugInterceptor};
    use pstrace_soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig};

    fn walk_for_case(number: usize) -> (SocModel, InvestigationWalk) {
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let cs = &case_studies()[number - 1];
        let scenario = cs.scenario.clone();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&bugs)));
        let cfg = TraceBufferConfig::messages_only(&scenario.messages(&model));
        let g = capture(&model, &golden, &cfg);
        let b = capture(&model, &buggy, &cfg);
        let causes = scenario_causes(&model, &scenario);
        let walk = investigate(&model, &scenario, &g, &b, &causes);
        (model, walk)
    }

    #[test]
    fn eliminations_are_monotone_nondecreasing() {
        for case in 1..=5 {
            let (_, walk) = walk_for_case(case);
            assert!(!walk.steps.is_empty(), "case {case}");
            let pairs = walk.pair_elimination_series();
            let causes = walk.cause_elimination_series();
            for w in pairs.windows(2) {
                assert!(w[0].1 <= w[1].1, "case {case}: pair eliminations regress");
            }
            for w in causes.windows(2) {
                assert!(w[0].1 <= w[1].1, "case {case}: cause eliminations regress");
            }
        }
    }

    #[test]
    fn every_step_contributes_to_the_debug_process() {
        // Figure 6's headline: with more traced messages, more candidates
        // are progressively eliminated — by the end a strict majority of
        // pairs and causes is gone (full observability here).
        for case in 1..=5 {
            let (_, walk) = walk_for_case(case);
            let last = walk.steps.last().unwrap();
            assert!(
                last.causes_remaining * 2 <= walk.final_causes.entries.len(),
                "case {case}: too many causes remain"
            );
            assert!(
                last.pairs_remaining < walk.legal_pairs.len(),
                "case {case}: no pair eliminated"
            );
        }
    }

    #[test]
    fn investigated_pairs_are_a_subset_of_legal_pairs() {
        for case in 1..=5 {
            let (_, walk) = walk_for_case(case);
            for p in &walk.pairs_investigated {
                assert!(walk.legal_pairs.contains(p), "case {case}");
            }
            assert!(!walk.pairs_investigated.is_empty());
        }
    }

    #[test]
    fn hang_case_investigates_absent_messages() {
        // Case study 1 drops reqtot: the walk must include Absent steps
        // for the never-seen Mondo messages.
        let (_, walk) = walk_for_case(1);
        assert!(
            walk.steps.iter().any(|s| s.verdict == Verdict::Absent),
            "absence reasoning missing"
        );
    }

    #[test]
    fn final_walk_causes_match_batch_evaluation() {
        // The incremental walk must converge to the same cause set as the
        // one-shot distillation of evidence.rs.
        let model = SocModel::t2();
        let bugs = bug_catalog(&model);
        let cs = &case_studies()[1];
        let scenario = cs.scenario.clone();
        let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(cs.seed));
        let golden = sim.run();
        let buggy = sim.run_with(&mut BugInterceptor::new(&model, cs.bugs(&bugs)));
        let cfg = TraceBufferConfig::messages_only(&scenario.messages(&model));
        let g = capture(&model, &golden, &cfg);
        let b = capture(&model, &buggy, &cfg);
        let causes = scenario_causes(&model, &scenario);
        let walk = investigate(&model, &scenario, &g, &b, &causes);
        let batch = crate::evidence::distill(&model, &scenario, &g, &b);
        let batch_report = evaluate_causes(&causes, &batch);
        assert_eq!(
            walk.final_causes.plausible().len(),
            batch_report.plausible().len()
        );
    }
}
