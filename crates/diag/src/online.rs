//! Online path localization: fold one observed record at a time.
//!
//! The batch DP in [`localize`](crate::localize) recomputes the whole
//! `(product state × observation position)` table for every new
//! observation — diagnosing a growing trace of `N` records this way costs
//! `O(N² · edges)`. [`OnlineLocalizer`] keeps only the *frontier* of that
//! table — one dense column of path mass per product state — and advances
//! it by one column per record, so a live stream is localized in
//! `O(edges)` amortized per message while staying bit-identical to
//! [`consistent_paths`] on every prefix of the observation.
//!
//! How each [`MatchMode`] is incrementalized:
//!
//! * **Exact** — the column is *start-anchored*: `F[s]` counts walks from
//!   an initial state to `s` whose projection onto the selected set is
//!   exactly the observation so far. Appending observation `o` rebuilds
//!   the column in one topological sweep: selected edges matching `o`
//!   consume the previous column, unselected edges propagate within the
//!   new one. The count is the column mass over stop states.
//! * **Prefix** — same column; the count decomposes each matching path at
//!   the edge consuming the newest observation, weighting the selected
//!   inflow of every state by the precomputed unrestricted path count from
//!   that state to a stop state.
//! * **Suffix** — the column is *end-anchored*: `E[s]` counts walks from
//!   an initial state to `s` whose projection **ends with** the
//!   observation so far. It is seeded with the unrestricted walk counts
//!   (every projection ends with the empty observation) and advances with
//!   the same sweep; appending to the observation extends the matched
//!   suffix at the walk's end, so no previously folded record is ever
//!   revisited. The count is again the mass over stop states.
//! * **Substring** — counting *paths* (not occurrences) that contain the
//!   observation needs leftmost-occurrence disambiguation, which no fixed
//!   per-state frontier survives when the pattern grows. The localizer
//!   instead exploits monotonicity: the consistent set only shrinks as
//!   the observation grows, so once the count reaches zero every later
//!   push is `O(1)`; while it is nonzero the batch automaton DP is re-run
//!   on the stored observation, whose useful length is bounded by the
//!   longest projection any path can produce — a property of the flow,
//!   not of the trace. Amortized over a long stream the per-message cost
//!   is `O(edges)`. The end-anchored column is still maintained as the
//!   live occurrence frontier.
//!
//! Counts use the same saturating `u128` arithmetic as the batch DP;
//! prefix equality is exact whenever no intermediate count saturates
//! (astronomically far away for every modeled flow).
//!
//! # Checkpoint and resync
//!
//! On hostile silicon the observation itself can be corrupted: a damage
//! burst (dropped buffer region, storm of flipped bits) can push records
//! that no execution produces, after which the frontier is empty and —
//! because every mode is monotone — stays empty forever, even though the
//! post-burst stream is perfectly good. Two escape hatches exist for
//! that:
//!
//! * [`OnlineLocalizer::checkpoint`] / [`OnlineLocalizer::restore`]
//!   snapshot and reinstate the full DP state, so a consumer can roll
//!   back to the last known-good chunk boundary;
//! * [`OnlineLocalizer::resync`] abandons the poisoned observation
//!   entirely: the DP re-seeds as if the stream restarted, the
//!   localization collapses to "unknown since record N" (reported via
//!   [`OnlineLocalizer::unknown_since`]) and subsequent pushes narrow it
//!   again. Counts after a resync are relative to the post-resync
//!   observation — a designed degradation, visible in the report, instead
//!   of a permanently dead frontier.

use pstrace_flow::{path_count, topological_order, IndexedMessage, InterleavedFlow, MessageId};
use pstrace_obs::Registry;

use crate::localize::{consistent_paths, Localization, MatchMode};

/// One dense DP column: path mass per product state, in state-index
/// order. This is the object [`OnlineLocalizer`] advances per record;
/// it is exposed so live consumers (dashboards, the stream daemon) can
/// watch the localization narrow without reading the counts alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    values: Vec<u128>,
}

impl Frontier {
    /// The per-state mass, indexed by dense product-state index.
    #[must_use]
    pub fn values(&self) -> &[u128] {
        &self.values
    }

    /// Number of states carrying nonzero mass — the "width" of the
    /// frontier. A shrinking support is the live signature of an
    /// observation pinning down the execution.
    #[must_use]
    pub fn support(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    /// Total mass across all states (saturating).
    #[must_use]
    pub fn mass(&self) -> u128 {
        self.values.iter().fold(0u128, |a, &v| a.saturating_add(v))
    }
}

/// Incoming-edge program of one product state, pre-resolved at
/// construction so a push never touches the flow again.
#[derive(Debug, Clone, Default)]
struct Inflow {
    /// Sources of unselected incoming edges (propagate within a column).
    unselected: Vec<u32>,
    /// `(label, source)` of selected incoming edges (consume the
    /// previous column when the label matches the pushed observation).
    selected: Vec<(IndexedMessage, u32)>,
}

/// Streaming counterpart of [`localize`](crate::localize): construct it
/// with the interleaving, the selected message set and a [`MatchMode`],
/// then [`push`](OnlineLocalizer::push) each observed record as it
/// arrives. After `N` pushes, [`consistent`](OnlineLocalizer::consistent)
/// equals `consistent_paths(flow, &observed[..N], selected, mode)`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pstrace_flow::{examples::cache_coherence, instantiate, FlowIndex, IndexedMessage, InterleavedFlow};
/// use pstrace_diag::{consistent_paths, MatchMode, OnlineLocalizer};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let (flow, catalog) = cache_coherence();
/// let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
/// let req = catalog.get("ReqE").unwrap();
/// let gnt = catalog.get("GntE").unwrap();
/// let selected = [req, gnt];
/// let observed = [
///     IndexedMessage::new(req, FlowIndex(1)),
///     IndexedMessage::new(gnt, FlowIndex(1)),
///     IndexedMessage::new(req, FlowIndex(2)),
/// ];
/// let mut online = OnlineLocalizer::new(&u, &selected, MatchMode::Prefix);
/// for (n, &m) in observed.iter().enumerate() {
///     online.push(m);
///     assert_eq!(
///         online.consistent(),
///         consistent_paths(&u, &observed[..=n], &selected, MatchMode::Prefix),
///     );
/// }
/// assert_eq!(online.consistent(), 1); // pinned down from 6 interleavings
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineLocalizer {
    mode: MatchMode,
    /// Forward topological order of the product states.
    topo: Vec<u32>,
    /// Per-state incoming-edge program (indexed by state).
    inflow: Vec<Inflow>,
    /// Initial-state indicator per state.
    is_initial: Vec<bool>,
    /// Stop states (dense indices).
    stops: Vec<u32>,
    /// Unrestricted path count from each state to a stop state
    /// (the Prefix-mode continuation weights).
    to_stop: Vec<u128>,
    /// The live DP column.
    column: Frontier,
    /// Scratch buffer for the next column (kept to avoid reallocation).
    scratch: Vec<u128>,
    consistent: u128,
    total: u128,
    pushed: usize,
    /// Substring mode keeps the observation and a flow clone for the
    /// bounded batch recompute; empty/`None` in the other modes.
    observed: Vec<IndexedMessage>,
    selected: Vec<MessageId>,
    flow: Option<Box<InterleavedFlow>>,
    /// Times [`resync`](OnlineLocalizer::resync) was called.
    resyncs: usize,
    /// Records pushed before the most recent resync, when any.
    unknown_since: Option<usize>,
}

/// A snapshot of an [`OnlineLocalizer`]'s mutable DP state, produced by
/// [`OnlineLocalizer::checkpoint`] and reinstated by
/// [`OnlineLocalizer::restore`]. The immutable graph program (topological
/// order, inflow lists, continuation counts) is *not* duplicated — a
/// checkpoint is one dense column plus counters, cheap enough to take at
/// every chunk boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalizerCheckpoint {
    column: Vec<u128>,
    consistent: u128,
    pushed: usize,
    observed: Vec<IndexedMessage>,
    resyncs: usize,
    unknown_since: Option<usize>,
}

impl OnlineLocalizer {
    /// Builds the localizer for `flow` under the selected message set and
    /// match mode. Construction runs two `O(states + edges)` sweeps; no
    /// reference to `flow` is kept except in [`MatchMode::Substring`]
    /// (which clones it for its bounded recompute).
    #[must_use]
    pub fn new(flow: &InterleavedFlow, selected: &[MessageId], mode: MatchMode) -> Self {
        let n = flow.state_count();
        let topo: Vec<u32> = topological_order(flow)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        let mut inflow = vec![Inflow::default(); n];
        for s in flow.states() {
            let inf = &mut inflow[s.index()];
            for e in flow.edges_into(s) {
                if selected.contains(&e.message.message) {
                    inf.selected.push((e.message, e.from.index() as u32));
                } else {
                    inf.unselected.push(e.from.index() as u32);
                }
            }
        }
        let mut is_initial = vec![false; n];
        for &s in flow.initial_states() {
            is_initial[s.index()] = true;
        }
        let stops: Vec<u32> = flow
            .stop_states()
            .iter()
            .map(|s| s.index() as u32)
            .collect();
        let mut is_stop = vec![false; n];
        for &s in &stops {
            is_stop[s as usize] = true;
        }

        // Unrestricted continuation counts: paths from s to a stop state.
        let mut to_stop = vec![0u128; n];
        for &u in topo.iter().rev() {
            let mut acc = u128::from(is_stop[u as usize]);
            let state = flow.state_at(u as usize);
            for e in flow.edges_from(state) {
                acc = acc.saturating_add(to_stop[e.to.index()]);
            }
            to_stop[u as usize] = acc;
        }

        let total = path_count(flow);
        let mut this = OnlineLocalizer {
            mode,
            topo,
            inflow,
            is_initial,
            stops,
            to_stop,
            column: Frontier { values: vec![0; n] },
            scratch: vec![0; n],
            consistent: 0,
            total,
            pushed: 0,
            observed: Vec::new(),
            selected: selected.to_vec(),
            flow: (mode == MatchMode::Substring).then(|| Box::new(flow.clone())),
            resyncs: 0,
            unknown_since: None,
        };
        this.seed();
        this
    }

    /// Seeds the column and count for the empty observation.
    fn seed(&mut self) {
        match self.mode {
            // Start-anchored: walks whose projection is exactly empty —
            // initial states closed over unselected edges only.
            MatchMode::Exact | MatchMode::Prefix => {
                for &u in &self.topo {
                    let s = u as usize;
                    let mut acc = u128::from(self.is_initial[s]);
                    for &src in &self.inflow[s].unselected {
                        acc = acc.saturating_add(self.column.values[src as usize]);
                    }
                    self.column.values[s] = acc;
                }
            }
            // End-anchored: every projection ends with the empty
            // observation — unrestricted walk counts from the roots.
            MatchMode::Suffix | MatchMode::Substring => {
                for &u in &self.topo {
                    let s = u as usize;
                    let mut acc = u128::from(self.is_initial[s]);
                    for &src in &self.inflow[s].unselected {
                        acc = acc.saturating_add(self.column.values[src as usize]);
                    }
                    for &(_, src) in &self.inflow[s].selected {
                        acc = acc.saturating_add(self.column.values[src as usize]);
                    }
                    self.column.values[s] = acc;
                }
            }
        }
        self.consistent = match self.mode {
            MatchMode::Exact => self.stop_mass(),
            // Every path starts with / ends with / contains ε.
            MatchMode::Prefix | MatchMode::Suffix | MatchMode::Substring => self.total,
        };
    }

    /// Mass of the current column over the stop states.
    fn stop_mass(&self) -> u128 {
        self.stops.iter().fold(0u128, |a, &s| {
            a.saturating_add(self.column.values[s as usize])
        })
    }

    /// Advances the column by one observation in a single topological
    /// sweep. Returns the Prefix-mode decomposition sum: the selected
    /// inflow of each state weighted by its unrestricted continuation.
    fn advance(&mut self, m: IndexedMessage) -> u128 {
        let mut dot = 0u128;
        for &u in &self.topo {
            let s = u as usize;
            let mut matched = 0u128;
            for &(label, src) in &self.inflow[s].selected {
                if label == m {
                    matched = matched.saturating_add(self.column.values[src as usize]);
                }
            }
            dot = dot.saturating_add(matched.saturating_mul(self.to_stop[s]));
            let mut acc = matched;
            for &src in &self.inflow[s].unselected {
                acc = acc.saturating_add(self.scratch[src as usize]);
            }
            self.scratch[s] = acc;
        }
        std::mem::swap(&mut self.column.values, &mut self.scratch);
        dot
    }

    /// Folds one observed record into the localization.
    pub fn push(&mut self, m: IndexedMessage) {
        match self.mode {
            MatchMode::Exact => {
                self.advance(m);
                self.consistent = self.stop_mass();
            }
            MatchMode::Prefix => {
                self.consistent = self.advance(m);
            }
            MatchMode::Suffix => {
                self.advance(m);
                self.consistent = self.stop_mass();
            }
            MatchMode::Substring => {
                self.advance(m);
                self.observed.push(m);
                // Monotone: once no path contains the observation, no
                // extension can match — every further push is O(1).
                if self.consistent != 0 {
                    let flow = self.flow.as_ref().expect("substring mode keeps the flow");
                    self.consistent =
                        consistent_paths(flow, &self.observed, &self.selected, self.mode);
                }
            }
        }
        self.pushed += 1;
    }

    /// Folds a sequence of records in order.
    pub fn push_all<I: IntoIterator<Item = IndexedMessage>>(&mut self, records: I) {
        for m in records {
            self.push(m);
        }
    }

    /// Paths consistent with everything pushed so far — bit-identical to
    /// [`consistent_paths`] over the same prefix.
    #[must_use]
    pub fn consistent(&self) -> u128 {
        self.consistent
    }

    /// All root-to-stop paths of the interleaving.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The current [`Localization`] (consistent / total).
    #[must_use]
    pub fn localization(&self) -> Localization {
        Localization {
            consistent: self.consistent,
            total: self.total,
        }
    }

    /// Records folded in so far.
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// The configured match mode.
    #[must_use]
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// The live DP column.
    #[must_use]
    pub fn frontier(&self) -> &Frontier {
        &self.column
    }

    /// Snapshots the mutable DP state (column, counts, stored
    /// observation). Restoring the checkpoint later rolls the localizer
    /// back to exactly this point; the immutable graph program is shared,
    /// so a checkpoint costs one column clone.
    #[must_use]
    pub fn checkpoint(&self) -> LocalizerCheckpoint {
        LocalizerCheckpoint {
            column: self.column.values.clone(),
            consistent: self.consistent,
            pushed: self.pushed,
            observed: self.observed.clone(),
            resyncs: self.resyncs,
            unknown_since: self.unknown_since,
        }
    }

    /// Rolls the localizer back to a state taken with
    /// [`checkpoint`](OnlineLocalizer::checkpoint) on this localizer (or
    /// one constructed with identical `(flow, selected, mode)`).
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's column width disagrees with this
    /// localizer's state count — i.e. it was taken from a localizer over
    /// a different flow.
    pub fn restore(&mut self, checkpoint: &LocalizerCheckpoint) {
        assert_eq!(
            checkpoint.column.len(),
            self.column.values.len(),
            "checkpoint belongs to a different flow"
        );
        self.column.values.clone_from(&checkpoint.column);
        self.consistent = checkpoint.consistent;
        self.pushed = checkpoint.pushed;
        self.observed.clone_from(&checkpoint.observed);
        self.resyncs = checkpoint.resyncs;
        self.unknown_since = checkpoint.unknown_since;
    }

    /// Abandons the observation folded in so far and re-seeds the DP as
    /// if the stream restarted here: the count collapses back to the
    /// empty-observation value ("unknown since record
    /// [`unknown_since`](OnlineLocalizer::unknown_since)") and subsequent
    /// pushes narrow it again — relative to the post-resync observation
    /// only. This is the designed degradation path for damage bursts
    /// that would otherwise leave the monotone frontier empty forever.
    ///
    /// [`pushed`](OnlineLocalizer::pushed) keeps counting across resyncs.
    pub fn resync(&mut self) {
        self.column.values.iter_mut().for_each(|v| *v = 0);
        self.observed.clear();
        self.seed();
        self.resyncs += 1;
        self.unknown_since = Some(self.pushed);
    }

    /// Times [`resync`](OnlineLocalizer::resync) was called.
    #[must_use]
    pub fn resyncs(&self) -> usize {
        self.resyncs
    }

    /// Records pushed before the most recent resync: the point since
    /// which the pre-gap execution is unknown. `None` while no resync
    /// has happened.
    #[must_use]
    pub fn unknown_since(&self) -> Option<usize> {
        self.unknown_since
    }

    /// Publishes the localizer's live state into `obs` as gauges:
    /// `pstrace_localizer_frontier_support` (states with nonzero mass),
    /// `pstrace_localizer_consistent_paths` and
    /// `pstrace_localizer_records_pushed` (counts saturate at `i64::MAX`).
    /// Stream sessions call this after each chunk so dashboards can watch
    /// the localization narrow.
    pub fn record_frontier(&self, obs: &Registry) {
        let clamp = |v: u128| i64::try_from(v).unwrap_or(i64::MAX);
        obs.gauge("pstrace_localizer_frontier_support")
            .set(i64::try_from(self.column.support()).unwrap_or(i64::MAX));
        obs.gauge("pstrace_localizer_consistent_paths")
            .set(clamp(self.consistent));
        obs.gauge("pstrace_localizer_records_pushed")
            .set(i64::try_from(self.pushed).unwrap_or(i64::MAX));
        obs.gauge("pstrace_localizer_resyncs")
            .set(i64::try_from(self.resyncs).unwrap_or(i64::MAX));
    }

    /// Zeroes the gauges [`OnlineLocalizer::record_frontier`] publishes.
    /// A session that ended has no live frontier; leaving its last state
    /// behind would read as current — and, summed across a sharded
    /// daemon's per-shard registries, would fabricate load that is not
    /// there.
    pub fn clear_frontier(obs: &Registry) {
        for name in [
            "pstrace_localizer_frontier_support",
            "pstrace_localizer_consistent_paths",
            "pstrace_localizer_records_pushed",
            "pstrace_localizer_resyncs",
        ] {
            obs.gauge(name).set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{
        examples::{cache_coherence, diamond},
        executions, instantiate, FlowIndex,
    };
    use std::sync::Arc;

    fn product(instances: u32) -> InterleavedFlow {
        let (flow, _) = cache_coherence();
        InterleavedFlow::build(&instantiate(&Arc::new(flow), instances)).unwrap()
    }

    const MODES: [MatchMode; 4] = [
        MatchMode::Exact,
        MatchMode::Prefix,
        MatchMode::Suffix,
        MatchMode::Substring,
    ];

    #[test]
    fn empty_observation_matches_batch_in_every_mode() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        for mode in MODES {
            let online = OnlineLocalizer::new(&u, &selected, mode);
            assert_eq!(
                online.consistent(),
                consistent_paths(&u, &[], &selected, mode),
                "{mode:?}"
            );
            assert_eq!(online.total(), path_count(&u));
            assert_eq!(online.pushed(), 0);
        }
    }

    #[test]
    fn record_frontier_publishes_live_gauges() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let exec = executions(&u).next().expect("the product has executions");
        let observed = exec.project(&selected);
        let mut online = OnlineLocalizer::new(&u, &selected, MatchMode::Exact);
        let obs = Registry::new();
        online.record_frontier(&obs);
        assert_eq!(obs.gauge("pstrace_localizer_records_pushed").get(), 0);
        assert!(obs.gauge("pstrace_localizer_frontier_support").get() > 0);
        online.push_all(observed.iter().copied());
        online.record_frontier(&obs);
        assert_eq!(
            obs.gauge("pstrace_localizer_records_pushed").get(),
            observed.len() as i64
        );
        assert_eq!(
            obs.gauge("pstrace_localizer_consistent_paths").get() as u128,
            online.consistent()
        );
        assert_eq!(
            obs.gauge("pstrace_localizer_frontier_support").get() as usize,
            online.frontier().support()
        );
    }

    #[test]
    fn every_prefix_of_every_execution_matches_batch() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        for exec in executions(&u) {
            let observed = exec.project(&selected);
            for mode in MODES {
                let mut online = OnlineLocalizer::new(&u, &selected, mode);
                for (n, &m) in observed.iter().enumerate() {
                    online.push(m);
                    let batch = consistent_paths(&u, &observed[..=n], &selected, mode);
                    assert_eq!(online.consistent(), batch, "{mode:?} after {}", n + 1);
                    assert_eq!(online.pushed(), n + 1);
                }
            }
        }
    }

    #[test]
    fn branching_flows_match_batch_on_random_noise() {
        // Observations that are NOT projections of any execution (noise,
        // duplicates, unselected messages) must also track batch exactly.
        let (flow, _catalog) = diamond();
        let u = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2)).unwrap();
        let alphabet = u.message_alphabet();
        let selected = &alphabet[..alphabet.len() / 2];
        let ims = u.indexed_messages();
        // A deterministic pseudo-random walk over the indexed alphabet.
        let mut x = 0x9e3779b97f4a7c15u64;
        let noise: Vec<IndexedMessage> = (0..12)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ims[(x >> 33) as usize % ims.len()]
            })
            .collect();
        for mode in MODES {
            let mut online = OnlineLocalizer::new(&u, selected, mode);
            for (n, &m) in noise.iter().enumerate() {
                online.push(m);
                assert_eq!(
                    online.consistent(),
                    consistent_paths(&u, &noise[..=n], selected, mode),
                    "{mode:?} after {}",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn unselected_observation_kills_the_count() {
        let u = product(2);
        let catalog = u.catalog();
        let req = catalog.get("ReqE").unwrap();
        let ack = catalog.get("Ack").unwrap();
        for mode in MODES {
            let mut online = OnlineLocalizer::new(&u, &[req], mode);
            // `Ack` is not selected: no projection can ever contain it.
            online.push(IndexedMessage::new(ack, FlowIndex(1)));
            assert_eq!(online.consistent(), 0, "{mode:?}");
            online.push(IndexedMessage::new(req, FlowIndex(1)));
            assert_eq!(online.consistent(), 0, "{mode:?} stays dead");
        }
    }

    #[test]
    fn frontier_tracks_walks_consistent_with_the_observation() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        let mut online = OnlineLocalizer::new(&u, &selected, MatchMode::Prefix);
        // Empty observation, start-anchored: only the unselected closure
        // of the initial states carries mass (Init's edges are selected).
        assert_eq!(online.frontier().support(), 1);
        online.push(IndexedMessage::new(selected[0], FlowIndex(1)));
        online.push(IndexedMessage::new(selected[1], FlowIndex(1)));
        assert!(online.frontier().support() > 0);
        assert!(online.frontier().mass() >= 1);
        assert_eq!(online.frontier().values().len(), u.state_count());
        // An impossible continuation empties the frontier for good.
        online.push(IndexedMessage::new(selected[1], FlowIndex(1)));
        assert_eq!(online.frontier().support(), 0);
        assert_eq!(online.frontier().mass(), 0);
        assert_eq!(online.consistent(), 0);
    }

    #[test]
    fn three_instance_product_matches_batch() {
        let u = product(3);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap()];
        let exec = executions(&u).nth(5).unwrap();
        let observed = exec.project(&selected);
        for mode in MODES {
            let mut online = OnlineLocalizer::new(&u, &selected, mode);
            online.push_all(observed.iter().copied());
            assert_eq!(
                online.consistent(),
                consistent_paths(&u, &observed, &selected, mode),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn checkpoint_restore_rolls_back_exactly() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
        for mode in MODES {
            let exec = executions(&u).next().unwrap();
            let observed = exec.project(&selected);
            let mut online = OnlineLocalizer::new(&u, &selected, mode);
            online.push(observed[0]);
            let ckpt = online.checkpoint();
            let frozen = online.clone();
            for &m in &observed[1..] {
                online.push(m);
            }
            assert_ne!(online.consistent(), frozen.consistent(), "{mode:?}");
            online.restore(&ckpt);
            assert_eq!(online.consistent(), frozen.consistent(), "{mode:?}");
            assert_eq!(online.pushed(), 1);
            assert_eq!(online.frontier(), frozen.frontier());
            // The restored localizer keeps tracking batch exactly.
            for (n, &m) in observed.iter().enumerate().skip(1) {
                online.push(m);
                assert_eq!(
                    online.consistent(),
                    consistent_paths(&u, &observed[..=n], &selected, mode),
                    "{mode:?} after restore"
                );
            }
        }
    }

    #[test]
    fn resync_revives_a_dead_frontier_and_renarrows() {
        let u = product(2);
        let catalog = u.catalog();
        let req = catalog.get("ReqE").unwrap();
        let ack = catalog.get("Ack").unwrap();
        let selected = [req, catalog.get("GntE").unwrap()];
        let exec = executions(&u).next().unwrap();
        let observed = exec.project(&selected);
        for mode in MODES {
            let mut online = OnlineLocalizer::new(&u, &selected, mode);
            // An unselected observation kills the count in every mode.
            online.push(IndexedMessage::new(ack, FlowIndex(1)));
            assert_eq!(online.consistent(), 0, "{mode:?}");
            assert_eq!(online.resyncs(), 0);
            assert_eq!(online.unknown_since(), None);

            online.resync();
            assert_eq!(online.resyncs(), 1, "{mode:?}");
            assert_eq!(online.unknown_since(), Some(1));
            // The empty-observation count is back...
            assert_eq!(
                online.consistent(),
                consistent_paths(&u, &[], &selected, mode),
                "{mode:?} reseeded"
            );
            // ...and the post-resync observation narrows like a fresh
            // localizer fed only the post-gap records.
            for (n, &m) in observed.iter().enumerate() {
                online.push(m);
                assert_eq!(
                    online.consistent(),
                    consistent_paths(&u, &observed[..=n], &selected, mode),
                    "{mode:?} after resync push {}",
                    n + 1
                );
            }
            assert!(online.consistent() > 0, "{mode:?} re-narrowed, not dead");
            assert_eq!(
                online.pushed(),
                observed.len() + 1,
                "{mode:?} keeps counting"
            );
        }
    }

    #[test]
    fn resync_state_is_published_and_checkpointed() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("ReqE").unwrap()];
        let mut online = OnlineLocalizer::new(&u, &selected, MatchMode::Prefix);
        online.push(IndexedMessage::new(
            catalog.get("ReqE").unwrap(),
            FlowIndex(1),
        ));
        online.resync();
        let ckpt = online.checkpoint();
        online.resync();
        assert_eq!(online.resyncs(), 2);
        assert_eq!(online.unknown_since(), Some(1));
        online.restore(&ckpt);
        assert_eq!(online.resyncs(), 1);
        let obs = Registry::new();
        online.record_frontier(&obs);
        assert_eq!(obs.gauge("pstrace_localizer_resyncs").get(), 1);
    }

    #[test]
    fn localization_fraction_is_consistent_with_batch_localize() {
        let u = product(2);
        let catalog = u.catalog();
        let selected = [catalog.get("GntE").unwrap()];
        let exec = executions(&u).next().unwrap();
        let observed = exec.project(&selected);
        let mut online = OnlineLocalizer::new(&u, &selected, MatchMode::Exact);
        online.push_all(observed.iter().copied());
        let batch = crate::localize::localize(&u, &observed, &selected, MatchMode::Exact);
        assert_eq!(online.localization(), batch);
    }
}
