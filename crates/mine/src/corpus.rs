//! Corpus generation: turn usage-scenario simulations into execution
//! logs for mining.
//!
//! Mining needs *complete* observations: a selection-filtered capture
//! (the paper's width-constrained trace buffer) deliberately drops
//! messages and can never support recovery of a full flow DAG. The
//! corpus therefore captures **all** messages of the scenario's flows
//! with a trace-buffer body wide enough for every payload, optionally
//! pushing each capture through the real wire encode/decode path so the
//! corpus exercises the same frame machinery as production `.ptw` files.

use pstrace_flow::MessageId;
use pstrace_soc::wirecap::{encode_events, wire_schema};
use pstrace_soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};
use pstrace_wire::{decode_stream, WireError};

use crate::miner::Miner;
use crate::seq::ExecutionLog;

/// A full-visibility trace-buffer configuration for `scenario`: all
/// scenario messages, body wide enough for the widest payload set.
#[must_use]
pub fn full_capture_config(model: &SocModel, scenario: &UsageScenario) -> TraceBufferConfig {
    TraceBufferConfig::messages_only(&scenario.messages(model))
}

/// Total payload width of the scenario's message set — wire lanes are
/// laid out side by side, so the frame body must fit their sum for every
/// message to be traced in full.
#[must_use]
pub fn full_body_width(model: &SocModel, scenario: &UsageScenario) -> u32 {
    scenario
        .messages(model)
        .iter()
        .map(|&m| model.catalog().width(m))
        .sum::<u32>()
        .max(1)
}

/// Simulates `scenario` once per seed and returns the execution logs.
///
/// With `wire` set, every capture is encoded into wire frames and
/// decoded back before mining — the corpus then reflects exactly what a
/// `.ptw` consumer would see (including any skipped frames, returned as
/// the second tuple element).
pub fn scenario_executions(
    model: &SocModel,
    scenario: &UsageScenario,
    seeds: &[u64],
    wire: bool,
) -> Result<(Vec<ExecutionLog>, u64), WireError> {
    let config = full_capture_config(model, scenario);
    let mut logs = Vec::with_capacity(seeds.len());
    let mut skipped = 0u64;
    for &seed in seeds {
        let outcome = Simulator::new(model, scenario.clone(), SimConfig::with_seed(seed)).run();
        if wire {
            let schema = wire_schema(model, &config, full_body_width(model, scenario))?;
            let stream = encode_events(model.catalog(), &schema, &outcome.events, &config)?;
            let report = decode_stream(&schema, &stream.bytes, Some(stream.bit_len));
            skipped += report.damaged.len() as u64;
            logs.push(ExecutionLog::from_wire_records(&report.records));
        } else {
            let trace = capture(model, &outcome, &config);
            logs.push(ExecutionLog::from_trace(&trace));
        }
    }
    Ok((logs, skipped))
}

/// Builds a miner pre-loaded with `scenario` executions for each seed.
pub fn scenario_miner(
    model: &SocModel,
    scenario: &UsageScenario,
    seeds: &[u64],
    wire: bool,
    config: crate::miner::MiningConfig,
) -> Result<Miner, WireError> {
    let (logs, _skipped) = scenario_executions(model, scenario, seeds, wire)?;
    let mut miner = Miner::new(model.catalog().clone(), config);
    for log in logs {
        miner.push_log(log);
    }
    Ok(miner)
}

/// The default corpus seeds: enough runs for every simulator arbitration
/// branch (e.g. the coherence grant split) to appear several times.
#[must_use]
pub fn default_seeds(count: u64) -> Vec<u64> {
    (0..count).map(|i| 0xA11CE ^ (i * 7919)).collect()
}

/// Messages of the scenario, re-exported for CLI convenience.
#[must_use]
pub fn scenario_message_set(model: &SocModel, scenario: &UsageScenario) -> Vec<MessageId> {
    scenario.messages(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MiningConfig;

    #[test]
    fn modeled_and_wire_corpora_agree_on_clean_runs() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let seeds = default_seeds(2);
        let (modeled, _) = scenario_executions(&model, &scenario, &seeds, false).expect("modeled");
        let (wired, skipped) = scenario_executions(&model, &scenario, &seeds, true).expect("wire");
        assert_eq!(skipped, 0, "clean encode/decode must not drop frames");
        assert_eq!(modeled.len(), wired.len());
        for (m, w) in modeled.iter().zip(&wired) {
            let ms: Vec<_> = m.records.iter().map(|r| r.message).collect();
            let ws: Vec<_> = w.records.iter().map(|r| r.message).collect();
            assert_eq!(ms, ws, "wire round-trip must preserve the message stream");
        }
    }

    #[test]
    fn scenario_miner_recovers_linear_pior_flow() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let miner = scenario_miner(
            &model,
            &scenario,
            &default_seeds(4),
            true,
            MiningConfig::default(),
        )
        .expect("miner");
        let report = miner.mine();
        assert!(
            !report.candidates.is_empty(),
            "scenario 1 must yield candidates"
        );
        assert_eq!(report.stats.skipped_frames, 0);
    }
}
