//! Candidate DAG assembly: prefix-tree acceptor + future-language merge.
//!
//! Each cluster of per-instance sequences (grouped by initiating message)
//! is folded into a prefix-tree acceptor (PTA) with visit and terminal
//! counts, then compacted by merging PTA nodes whose *future languages*
//! are identical. The future language of a node is captured by a canonical
//! recursive signature `(is_terminal, sorted [(message, child_signature)])`
//! computed post-order and interned; two nodes share a signature exactly
//! when they accept the same suffix set.
//!
//! Two properties make the merge safe:
//!
//! - **The result is a DAG.** An ancestor and its descendant can never
//!   share a future signature: the ancestor's future language contains a
//!   strictly longer string (its path down through the descendant's
//!   longest suffix), so a merge can never create a cycle.
//! - **The result is deterministic.** All nodes of a class have identical
//!   futures, so for any message their children also have identical
//!   futures and land in one class — each (state, message) pair maps to a
//!   single successor.
//!
//! Sink classes become stop states. Terminal-but-non-sink classes mark
//! truncated observations; they are counted (lowering acceptance) rather
//! than promoted to stop states, because a stop state must be a sink.

use std::collections::HashMap;
use std::sync::Arc;

use pstrace_flow::{Flow, FlowBuilder, MessageCatalog, MessageId};

use crate::invariant::InvariantSummary;

/// Knobs for one cluster assembly (subset of the full `MiningConfig`).
#[derive(Debug, Clone, Copy)]
pub struct AssembleConfig {
    /// Distinct sequence shapes (paths) observed fewer than this many
    /// times across the cluster are dropped before PTA construction.
    pub min_path_support: u64,
    /// Cap on DAG path enumeration during invariant cross-checking.
    pub max_enumerated_paths: usize,
}

impl Default for AssembleConfig {
    fn default() -> Self {
        AssembleConfig {
            min_path_support: 1,
            max_enumerated_paths: 4096,
        }
    }
}

/// One mined candidate flow plus its mining evidence.
#[derive(Debug, Clone)]
pub struct CandidateFlow {
    /// The assembled flow (always passes `FlowBuilder` validation).
    pub flow: Flow,
    /// The cluster's initiating message.
    pub initiator: MessageId,
    /// Number of sequences the candidate was mined from.
    pub support: u64,
    /// Observation count per edge, parallel to `flow.edges()`.
    pub edge_support: Vec<u64>,
    /// Fraction of corpus sequences the DAG accepts end-to-end (a
    /// sequence is accepted when every message is consumed and the walk
    /// ends on a stop state).
    pub acceptance: f64,
    /// Sequences that ended before reaching a sink (truncated captures).
    pub truncated: u64,
    /// Binary invariants mined from the cluster.
    pub invariants: InvariantSummary,
    /// Number of enumerated DAG paths violating a mined invariant
    /// (over-generalization evidence).
    pub invariant_violations: usize,
    /// DAG paths enumerated for the invariant cross-check (capped).
    pub enumerated_paths: usize,
    /// Atomic-occupancy evidence per interior state (filled in by the
    /// miner's validation pass when enabled).
    pub atomic_checks: Vec<crate::miner::AtomicCheck>,
    /// Composite score assigned by the miner (acceptance × minimality,
    /// penalized for invariant violations).
    pub score: f64,
}

impl CandidateFlow {
    /// Support/confidence label for one edge (for DOT annotation).
    #[must_use]
    pub fn edge_label(&self, edge_index: usize) -> String {
        let support = self.edge_support.get(edge_index).copied().unwrap_or(0);
        if self.support == 0 {
            return format!("×{support}");
        }
        format!(
            "×{support} ({:.0}%)",
            support as f64 / self.support as f64 * 100.0
        )
    }
}

#[derive(Debug, Default)]
struct PtaNode {
    children: Vec<(MessageId, usize)>,
    visits: u64,
    terminal: u64,
}

/// Builds the PTA for a weighted set of distinct paths.
fn build_pta(paths: &[(Vec<MessageId>, u64)]) -> Vec<PtaNode> {
    let mut nodes: Vec<PtaNode> = vec![PtaNode::default()];
    for (path, weight) in paths {
        let mut cur = 0usize;
        nodes[cur].visits += weight;
        for &msg in path {
            let next = match nodes[cur].children.iter().find(|(m, _)| *m == msg) {
                Some(&(_, child)) => child,
                None => {
                    let child = nodes.len();
                    nodes.push(PtaNode::default());
                    nodes[cur].children.push((msg, child));
                    child
                }
            };
            cur = next;
            nodes[cur].visits += weight;
        }
        nodes[cur].terminal += weight;
    }
    nodes
}

/// Computes the future-language class of every PTA node via post-order
/// signature interning. Returns `(class_of_node, class_count)`.
fn future_classes(nodes: &[PtaNode]) -> (Vec<usize>, usize) {
    type Key = (bool, Vec<(MessageId, usize)>);
    let mut interned: HashMap<Key, usize> = HashMap::new();
    let mut class_of = vec![usize::MAX; nodes.len()];

    fn classify(
        nodes: &[PtaNode],
        node: usize,
        interned: &mut HashMap<Key, usize>,
        class_of: &mut [usize],
    ) -> usize {
        if class_of[node] != usize::MAX {
            return class_of[node];
        }
        let mut children: Vec<(MessageId, usize)> = nodes[node]
            .children
            .iter()
            .map(|&(m, c)| (m, classify(nodes, c, interned, class_of)))
            .collect();
        children.sort_unstable();
        let key = (nodes[node].terminal > 0, children);
        let next = interned.len();
        let class = *interned.entry(key).or_insert(next);
        class_of[node] = class;
        class
    }

    classify(nodes, 0, &mut interned, &mut class_of);
    let count = interned.len();
    (class_of, count)
}

/// Assembles one cluster of sequences into a candidate flow.
///
/// Returns `None` when the cluster is empty, when every path falls under
/// `min_path_support`, or when the merged automaton fails flow validation
/// (e.g. the root class is itself terminal, which would require an
/// initial stop state — evidence of zero-length/noise sequences).
#[must_use]
pub fn assemble_cluster(
    name: &str,
    catalog: &Arc<MessageCatalog>,
    sequences: &[&[MessageId]],
    config: &AssembleConfig,
) -> Option<CandidateFlow> {
    // Weight distinct paths, then filter by path support.
    let mut weighted: Vec<(Vec<MessageId>, u64)> = Vec::new();
    for seq in sequences {
        if seq.is_empty() {
            continue;
        }
        match weighted.iter_mut().find(|(p, _)| p == seq) {
            Some((_, w)) => *w += 1,
            None => weighted.push((seq.to_vec(), 1)),
        }
    }
    weighted.retain(|(_, w)| *w >= config.min_path_support);
    if weighted.is_empty() {
        return None;
    }
    let support: u64 = weighted.iter().map(|(_, w)| w).sum();
    let initiator = weighted[0].0[0];

    let nodes = build_pta(&weighted);
    let (class_of, class_count) = future_classes(&nodes);

    // Per-class representative children (identical across the class by
    // the determinism argument) and per-class-edge observation counts.
    let mut class_children: Vec<Vec<(MessageId, usize)>> = vec![Vec::new(); class_count];
    let mut class_terminal = vec![0u64; class_count];
    let mut edge_counts: HashMap<(usize, MessageId, usize), u64> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let c = class_of[i];
        class_terminal[c] += node.terminal;
        for &(msg, child) in &node.children {
            let cc = class_of[child];
            *edge_counts.entry((c, msg, cc)).or_insert(0) += nodes[child].visits;
            if !class_children[c].contains(&(msg, cc)) {
                class_children[c].push((msg, cc));
            }
        }
    }
    for ch in &mut class_children {
        ch.sort_unstable();
    }

    // Deterministic BFS naming from the root class.
    let root = class_of[0];
    let mut order: Vec<usize> = vec![root];
    let mut seen = vec![false; class_count];
    seen[root] = true;
    let mut head = 0;
    while head < order.len() {
        let c = order[head];
        head += 1;
        for &(_, cc) in &class_children[c] {
            if !seen[cc] {
                seen[cc] = true;
                order.push(cc);
            }
        }
    }
    let mut state_name = vec![String::new(); class_count];
    for (i, &c) in order.iter().enumerate() {
        state_name[c] = format!("s{i}");
    }

    let mut truncated = 0u64;
    let mut builder = FlowBuilder::new(name);
    for &c in &order {
        let sink = class_children[c].is_empty();
        if sink {
            builder = builder.stop_state(&state_name[c]);
        } else {
            builder = builder.state(&state_name[c]);
            truncated += class_terminal[c];
        }
    }
    builder = builder.initial(&state_name[root]);
    let mut edge_support = Vec::new();
    for &c in &order {
        for &(msg, cc) in &class_children[c] {
            builder = builder.edge(&state_name[c], catalog.name(msg), &state_name[cc]);
            edge_support.push(edge_counts.get(&(c, msg, cc)).copied().unwrap_or(0));
        }
    }
    let flow = builder.build(catalog).ok()?;

    // Acceptance: replay every (weighted) path through the merged DAG.
    let accepted: u64 = weighted
        .iter()
        .filter(|(p, _)| accepts(&flow, p))
        .map(|(_, w)| w)
        .sum();
    let acceptance = accepted as f64 / support as f64;

    // Invariant cross-check over the enumerated DAG language.
    let invariants = crate::invariant::mine_invariants(sequences);
    let paths = enumerate_paths(&flow, config.max_enumerated_paths);
    let invariant_violations = paths
        .iter()
        .filter(|p| invariants.violations(p) > 0)
        .count();

    Some(CandidateFlow {
        flow,
        initiator,
        support,
        edge_support,
        acceptance,
        truncated,
        invariants,
        invariant_violations,
        enumerated_paths: paths.len(),
        atomic_checks: Vec::new(),
        score: 0.0,
    })
}

/// Whether the flow's DAG accepts a message sequence end to end.
#[must_use]
pub fn accepts(flow: &Flow, sequence: &[MessageId]) -> bool {
    let Some(&start) = flow.initial_states().first() else {
        return false;
    };
    let mut cur = start;
    for &msg in sequence {
        match flow.edges_from(cur).find(|e| e.message == msg) {
            Some(e) => cur = e.to,
            None => return false,
        }
    }
    flow.is_stop(cur)
}

/// Enumerates complete initial→stop message paths of the DAG, capped.
#[must_use]
pub fn enumerate_paths(flow: &Flow, cap: usize) -> Vec<Vec<MessageId>> {
    let mut out = Vec::new();
    let Some(&start) = flow.initial_states().first() else {
        return out;
    };
    let mut stack = vec![(start, Vec::new())];
    while let Some((state, path)) = stack.pop() {
        if out.len() >= cap {
            break;
        }
        if flow.is_stop(state) {
            out.push(path);
            continue;
        }
        for e in flow.edges_from(state) {
            let mut next = path.clone();
            next.push(e.message);
            stack.push((e.to, next));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (Arc<MessageCatalog>, Vec<MessageId>) {
        let mut c = MessageCatalog::new();
        let ids = ["req", "gnt", "deny", "done", "ack"]
            .iter()
            .map(|n| c.intern(n, 4))
            .collect();
        (Arc::new(c), ids)
    }

    #[test]
    fn linear_cluster_becomes_chain() {
        let (cat, m) = catalog();
        let seq = vec![m[0], m[1], m[3]];
        let cand = assemble_cluster(
            "mined",
            &cat,
            &[&seq, &seq, &seq],
            &AssembleConfig::default(),
        )
        .expect("candidate");
        assert_eq!(cand.flow.state_count(), 4);
        assert_eq!(cand.flow.edge_count(), 3);
        assert_eq!(cand.support, 3);
        assert_eq!(cand.edge_support, vec![3, 3, 3]);
        assert!((cand.acceptance - 1.0).abs() < 1e-12);
        assert_eq!(cand.truncated, 0);
        assert_eq!(cand.invariant_violations, 0);
    }

    #[test]
    fn branches_merge_into_shared_tail() {
        let (cat, m) = catalog();
        // req -> gnt -> done  |  req -> deny -> done : the two middle
        // nodes share the future language {done} and merge, as do the two
        // terminals — a diamond of 4 states.
        let a = vec![m[0], m[1], m[3]];
        let b = vec![m[0], m[2], m[3]];
        let cand =
            assemble_cluster("mined", &cat, &[&a, &b], &AssembleConfig::default()).expect("ok");
        assert_eq!(cand.flow.stop_states().len(), 1);
        assert_eq!(cand.flow.state_count(), 4);
        assert_eq!(cand.flow.edge_count(), 4);
        assert!((cand.acceptance - 1.0).abs() < 1e-12);
        assert_eq!(cand.enumerated_paths, 2);
    }

    #[test]
    fn identical_futures_merge_midchain() {
        let (cat, m) = catalog();
        // After gnt and after deny the futures are both exactly
        // [ack, done], so those two PTA nodes collapse into one state,
        // as do the downstream ack/terminal nodes: req -> {gnt|deny} ->
        // merged -> ack -> done gives 5 states / 5 edges.
        let a = vec![m[0], m[1], m[4], m[3]];
        let b = vec![m[0], m[2], m[4], m[3]];
        let cand =
            assemble_cluster("mined", &cat, &[&a, &b], &AssembleConfig::default()).expect("ok");
        assert_eq!(cand.flow.state_count(), 5);
        assert_eq!(cand.flow.edge_count(), 5);
        assert!((cand.acceptance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_sequences_lower_acceptance() {
        let (cat, m) = catalog();
        let full = vec![m[0], m[1], m[3]];
        let cut = vec![m[0], m[1]];
        let cand = assemble_cluster(
            "mined",
            &cat,
            &[&full, &full, &cut],
            &AssembleConfig::default(),
        )
        .expect("ok");
        assert_eq!(cand.truncated, 1);
        assert!(cand.acceptance < 1.0);
        assert!((cand.acceptance - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_path_support_drops_noise_paths() {
        let (cat, m) = catalog();
        let common = vec![m[0], m[1]];
        let noise = vec![m[0], m[2]];
        let config = AssembleConfig {
            min_path_support: 2,
            ..AssembleConfig::default()
        };
        let cand =
            assemble_cluster("mined", &cat, &[&common, &common, &noise], &config).expect("ok");
        assert_eq!(cand.support, 2, "noise path dropped");
        assert_eq!(cand.flow.edge_count(), 2, "req -> gnt chain only");
        assert_eq!(cand.flow.state_count(), 3);
    }

    #[test]
    fn empty_cluster_yields_none() {
        let (cat, _) = catalog();
        assert!(assemble_cluster("mined", &cat, &[], &AssembleConfig::default()).is_none());
        let empty: Vec<MessageId> = Vec::new();
        assert!(assemble_cluster("mined", &cat, &[&empty], &AssembleConfig::default()).is_none());
    }

    #[test]
    fn accepts_rejects_prefixes_and_unknown_messages() {
        let (cat, m) = catalog();
        let seq = vec![m[0], m[1], m[3]];
        let cand =
            assemble_cluster("mined", &cat, &[&seq], &AssembleConfig::default()).expect("ok");
        assert!(accepts(&cand.flow, &seq));
        assert!(!accepts(&cand.flow, &seq[..2]), "prefix must not accept");
        assert!(!accepts(&cand.flow, &[m[0], m[2]]), "unknown transition");
    }
}
