//! Execution logs and per-instance sequence extraction.
//!
//! Mining starts from *decoded executions*: ordered streams of indexed
//! messages as reconstructed by the wire decoder (or modeled by the trace
//! buffer). Because every record carries its flow-instance index
//! (Definition 4's tagging), splitting one execution into the message
//! sequences of its individual flow instances is a grouping, not an
//! inference problem — exactly the property the paper's wire format
//! preserves end to end.

use pstrace_flow::{FlowIndex, IndexedMessage, MessageId};
use pstrace_soc::CapturedTrace;
use pstrace_wire::WireRecord;

/// One record of an execution log: when an indexed message was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Cycle of the observation.
    pub time: u64,
    /// The indexed message.
    pub message: IndexedMessage,
}

/// One decoded execution: the observed records in stream order.
///
/// Damaged frames never make it here — the decoder drops them — so an
/// execution log is always well-formed, merely (possibly) incomplete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionLog {
    /// The records, in observation order.
    pub records: Vec<LogRecord>,
}

impl ExecutionLog {
    /// Builds a log from raw records.
    #[must_use]
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        ExecutionLog { records }
    }

    /// Builds a log from a modeled trace-buffer capture.
    #[must_use]
    pub fn from_trace(trace: &CapturedTrace) -> Self {
        ExecutionLog {
            records: trace
                .records()
                .iter()
                .map(|r| LogRecord {
                    time: r.time,
                    message: r.message,
                })
                .collect(),
        }
    }

    /// Builds a log from decoded wire records.
    #[must_use]
    pub fn from_wire_records(records: &[WireRecord]) -> Self {
        ExecutionLog {
            records: records
                .iter()
                .map(|r| LogRecord {
                    time: r.time,
                    message: r.message,
                })
                .collect(),
        }
    }

    /// Keeps only records whose message is in `messages` (in any order),
    /// dropping everything else: how a flight-recorder dump — which
    /// journals shed/damage/degradation beside the session lifecycle —
    /// is narrowed to the lifecycle vocabulary before mining.
    #[must_use]
    pub fn retain_messages(mut self, messages: &[MessageId]) -> Self {
        self.records
            .retain(|r| messages.contains(&r.message.message));
        self
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Splits the log into per-instance message sequences, ordered by
    /// instance index. Record order within an instance is preserved.
    #[must_use]
    pub fn instance_sequences(&self) -> Vec<InstanceSequence> {
        let mut out: Vec<InstanceSequence> = Vec::new();
        for r in &self.records {
            let idx = r.message.index;
            match out.iter_mut().find(|s| s.index == idx) {
                Some(seq) => {
                    seq.messages.push(r.message.message);
                    seq.times.push(r.time);
                }
                None => out.push(InstanceSequence {
                    index: idx,
                    messages: vec![r.message.message],
                    times: vec![r.time],
                }),
            }
        }
        out.sort_by_key(|s| s.index);
        out
    }
}

/// The message sequence of one flow instance within one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSequence {
    /// The instance's flow index.
    pub index: FlowIndex,
    /// Messages in observation order.
    pub messages: Vec<MessageId>,
    /// Observation cycle of each message (parallel to `messages`).
    pub times: Vec<u64>,
}

impl InstanceSequence {
    /// The initiating message (`None` for an empty sequence).
    #[must_use]
    pub fn initiator(&self) -> Option<MessageId> {
        self.messages.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn im(m: u32, i: u32) -> IndexedMessage {
        IndexedMessage::new(test_mid(m), FlowIndex(i))
    }

    fn test_mid(n: u32) -> MessageId {
        // MessageIds can only be minted through a catalog; intern enough
        // placeholders and pick the nth.
        let mut c = pstrace_flow::MessageCatalog::new();
        let mut last = None;
        for k in 0..=n {
            last = Some(c.intern(&format!("m{k}"), 1));
        }
        last.unwrap()
    }

    #[test]
    fn splits_by_instance_preserving_order() {
        let log = ExecutionLog::from_records(vec![
            LogRecord {
                time: 1,
                message: im(0, 2),
            },
            LogRecord {
                time: 2,
                message: im(1, 1),
            },
            LogRecord {
                time: 3,
                message: im(2, 2),
            },
        ]);
        let seqs = log.instance_sequences();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].index, FlowIndex(1));
        assert_eq!(seqs[0].messages, vec![test_mid(1)]);
        assert_eq!(seqs[1].index, FlowIndex(2));
        assert_eq!(seqs[1].messages, vec![test_mid(0), test_mid(2)]);
        assert_eq!(seqs[1].times, vec![1, 3]);
        assert_eq!(seqs[1].initiator(), Some(test_mid(0)));
    }

    #[test]
    fn empty_log_yields_no_sequences() {
        let log = ExecutionLog::default();
        assert!(log.is_empty());
        assert!(log.instance_sequences().is_empty());
    }
}
