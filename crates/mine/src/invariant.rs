//! Binary invariant mining over message sequences.
//!
//! Alongside the episode tree (the prefix-tree acceptor of
//! [`assemble`](crate::assemble)), the miner extracts the classic binary
//! invariants of specification mining — *follows* (`a` always observed
//! before `b` when both occur), and *mutual exclusion* (`a` and `b` never
//! occur in the same instance) — from the per-cluster sequence sets.
//!
//! The invariants are not redundant with the episode tree: after state
//! merging the assembled DAG may *generalize* beyond the observed
//! sequences, and every generalized path must still satisfy the mined
//! invariants. A candidate whose DAG admits an invariant-violating path
//! over-merged and is penalized by the scorer.

use std::collections::HashMap;

use pstrace_flow::MessageId;

/// Binary invariants mined from one cluster's sequences.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantSummary {
    /// Messages observed in the cluster, in first-appearance order.
    pub alphabet: Vec<MessageId>,
    /// Pairs `(a, b)` where, in every sequence containing both, the first
    /// `a` precedes the first `b` (and both co-occur at least once).
    pub follows: Vec<(MessageId, MessageId)>,
    /// Pairs `(a, b)` (with `a < b`) that both appear in the cluster but
    /// never within the same sequence.
    pub mutex: Vec<(MessageId, MessageId)>,
}

impl InvariantSummary {
    /// Total number of mined invariants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.follows.len() + self.mutex.len()
    }

    /// Whether no invariant was mined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.follows.is_empty() && self.mutex.is_empty()
    }

    /// Checks one message sequence against the invariants, returning the
    /// number of violated invariants.
    #[must_use]
    pub fn violations(&self, sequence: &[MessageId]) -> usize {
        let first = first_occurrences(sequence);
        let mut violated = 0;
        for &(a, b) in &self.follows {
            if let (Some(&fa), Some(&fb)) = (first.get(&a), first.get(&b)) {
                if fa >= fb {
                    violated += 1;
                }
            }
        }
        for &(a, b) in &self.mutex {
            if first.contains_key(&a) && first.contains_key(&b) {
                violated += 1;
            }
        }
        violated
    }
}

fn first_occurrences(sequence: &[MessageId]) -> HashMap<MessageId, usize> {
    let mut first = HashMap::new();
    for (i, &m) in sequence.iter().enumerate() {
        first.entry(m).or_insert(i);
    }
    first
}

/// Mines the binary invariants of a cluster's sequences.
#[must_use]
pub fn mine_invariants(sequences: &[&[MessageId]]) -> InvariantSummary {
    let mut alphabet: Vec<MessageId> = Vec::new();
    for seq in sequences {
        for &m in *seq {
            if !alphabet.contains(&m) {
                alphabet.push(m);
            }
        }
    }
    // Pairwise stats over first occurrences.
    let mut cooccur: HashMap<(MessageId, MessageId), (usize, usize)> = HashMap::new();
    for seq in sequences {
        let first = first_occurrences(seq);
        for (&a, &fa) in &first {
            for (&b, &fb) in &first {
                if a == b {
                    continue;
                }
                let entry = cooccur.entry((a, b)).or_insert((0, 0));
                entry.0 += 1;
                if fa < fb {
                    entry.1 += 1;
                }
            }
        }
    }
    let mut follows = Vec::new();
    let mut mutex = Vec::new();
    for (i, &a) in alphabet.iter().enumerate() {
        for &b in &alphabet {
            if a == b {
                continue;
            }
            match cooccur.get(&(a, b)) {
                Some(&(n, before)) if n > 0 && before == n => follows.push((a, b)),
                // Never co-occur; record once per unordered pair.
                None if alphabet.iter().position(|&m| m == b).unwrap_or(0) > i => {
                    mutex.push((a, b));
                }
                _ => {}
            }
        }
    }
    follows.sort_unstable();
    mutex.sort_unstable();
    InvariantSummary {
        alphabet,
        follows,
        mutex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::MessageCatalog;

    fn ids(n: usize) -> Vec<MessageId> {
        let mut c = MessageCatalog::new();
        (0..n).map(|i| c.intern(&format!("m{i}"), 1)).collect()
    }

    #[test]
    fn linear_sequences_yield_total_follows_order() {
        let m = ids(3);
        let seq: Vec<MessageId> = vec![m[0], m[1], m[2]];
        let inv = mine_invariants(&[&seq, &seq]);
        assert_eq!(inv.alphabet, m);
        assert!(inv.follows.contains(&(m[0], m[1])));
        assert!(inv.follows.contains(&(m[0], m[2])));
        assert!(inv.follows.contains(&(m[1], m[2])));
        assert!(!inv.follows.contains(&(m[1], m[0])));
        assert!(inv.mutex.is_empty());
        assert!(!inv.is_empty());
        assert_eq!(inv.len(), 3);
    }

    #[test]
    fn branching_paths_yield_mutex_pairs() {
        let m = ids(4);
        let left: Vec<MessageId> = vec![m[0], m[1], m[3]];
        let right: Vec<MessageId> = vec![m[0], m[2], m[3]];
        let inv = mine_invariants(&[&left, &right]);
        assert!(inv.mutex.contains(&(m[1], m[2])));
        assert!(inv.follows.contains(&(m[0], m[3])));
    }

    #[test]
    fn violations_flag_reordered_and_co_occurring_messages() {
        let m = ids(3);
        let seq: Vec<MessageId> = vec![m[0], m[1]];
        let other: Vec<MessageId> = vec![m[0], m[2]];
        let inv = mine_invariants(&[&seq, &other]);
        // m1 and m2 are mutex; m0 precedes both.
        assert_eq!(inv.violations(&[m[0], m[1]]), 0);
        assert_eq!(inv.violations(&[m[1], m[0]]), 1, "follows violated");
        assert_eq!(inv.violations(&[m[0], m[1], m[2]]), 1, "mutex violated");
    }
}
