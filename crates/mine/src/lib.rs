//! # pstrace-mine — flow-DAG mining from decoded traces
//!
//! The paper's selection and localization machinery consumes message-flow
//! DAGs (Definition 1), but nothing requires those DAGs to be
//! hand-written. This crate reconstructs *candidate* flows from decoded
//! trace executions, in the spirit of trace-based specification mining
//! (Inferring Message Flows From System Communication Traces): any
//! capture corpus becomes a new debuggable workload.
//!
//! ## Pipeline
//!
//! 1. **Extract** ([`seq`]): split each decoded execution into
//!    per-instance message sequences using the wire format's flow-index
//!    tags — a grouping, not an inference step.
//! 2. **Cluster**: group sequences by their initiating message (each T2
//!    flow has a unique initiator).
//! 3. **Assemble** ([`assemble`]): fold each cluster into a prefix-tree
//!    acceptor and merge states with identical future languages. The
//!    merge provably yields a deterministic DAG, so the result always
//!    passes [`pstrace_flow::FlowBuilder`] validation.
//! 4. **Validate** ([`miner`]): mine binary invariants ([`invariant`])
//!    and cross-check them against the DAG's enumerated language
//!    (over-merge detection), and compute atomic-occupancy evidence
//!    against the observed interleavings.
//! 5. **Score & rank**: acceptance ratio × minimality, penalized for
//!    invariant violations.
//!
//! Self-evaluation ([`eval`]) compares mined candidates with ground-truth
//! flows by structural node/edge signatures (rename-invariant precision
//! and recall), which is what the `pstrace mine --eval` verdict and the
//! CI mining smoke assert.
//!
//! Mined flows are conservative about atomicity: occupancy conflicts are
//! *reported*, never inferred into the spec (a finite corpus can show a
//! state is not atomic, but never that it is).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assemble;
pub mod corpus;
pub mod eval;
pub mod invariant;
pub mod miner;
pub mod seq;

pub use assemble::{accepts, enumerate_paths, AssembleConfig, CandidateFlow};
pub use corpus::{
    default_seeds, full_body_width, full_capture_config, scenario_executions, scenario_miner,
};
pub use eval::{evaluate, score_against, FlowMatch, FlowScore, PrScore, RecoveryReport};
pub use invariant::{mine_invariants, InvariantSummary};
pub use miner::{AtomicCheck, Miner, MiningConfig, MiningReport, MiningStats};
pub use seq::{ExecutionLog, InstanceSequence, LogRecord};
