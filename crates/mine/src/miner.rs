//! The mining driver: corpus intake, clustering, assembly, validation,
//! and scoring.

use std::collections::HashMap;
use std::sync::Arc;

use pstrace_codec::read_ptw_auto;
use pstrace_flow::{MessageCatalog, MessageId, StateId};
use pstrace_obs::{maybe_time, Registry};
use pstrace_soc::CapturedTrace;
use pstrace_wire::{DecodeReport, WireError};

use crate::assemble::{assemble_cluster, enumerate_paths, AssembleConfig, CandidateFlow};
use crate::seq::ExecutionLog;

/// Mining knobs.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// Clusters backed by fewer sequences than this are dropped.
    pub min_support: u64,
    /// Distinct paths observed fewer than this many times within a
    /// cluster are dropped before assembly (noise rejection).
    pub min_path_support: u64,
    /// At most this many ranked candidates are reported.
    pub max_candidates: usize,
    /// Cap on DAG path enumeration during invariant cross-checking.
    pub max_enumerated_paths: usize,
    /// Whether to run the atomic-occupancy validation pass.
    pub validate_atomics: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 2,
            min_path_support: 1,
            max_candidates: 32,
            max_enumerated_paths: 4096,
            validate_atomics: true,
        }
    }
}

/// Occupancy evidence for one mined state under the atomic-state check.
///
/// Mining *validates* rather than *infers* atomicity: for every interior
/// state the miner computes per-instance occupancy intervals and counts
/// cross-instance overlaps within each execution. A state that was
/// occupied by two instances at once can not be atomic; a state that was
/// never observed overlapping is merely *consistent* with atomicity, so
/// mined flows conservatively declare no atomic states and report the
/// evidence instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicCheck {
    /// Mined state name.
    pub state: String,
    /// Number of occupancy intervals observed.
    pub observations: u64,
    /// Number of overlapping same-execution interval pairs.
    pub conflicts: u64,
}

impl AtomicCheck {
    /// Whether the evidence is consistent with the state being atomic.
    #[must_use]
    pub fn atomic_consistent(&self) -> bool {
        self.conflicts == 0
    }
}

/// Aggregate statistics of one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Executions pushed into the corpus.
    pub executions: u64,
    /// Records across all executions.
    pub records: u64,
    /// Per-instance sequences extracted.
    pub sequences: u64,
    /// Damaged wire frames skipped during intake.
    pub skipped_frames: u64,
    /// Clusters formed (distinct initiating messages).
    pub clusters: u64,
    /// Clusters dropped for insufficient support.
    pub clusters_dropped: u64,
    /// Cross-instance atomic-occupancy conflicts observed.
    pub atomic_conflicts: u64,
}

/// The result of a mining run: ranked candidates plus statistics.
#[derive(Debug, Clone)]
pub struct MiningReport {
    /// Candidates, best first.
    pub candidates: Vec<CandidateFlow>,
    /// Corpus and run statistics.
    pub stats: MiningStats,
}

/// Mines candidate flow DAGs from a corpus of decoded executions.
#[derive(Debug, Clone)]
pub struct Miner {
    catalog: Arc<MessageCatalog>,
    config: MiningConfig,
    logs: Vec<ExecutionLog>,
    skipped_frames: u64,
}

impl Miner {
    /// Creates an empty miner over `catalog`'s message namespace.
    #[must_use]
    pub fn new(catalog: Arc<MessageCatalog>, config: MiningConfig) -> Self {
        Miner {
            catalog,
            config,
            logs: Vec::new(),
            skipped_frames: 0,
        }
    }

    /// The miner's configuration.
    #[must_use]
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Number of executions in the corpus.
    #[must_use]
    pub fn corpus_len(&self) -> usize {
        self.logs.len()
    }

    /// Adds one execution log to the corpus.
    pub fn push_log(&mut self, log: ExecutionLog) {
        self.logs.push(log);
    }

    /// Adds a modeled trace-buffer capture to the corpus.
    pub fn push_trace(&mut self, trace: &CapturedTrace) {
        self.push_log(ExecutionLog::from_trace(trace));
    }

    /// Adds a decoded wire capture, accounting its damaged frames.
    pub fn push_decoded(&mut self, report: &DecodeReport) {
        self.skipped_frames += report.damaged.len() as u64;
        self.push_log(ExecutionLog::from_wire_records(&report.records));
    }

    /// Parses and decodes a `.ptw` byte stream into the corpus. Both the
    /// v1 fixed-width and v2 compressed dialects are accepted — the
    /// container's version byte routes to the right decoder.
    ///
    /// Damaged frames are skipped (and counted); only a malformed file
    /// header/schema is an error.
    pub fn push_ptw(&mut self, bytes: &[u8]) -> Result<usize, WireError> {
        let (_, _, report) = read_ptw_auto(&self.catalog, bytes)?;
        let added = report.records.len();
        self.push_decoded(&report);
        Ok(added)
    }

    /// Runs the mining pipeline and returns ranked candidates.
    #[must_use]
    pub fn mine(&self) -> MiningReport {
        self.mine_observed(None)
    }

    /// [`mine`](Miner::mine) with observability: phase spans
    /// (`mine-extract`, `mine-assemble`, `mine-validate`, `mine-score`)
    /// and `pstrace_mine_*` counters land in `obs` when provided.
    #[must_use]
    pub fn mine_observed(&self, obs: Option<&Registry>) -> MiningReport {
        let mut stats = MiningStats {
            executions: self.logs.len() as u64,
            skipped_frames: self.skipped_frames,
            ..MiningStats::default()
        };

        // Extract per-instance sequences, remembering which execution
        // each came from (atomic validation is per-execution).
        let extracted: Vec<ExtractedSeq> = maybe_time(obs, "mine-extract", || {
            let mut out = Vec::new();
            for (i, log) in self.logs.iter().enumerate() {
                stats.records += log.len() as u64;
                for seq in log.instance_sequences() {
                    out.push(ExtractedSeq {
                        execution: i,
                        messages: seq.messages,
                        times: seq.times,
                    });
                }
            }
            out
        });
        stats.sequences = extracted.len() as u64;

        // Cluster by initiating message, preserving first-seen order.
        let mut clusters: Vec<(MessageId, Vec<usize>)> = Vec::new();
        for (i, e) in extracted.iter().enumerate() {
            let Some(&first) = e.messages.first() else {
                continue;
            };
            match clusters.iter_mut().find(|(m, _)| *m == first) {
                Some((_, members)) => members.push(i),
                None => clusters.push((first, vec![i])),
            }
        }
        stats.clusters = clusters.len() as u64;

        let assemble_config = AssembleConfig {
            min_path_support: self.config.min_path_support,
            max_enumerated_paths: self.config.max_enumerated_paths,
        };
        let mut candidates: Vec<CandidateFlow> = maybe_time(obs, "mine-assemble", || {
            let mut out = Vec::new();
            for (initiator, members) in &clusters {
                if (members.len() as u64) < self.config.min_support {
                    stats.clusters_dropped += 1;
                    continue;
                }
                let seqs: Vec<&[MessageId]> = members
                    .iter()
                    .map(|&i| extracted[i].messages.as_slice())
                    .collect();
                let name = format!("mined-{}", self.catalog.name(*initiator));
                if let Some(c) = assemble_cluster(&name, &self.catalog, &seqs, &assemble_config) {
                    out.push(c);
                } else {
                    stats.clusters_dropped += 1;
                }
            }
            out
        });

        if self.config.validate_atomics {
            maybe_time(obs, "mine-validate", || {
                for cand in &mut candidates {
                    let members: Vec<&ExtractedSeq> = extracted
                        .iter()
                        .filter(|e| e.messages.first() == Some(&cand.initiator))
                        .collect();
                    cand.atomic_checks = atomic_checks(cand, &members);
                    stats.atomic_conflicts +=
                        cand.atomic_checks.iter().map(|c| c.conflicts).sum::<u64>();
                }
            });
        }

        maybe_time(obs, "mine-score", || {
            for cand in &mut candidates {
                cand.score = score(cand);
            }
            candidates.sort_by(|a, b| {
                b.score
                    .total_cmp(&a.score)
                    .then(b.support.cmp(&a.support))
                    .then(a.flow.state_count().cmp(&b.flow.state_count()))
                    .then(a.flow.name().cmp(b.flow.name()))
            });
        });
        candidates.truncate(self.config.max_candidates);

        if let Some(obs) = obs {
            obs.counter("pstrace_mine_executions_total")
                .add(stats.executions);
            obs.counter("pstrace_mine_records_total").add(stats.records);
            obs.counter("pstrace_mine_sequences_total")
                .add(stats.sequences);
            obs.counter("pstrace_mine_skipped_frames_total")
                .add(stats.skipped_frames);
            obs.counter("pstrace_mine_candidates_total")
                .add(candidates.len() as u64);
            obs.counter("pstrace_mine_clusters_dropped_total")
                .add(stats.clusters_dropped);
            obs.counter("pstrace_mine_atomic_conflicts_total")
                .add(stats.atomic_conflicts);
        }

        MiningReport { candidates, stats }
    }
}

/// Composite candidate score: acceptance × minimality, halved when the
/// DAG's enumerated language violates a mined invariant (over-merge).
fn score(cand: &CandidateFlow) -> f64 {
    let longest = enumerate_paths(&cand.flow, cand.enumerated_paths.max(1))
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0);
    let minimality = ((longest + 1) as f64 / cand.flow.state_count() as f64).min(1.0);
    let mut s = cand.acceptance * minimality;
    if cand.invariant_violations > 0 {
        s *= 0.5;
    }
    s
}

/// Computes per-state occupancy evidence for one candidate.
///
/// An instance occupies the state reached after its `k`-th message from
/// `times[k-1]` until its next message (`times[k]`), or indefinitely for
/// its final state. Initial and stop states are skipped: the initial
/// state is occupied by every not-yet-started instance and a stop state
/// marks completion, so neither can be atomic by Definition 1.
fn atomic_checks(cand: &CandidateFlow, members: &[&ExtractedSeq]) -> Vec<AtomicCheck> {
    let flow = &cand.flow;
    // intervals[state] = (execution, start, end)
    let mut intervals: HashMap<StateId, Vec<(usize, u64, u64)>> = HashMap::new();
    for m in members {
        let Some(&start) = flow.initial_states().first() else {
            continue;
        };
        let mut cur = start;
        for (k, &msg) in m.messages.iter().enumerate() {
            let Some(edge) = flow.edges_from(cur).find(|e| e.message == msg) else {
                break; // sequence not accepted by the DAG: no evidence
            };
            cur = edge.to;
            if flow.is_stop(cur) {
                break;
            }
            let entered = m.times[k];
            let left = m.times.get(k + 1).copied().unwrap_or(u64::MAX);
            intervals
                .entry(cur)
                .or_default()
                .push((m.execution, entered, left));
        }
    }
    let mut out: Vec<AtomicCheck> = intervals
        .into_iter()
        .map(|(state, ivs)| {
            let mut conflicts = 0u64;
            for (i, &(exec_a, start_a, end_a)) in ivs.iter().enumerate() {
                for &(exec_b, start_b, end_b) in &ivs[i + 1..] {
                    if exec_a == exec_b && start_a < end_b && start_b < end_a {
                        conflicts += 1;
                    }
                }
            }
            AtomicCheck {
                state: flow.state_name(state).to_owned(),
                observations: ivs.len() as u64,
                conflicts,
            }
        })
        .collect();
    out.sort_by(|a, b| a.state.cmp(&b.state));
    out
}

/// One per-instance sequence, tagged with its source execution.
struct ExtractedSeq {
    execution: usize,
    messages: Vec<MessageId>,
    times: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::LogRecord;
    use pstrace_flow::{FlowIndex, IndexedMessage};

    fn catalog() -> (Arc<MessageCatalog>, Vec<MessageId>) {
        let mut c = MessageCatalog::new();
        let ids = ["req", "gnt", "done", "ping", "pong"]
            .iter()
            .map(|n| c.intern(n, 4))
            .collect();
        (Arc::new(c), ids)
    }

    fn log_of(records: &[(u64, MessageId, u32)]) -> ExecutionLog {
        ExecutionLog::from_records(
            records
                .iter()
                .map(|&(t, m, i)| LogRecord {
                    time: t,
                    message: IndexedMessage::new(m, FlowIndex(i)),
                })
                .collect(),
        )
    }

    #[test]
    fn mines_two_clusters_and_ranks_them() {
        let (cat, m) = catalog();
        let mut miner = Miner::new(cat, MiningConfig::default());
        for _ in 0..3 {
            miner.push_log(log_of(&[
                (1, m[0], 1),
                (2, m[3], 2),
                (3, m[1], 1),
                (4, m[4], 2),
                (5, m[2], 1),
            ]));
        }
        let report = miner.mine();
        assert_eq!(report.stats.executions, 3);
        assert_eq!(report.stats.records, 15);
        assert_eq!(report.stats.sequences, 6);
        assert_eq!(report.stats.clusters, 2);
        assert_eq!(report.candidates.len(), 2);
        let names: Vec<&str> = report.candidates.iter().map(|c| c.flow.name()).collect();
        assert!(names.contains(&"mined-req"));
        assert!(names.contains(&"mined-ping"));
        for c in &report.candidates {
            assert!((c.score - 1.0).abs() < 1e-12, "clean corpus scores 1.0");
        }
    }

    #[test]
    fn min_support_drops_singleton_clusters() {
        let (cat, m) = catalog();
        let mut miner = Miner::new(cat, MiningConfig::default());
        miner.push_log(log_of(&[(1, m[0], 1), (2, m[1], 1)]));
        miner.push_log(log_of(&[(1, m[0], 1), (2, m[1], 1)]));
        miner.push_log(log_of(&[(1, m[3], 1), (2, m[4], 1)]));
        let report = miner.mine();
        assert_eq!(report.candidates.len(), 1, "ping cluster under-supported");
        assert_eq!(report.stats.clusters_dropped, 1);
        assert_eq!(report.candidates[0].flow.name(), "mined-req");
    }

    #[test]
    fn atomic_conflicts_are_detected() {
        let (cat, m) = catalog();
        let mut miner = Miner::new(cat, MiningConfig::default());
        // Two interleaved req->gnt->done instances in one execution:
        // both interior states (post-req and post-gnt) are occupied by
        // both instances at once, giving one conflict in each.
        miner.push_log(log_of(&[
            (1, m[0], 1),
            (2, m[0], 2),
            (3, m[1], 1),
            (4, m[1], 2),
            (5, m[2], 1),
            (6, m[2], 2),
        ]));
        let report = miner.mine();
        assert_eq!(report.candidates.len(), 1);
        let cand = &report.candidates[0];
        assert_eq!(report.stats.atomic_conflicts, 2);
        let conflicted: Vec<&AtomicCheck> = cand
            .atomic_checks
            .iter()
            .filter(|c| !c.atomic_consistent())
            .collect();
        assert_eq!(conflicted.len(), 2);
        assert!(conflicted.iter().all(|c| c.observations == 2));
        // Mined flows never claim atomicity outright.
        assert!(cand.flow.atomic_states().is_empty());
    }

    #[test]
    fn observed_mining_records_counters_and_spans() {
        let (cat, m) = catalog();
        let mut miner = Miner::new(cat, MiningConfig::default());
        miner.push_log(log_of(&[(1, m[0], 1), (2, m[1], 1), (3, m[2], 1)]));
        miner.push_log(log_of(&[(1, m[0], 1), (2, m[1], 1), (3, m[2], 1)]));
        let obs = Registry::new();
        let report = miner.mine_observed(Some(&obs));
        assert_eq!(report.candidates.len(), 1);
        assert_eq!(obs.counter("pstrace_mine_executions_total").get(), 2);
        assert_eq!(obs.counter("pstrace_mine_records_total").get(), 6);
        assert_eq!(obs.counter("pstrace_mine_sequences_total").get(), 2);
        assert_eq!(obs.counter("pstrace_mine_candidates_total").get(), 1);
        let spans: Vec<String> = obs.spans().iter().map(|s| s.name.clone()).collect();
        for phase in [
            "mine-extract",
            "mine-assemble",
            "mine-validate",
            "mine-score",
        ] {
            assert!(spans.iter().any(|s| s == phase), "missing span {phase}");
        }
    }
}
