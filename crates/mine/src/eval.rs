//! Self-evaluation: score mined candidates against ground-truth flows.
//!
//! Mined state names (`s0`, `s1`, …) carry no meaning, so flows are
//! compared structurally. Every state is reduced to a *node signature* —
//! `(sorted incoming message names, sorted outgoing message names,
//! is_initial, is_stop)` — and every edge to `(from_signature, message
//! name, to_signature)`. Precision and recall are then multiset overlaps
//! of the signature bags, which is invariant under state renaming and
//! state reordering but sensitive to real structural mistakes (missing
//! branches, spurious merges, wrong stop sets).

use std::collections::BTreeMap;

use pstrace_flow::{Flow, StateId};

use crate::assemble::CandidateFlow;

/// One precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrScore {
    /// Matched fraction of the mined bag.
    pub precision: f64,
    /// Matched fraction of the ground-truth bag.
    pub recall: f64,
}

impl PrScore {
    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            return 0.0;
        }
        2.0 * self.precision * self.recall / (self.precision + self.recall)
    }

    /// Whether both components meet `threshold`.
    #[must_use]
    pub fn meets(&self, threshold: f64) -> bool {
        self.precision >= threshold && self.recall >= threshold
    }
}

/// Node and edge scores of one mined flow against one ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowScore {
    /// Node-signature precision/recall.
    pub nodes: PrScore,
    /// Edge-signature precision/recall.
    pub edges: PrScore,
}

impl FlowScore {
    /// Whether all four components meet `threshold`.
    #[must_use]
    pub fn meets(&self, threshold: f64) -> bool {
        self.nodes.meets(threshold) && self.edges.meets(threshold)
    }
}

type NodeSig = (Vec<String>, Vec<String>, bool, bool);
type EdgeSig = (NodeSig, String, NodeSig);

fn node_sig(flow: &Flow, state: StateId) -> NodeSig {
    let catalog = flow.catalog();
    let mut incoming: Vec<String> = flow
        .edges_into(state)
        .map(|e| catalog.name(e.message).to_owned())
        .collect();
    let mut outgoing: Vec<String> = flow
        .edges_from(state)
        .map(|e| catalog.name(e.message).to_owned())
        .collect();
    incoming.sort_unstable();
    outgoing.sort_unstable();
    (
        incoming,
        outgoing,
        flow.initial_states().contains(&state),
        flow.is_stop(state),
    )
}

fn bags(flow: &Flow) -> (BTreeMap<NodeSig, usize>, BTreeMap<EdgeSig, usize>) {
    let catalog = flow.catalog();
    let sigs: Vec<NodeSig> = flow.states().map(|s| node_sig(flow, s)).collect();
    let mut nodes: BTreeMap<NodeSig, usize> = BTreeMap::new();
    for s in &sigs {
        *nodes.entry(s.clone()).or_insert(0) += 1;
    }
    let mut edges: BTreeMap<EdgeSig, usize> = BTreeMap::new();
    for e in flow.edges() {
        let sig = (
            sigs[e.from.index()].clone(),
            catalog.name(e.message).to_owned(),
            sigs[e.to.index()].clone(),
        );
        *edges.entry(sig).or_insert(0) += 1;
    }
    (nodes, edges)
}

fn overlap<K: Ord>(mined: &BTreeMap<K, usize>, truth: &BTreeMap<K, usize>) -> PrScore {
    let matched: usize = mined
        .iter()
        .map(|(k, &m)| truth.get(k).map_or(0, |&t| m.min(t)))
        .sum();
    let mined_total: usize = mined.values().sum();
    let truth_total: usize = truth.values().sum();
    PrScore {
        precision: if mined_total == 0 {
            0.0
        } else {
            matched as f64 / mined_total as f64
        },
        recall: if truth_total == 0 {
            0.0
        } else {
            matched as f64 / truth_total as f64
        },
    }
}

/// Scores a mined flow against one ground-truth flow.
#[must_use]
pub fn score_against(mined: &Flow, truth: &Flow) -> FlowScore {
    let (mn, me) = bags(mined);
    let (tn, te) = bags(truth);
    FlowScore {
        nodes: overlap(&mn, &tn),
        edges: overlap(&me, &te),
    }
}

/// One ground-truth flow's best mined match.
#[derive(Debug, Clone)]
pub struct FlowMatch {
    /// Ground-truth flow name.
    pub truth: String,
    /// Best-matching candidate's name (`None` when no candidate exists).
    pub candidate: Option<String>,
    /// The best candidate's score (zeros when no candidate exists).
    pub score: FlowScore,
    /// Whether the match meets the recovery threshold.
    pub recovered: bool,
}

/// Recovery evaluation of a candidate set against ground-truth flows.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-truth best matches, in the order the truths were given.
    pub matches: Vec<FlowMatch>,
    /// Number of recovered ground-truth flows.
    pub recovered: usize,
    /// Number of ground-truth flows evaluated.
    pub total: usize,
    /// The precision/recall threshold applied.
    pub threshold: f64,
}

impl RecoveryReport {
    /// The single-line verdict asserted by CI smokes.
    #[must_use]
    pub fn verdict_line(&self) -> String {
        format!(
            "mine recovery: {}/{} ground-truth flows recovered at P/R >= {:.2}",
            self.recovered, self.total, self.threshold
        )
    }
}

/// Matches every ground-truth flow with its best candidate (by node+edge
/// F1) and applies the recovery `threshold` to all four score components.
#[must_use]
pub fn evaluate(candidates: &[CandidateFlow], truths: &[&Flow], threshold: f64) -> RecoveryReport {
    let mut matches = Vec::new();
    let mut recovered = 0;
    for truth in truths {
        let best = candidates
            .iter()
            .map(|c| (c, score_against(&c.flow, truth)))
            .max_by(|(_, a), (_, b)| {
                (a.nodes.f1() + a.edges.f1()).total_cmp(&(b.nodes.f1() + b.edges.f1()))
            });
        let m = match best {
            Some((cand, score)) => FlowMatch {
                truth: truth.name().to_owned(),
                candidate: Some(cand.flow.name().to_owned()),
                score,
                recovered: score.meets(threshold),
            },
            None => FlowMatch {
                truth: truth.name().to_owned(),
                candidate: None,
                score: FlowScore {
                    nodes: PrScore {
                        precision: 0.0,
                        recall: 0.0,
                    },
                    edges: PrScore {
                        precision: 0.0,
                        recall: 0.0,
                    },
                },
                recovered: false,
            },
        };
        if m.recovered {
            recovered += 1;
        }
        matches.push(m);
    }
    RecoveryReport {
        matches,
        recovered,
        total: truths.len(),
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{assemble_cluster, AssembleConfig};
    use pstrace_flow::{FlowBuilder, MessageCatalog, MessageId};
    use std::sync::Arc;

    fn catalog() -> (Arc<MessageCatalog>, Vec<MessageId>) {
        let mut c = MessageCatalog::new();
        let ids = ["req", "gnt", "done"]
            .iter()
            .map(|n| c.intern(n, 4))
            .collect();
        (Arc::new(c), ids)
    }

    fn truth(cat: &Arc<MessageCatalog>) -> Flow {
        FlowBuilder::new("truth")
            .state("idle")
            .state("wait")
            .state("granted")
            .stop_state("end")
            .initial("idle")
            .edge("idle", "req", "wait")
            .edge("wait", "gnt", "granted")
            .edge("granted", "done", "end")
            .build(cat)
            .expect("valid")
    }

    #[test]
    fn identical_structure_scores_perfectly_despite_renaming() {
        let (cat, m) = catalog();
        let t = truth(&cat);
        let seq = vec![m[0], m[1], m[2]];
        let cand = assemble_cluster("mined-req", &cat, &[&seq, &seq], &AssembleConfig::default())
            .expect("ok");
        let s = score_against(&cand.flow, &t);
        assert_eq!(s.nodes.precision, 1.0);
        assert_eq!(s.nodes.recall, 1.0);
        assert_eq!(s.edges.precision, 1.0);
        assert_eq!(s.edges.recall, 1.0);
        assert!(s.meets(0.9));
    }

    #[test]
    fn missing_tail_lowers_recall_not_precision() {
        let (cat, m) = catalog();
        let t = truth(&cat);
        let seq = vec![m[0], m[1]]; // done never observed
        let cand =
            assemble_cluster("mined-req", &cat, &[&seq], &AssembleConfig::default()).expect("ok");
        let s = score_against(&cand.flow, &t);
        assert!(s.nodes.recall < 1.0);
        assert!(s.edges.recall < 1.0);
        // The req edge's signatures differ too (endpoints changed), so
        // precision also dips; the headline is that recovery fails.
        assert!(!s.meets(0.9));
    }

    #[test]
    fn evaluate_produces_ci_verdict_line() {
        let (cat, m) = catalog();
        let t = truth(&cat);
        let seq = vec![m[0], m[1], m[2]];
        let cand = assemble_cluster("mined-req", &cat, &[&seq, &seq], &AssembleConfig::default())
            .expect("ok");
        let report = evaluate(&[cand], &[&t], 0.9);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.total, 1);
        assert_eq!(report.matches[0].candidate.as_deref(), Some("mined-req"));
        assert_eq!(
            report.verdict_line(),
            "mine recovery: 1/1 ground-truth flows recovered at P/R >= 0.90"
        );
    }

    #[test]
    fn evaluate_with_no_candidates_recovers_nothing() {
        let (cat, _) = catalog();
        let t = truth(&cat);
        let report = evaluate(&[], &[&t], 0.9);
        assert_eq!(report.recovered, 0);
        assert!(report.matches[0].candidate.is_none());
        assert!(!report.matches[0].recovered);
    }
}
