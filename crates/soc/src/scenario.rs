//! Usage scenarios (Table 1): which flows a validation run exercises.

use std::fmt;
use std::sync::Arc;

use pstrace_flow::{FlowError, FlowIndex, IndexedFlow, InterleavedFlow, MessageId};

use crate::ip::Ip;
use crate::protocol::{FlowKind, SocModel};

/// A usage scenario: a named multiset of flow kinds executed together,
/// modeling a frequently used application pattern.
///
/// Instance indices are assigned globally across all participating flows,
/// so every concurrently executing instance is uniquely tagged and all
/// indexed flows are trivially legally indexed (Definition 4).
///
/// # Examples
///
/// ```
/// use pstrace_soc::{SocModel, UsageScenario};
///
/// # fn main() -> Result<(), pstrace_flow::FlowError> {
/// let model = SocModel::t2();
/// let scenario = UsageScenario::scenario1();
/// let product = scenario.interleaving(&model)?;
/// assert!(product.state_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageScenario {
    number: u8,
    name: String,
    flows: Vec<(FlowKind, u32)>,
}

impl UsageScenario {
    /// Builds a custom scenario from `(kind, instance count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty or any instance count is zero.
    #[must_use]
    pub fn custom(number: u8, name: &str, flows: &[(FlowKind, u32)]) -> Self {
        assert!(!flows.is_empty(), "a scenario needs at least one flow");
        assert!(
            flows.iter().all(|&(_, n)| n > 0),
            "instance counts must be positive"
        );
        UsageScenario {
            number,
            name: name.to_owned(),
            flows: flows.to_vec(),
        }
    }

    /// Table 1, Scenario 1: PIOR + PIOW + Mon (NCU, DMU, SIU).
    #[must_use]
    pub fn scenario1() -> Self {
        Self::custom(
            1,
            "Scenario 1",
            &[
                (FlowKind::PioRead, 1),
                (FlowKind::PioWrite, 1),
                (FlowKind::Mondo, 1),
            ],
        )
    }

    /// Table 1, Scenario 2: NCUU + NCUD + Mon (NCU, MCU, CCX).
    ///
    /// The memory paths run two concurrent instances each — memory traffic
    /// is never solitary — which is what makes this scenario's
    /// interleaving deep enough for interesting path localization.
    #[must_use]
    pub fn scenario2() -> Self {
        Self::custom(
            2,
            "Scenario 2",
            &[
                (FlowKind::NcuUpstream, 2),
                (FlowKind::NcuDownstream, 2),
                (FlowKind::Mondo, 1),
            ],
        )
    }

    /// Table 1, Scenario 3: PIOR + PIOW + NCUU + NCUD (NCU, MCU, DMU, SIU).
    #[must_use]
    pub fn scenario3() -> Self {
        Self::custom(
            3,
            "Scenario 3",
            &[
                (FlowKind::PioRead, 1),
                (FlowKind::PioWrite, 1),
                (FlowKind::NcuUpstream, 1),
                (FlowKind::NcuDownstream, 1),
            ],
        )
    }

    /// An extension scenario beyond Table 1: two concurrent cache-line
    /// acquisitions (the only branching flow in the model) plus a CPU
    /// memory request — the stress case for path localization, since the
    /// debugger must recover *which grant path* each instance took.
    #[must_use]
    pub fn scenario_coherence() -> Self {
        Self::custom(
            5,
            "Scenario 5 (coherence)",
            &[(FlowKind::Coherence, 2), (FlowKind::NcuDownstream, 1)],
        )
    }

    /// The three scenarios of Table 1.
    #[must_use]
    pub fn all_paper_scenarios() -> Vec<UsageScenario> {
        vec![Self::scenario1(), Self::scenario2(), Self::scenario3()]
    }

    /// An extension scenario beyond Table 1: PIO traffic and a Mondo
    /// interrupt *with concurrent DMA reads* — the configuration the §5.7
    /// debugging walkthrough reasons about when it checks for "prior DMA
    /// read messages" before blaming the DMU's interrupt generation.
    #[must_use]
    pub fn scenario_dma() -> Self {
        Self::custom(
            4,
            "Scenario 4 (DMA)",
            &[
                (FlowKind::PioRead, 1),
                (FlowKind::PioWrite, 1),
                (FlowKind::Mondo, 1),
                (FlowKind::DmaRead, 1),
            ],
        )
    }

    /// Scenario number (1–3 for the paper's scenarios).
    #[must_use]
    pub fn number(&self) -> u8 {
        self.number
    }

    /// Scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(kind, instance count)` pairs.
    #[must_use]
    pub fn flows(&self) -> &[(FlowKind, u32)] {
        &self.flows
    }

    /// Whether the scenario executes `kind` (the ✓/✗ matrix of Table 1).
    #[must_use]
    pub fn executes(&self, kind: FlowKind) -> bool {
        self.flows.iter().any(|&(k, _)| k == kind)
    }

    /// Total number of flow instances.
    #[must_use]
    pub fn instance_count(&self) -> u32 {
        self.flows.iter().map(|&(_, n)| n).sum()
    }

    /// Instantiates the scenario's flows with globally unique indices
    /// `1..=instance_count`, in declaration order.
    #[must_use]
    pub fn instances(&self, model: &SocModel) -> Vec<IndexedFlow> {
        let mut out = Vec::new();
        let mut next = 1u32;
        for &(kind, count) in &self.flows {
            for _ in 0..count {
                out.push(IndexedFlow::new(
                    Arc::clone(model.flow(kind)),
                    FlowIndex(next),
                ));
                next += 1;
            }
        }
        out
    }

    /// Builds the scenario's interleaved flow.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`] from the product construction (e.g. if a
    /// custom scenario exceeds the state budget).
    pub fn interleaving(&self, model: &SocModel) -> Result<InterleavedFlow, FlowError> {
        InterleavedFlow::build(&self.instances(model))
    }

    /// The distinct messages used by the scenario's flows.
    #[must_use]
    pub fn messages(&self, model: &SocModel) -> Vec<MessageId> {
        let mut out: Vec<MessageId> = Vec::new();
        for &(kind, _) in &self.flows {
            for &m in model.flow(kind).messages() {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// The IPs participating in the scenario (sources and destinations of
    /// its messages), sorted.
    #[must_use]
    pub fn participating_ips(&self, model: &SocModel) -> Vec<Ip> {
        let mut ips: Vec<Ip> = Vec::new();
        for m in self.messages(model) {
            if let Some(pair) = model.endpoints(m) {
                for ip in [pair.src, pair.dst] {
                    if !ips.contains(&ip) {
                        ips.push(ip);
                    }
                }
            }
        }
        ips.sort_unstable();
        ips
    }
}

impl fmt::Display for UsageScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_participation_matrix() {
        let s1 = UsageScenario::scenario1();
        assert!(s1.executes(FlowKind::PioRead));
        assert!(s1.executes(FlowKind::PioWrite));
        assert!(s1.executes(FlowKind::Mondo));
        assert!(!s1.executes(FlowKind::NcuUpstream));
        assert!(!s1.executes(FlowKind::NcuDownstream));

        let s2 = UsageScenario::scenario2();
        assert!(!s2.executes(FlowKind::PioRead));
        assert!(s2.executes(FlowKind::NcuUpstream));
        assert!(s2.executes(FlowKind::NcuDownstream));
        assert!(s2.executes(FlowKind::Mondo));

        let s3 = UsageScenario::scenario3();
        assert!(s3.executes(FlowKind::PioRead));
        assert!(!s3.executes(FlowKind::Mondo));
        assert_eq!(s3.flows().len(), 4);
    }

    #[test]
    fn indices_are_globally_unique() {
        let model = SocModel::t2();
        let s3 = UsageScenario::scenario3();
        let instances = s3.instances(&model);
        assert_eq!(instances.len(), 4);
        let mut indices: Vec<u32> = instances.iter().map(|f| f.index().0).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices, vec![1, 2, 3, 4]);
    }

    #[test]
    fn interleavings_build_for_all_scenarios() {
        let model = SocModel::t2();
        for s in UsageScenario::all_paper_scenarios() {
            let u = s.interleaving(&model).unwrap();
            assert!(u.state_count() > 10, "{}", s.name());
            assert_eq!(u.initial_states().len(), 1);
            assert!(!u.stop_states().is_empty());
        }
    }

    #[test]
    fn scenario1_product_size() {
        // PIOR (6) × PIOW (3) × Mon (6) = 108 tuples; Mon's single atomic
        // state excludes nothing (no other flow has atomics).
        let model = SocModel::t2();
        let u = UsageScenario::scenario1().interleaving(&model).unwrap();
        assert_eq!(u.state_count(), 108);
    }

    #[test]
    fn participating_ips_match_table1_up_to_interconnect() {
        let model = SocModel::t2();
        let ips1 = UsageScenario::scenario1().participating_ips(&model);
        for ip in [Ip::Ncu, Ip::Dmu, Ip::Siu] {
            assert!(ips1.contains(&ip), "scenario 1 missing {ip}");
        }
        let ips2 = UsageScenario::scenario2().participating_ips(&model);
        for ip in [Ip::Ncu, Ip::Mcu, Ip::Ccx] {
            assert!(ips2.contains(&ip), "scenario 2 missing {ip}");
        }
        let ips3 = UsageScenario::scenario3().participating_ips(&model);
        for ip in [Ip::Ncu, Ip::Mcu, Ip::Dmu, Ip::Siu] {
            assert!(ips3.contains(&ip), "scenario 3 missing {ip}");
        }
    }

    #[test]
    fn messages_are_deduplicated_across_flows() {
        // siincu is used by both PIOR and Mon but appears once.
        let model = SocModel::t2();
        let msgs = UsageScenario::scenario1().messages(&model);
        let siincu = model.catalog().get("siincu").unwrap();
        assert_eq!(msgs.iter().filter(|&&m| m == siincu).count(), 1);
        assert_eq!(msgs.len(), 11, "5 + 2 + 5 minus shared siincu");
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn custom_rejects_empty() {
        let _ = UsageScenario::custom(9, "empty", &[]);
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(UsageScenario::scenario1().to_string(), "Scenario 1");
    }
}
