//! Wire-format capture: the encode path beside [`capture`](crate::capture).
//!
//! Where [`capture`](crate::capture) models the trace buffer at the record
//! level (what survives), this module runs the same filtering through the
//! bit-level wire codec of `pstrace-wire`: events become fixed-width
//! frames in a circular frame ring, and decoding the ring's read-out
//! reconstructs the capture. The two paths share
//! [`record_for_event`](crate::trace::record_for_event), so for any
//! simulation and configuration
//! `decode(encode(events)) == capture(events)` bit-for-bit — including
//! circular truncation to the newest `depth` records.

use pstrace_flow::MessageCatalog;
use pstrace_wire::decode_stream_chunked;
pub use pstrace_wire::{
    read_ptw, read_ptw_any, write_ptw, write_ptw_with, DamageReason, DamagedFrame, DecodeReport,
    EncodedStream, Encoder, FrameProfile, ProfileV1, PtwMeta, StreamDecoder, WireError, WireRecord,
    WireSchema, PTW_VERSION_V2, SYNC_EVERY_RANGE,
};

use pstrace_core::Parallelism;

use crate::engine::MessageEvent;
use crate::protocol::SocModel;
use crate::trace::{record_for_event, CapturedTrace, TraceBufferConfig, TraceRecord};

/// Builds the wire schema of a trace-buffer configuration over a
/// `body_width`-bit buffer: one lane per fully traced message in
/// configuration order, then one lane per packed subgroup.
///
/// # Errors
///
/// Propagates [`WireSchema::new`] errors (zero body width, lanes
/// exceeding the body).
pub fn wire_schema(
    model: &SocModel,
    config: &TraceBufferConfig,
    body_width: u32,
) -> Result<WireSchema, WireError> {
    WireSchema::new(
        model.catalog(),
        &config.messages,
        &config.groups,
        body_width,
    )
}

fn to_wire(r: &TraceRecord) -> WireRecord {
    WireRecord {
        time: r.time,
        message: r.message,
        value: r.value,
        partial: r.partial,
    }
}

fn to_trace(r: &WireRecord) -> TraceRecord {
    TraceRecord {
        time: r.time,
        message: r.message,
        value: r.value,
        partial: r.partial,
    }
}

/// Encodes an already-captured trace into a wire stream through a
/// circular frame ring of `depth` frames (`None` = unbounded).
///
/// # Errors
///
/// Returns the first per-record [`WireError`] (a record whose message has
/// no slot, or a field overflowing its width).
///
/// # Panics
///
/// Panics on `depth == Some(0)` — the same contract as
/// [`TraceBufferConfig::with_depth`].
pub fn encode_capture(
    schema: &WireSchema,
    trace: &CapturedTrace,
    depth: Option<usize>,
) -> Result<EncodedStream, WireError> {
    let mut enc = Encoder::new(schema, depth);
    for r in trace.records() {
        enc.push(&to_wire(r))?;
    }
    Ok(enc.finish())
}

/// Encodes a raw event stream directly: filters each event through the
/// capture semantics of `config` (full messages win, widest subgroup
/// truncates) and frames the survivors through a circular ring of
/// `config.depth` frames. Equivalent to
/// `encode_capture(schema, capture_events(...), config.depth)` but
/// without materializing the intermediate trace.
///
/// # Errors
///
/// Returns the first per-record [`WireError`].
///
/// # Panics
///
/// Panics when `config.depth` is `Some(0)`.
pub fn encode_events(
    catalog: &MessageCatalog,
    schema: &WireSchema,
    events: &[MessageEvent],
    config: &TraceBufferConfig,
) -> Result<EncodedStream, WireError> {
    let mut enc = Encoder::new(schema, config.depth);
    for e in events {
        if let Some(r) = record_for_event(catalog, config, e) {
            enc.push(&to_wire(&r))?;
        }
    }
    Ok(enc.finish())
}

/// Decodes a wire stream back into a [`CapturedTrace`], with the decode
/// report alongside (damaged frames, idle frames, measured utilization).
///
/// The records of the returned trace are exactly the report's surviving
/// records; on a clean stream produced by [`encode_capture`] they equal
/// the original capture.
#[must_use]
pub fn decode_capture(
    schema: &WireSchema,
    bytes: &[u8],
    bit_len: Option<u64>,
    parallelism: Parallelism,
) -> (CapturedTrace, DecodeReport) {
    let report = decode_stream_chunked(schema, bytes, bit_len, parallelism);
    let trace = CapturedTrace::from_records(report.records.iter().map(to_trace).collect());
    (trace, report)
}

/// [`encode_capture`] under an explicit payload profile: the identity
/// v1 dialect, or the compressed v2 dialect of `pstrace-codec`. The
/// capture/retention semantics (circular `depth`, record filtering) are
/// profile-independent; only the bit layout differs.
///
/// # Errors
///
/// The profile's per-record [`WireError`]s — identical across profiles.
///
/// # Panics
///
/// Panics on `depth == Some(0)`.
pub fn encode_capture_with(
    schema: &WireSchema,
    trace: &CapturedTrace,
    depth: Option<usize>,
    profile: &dyn FrameProfile,
) -> Result<EncodedStream, WireError> {
    let records: Vec<WireRecord> = trace.records().iter().map(to_wire).collect();
    profile.encode(schema, &records, depth)
}

/// [`encode_events`] under an explicit payload profile.
///
/// # Errors
///
/// The profile's per-record [`WireError`]s.
///
/// # Panics
///
/// Panics when `config.depth` is `Some(0)`.
pub fn encode_events_with(
    catalog: &MessageCatalog,
    schema: &WireSchema,
    events: &[MessageEvent],
    config: &TraceBufferConfig,
    profile: &dyn FrameProfile,
) -> Result<EncodedStream, WireError> {
    let records: Vec<WireRecord> = events
        .iter()
        .filter_map(|e| record_for_event(catalog, config, e))
        .map(|r| to_wire(&r))
        .collect();
    profile.encode(schema, &records, config.depth)
}

/// [`decode_capture`] under an explicit payload profile. Corruption
/// surfaces in the report's damage list under either profile, never as a
/// panic.
#[must_use]
pub fn decode_capture_with(
    schema: &WireSchema,
    bytes: &[u8],
    bit_len: Option<u64>,
    profile: &dyn FrameProfile,
) -> (CapturedTrace, DecodeReport) {
    let report = profile.decode(schema, bytes, bit_len);
    let trace = CapturedTrace::from_records(report.records.iter().map(to_trace).collect());
    (trace, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::scenario::UsageScenario;
    use crate::trace::capture;

    fn setup() -> (SocModel, crate::engine::SimOutcome, TraceBufferConfig) {
        let model = SocModel::t2();
        let out = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(7)).run();
        let catalog = model.catalog();
        let config = TraceBufferConfig {
            messages: vec![
                catalog.get("siincu").unwrap(),
                catalog.get("piowcrd").unwrap(),
            ],
            groups: vec![catalog.get_group("dmusiidata.cputhreadid").unwrap()],
            depth: None,
        };
        (model, out, config)
    }

    #[test]
    fn encode_decode_is_capture() {
        let (model, out, config) = setup();
        let schema = wire_schema(&model, &config, 32).unwrap();
        let direct = capture(&model, &out, &config);
        let stream = encode_events(model.catalog(), &schema, &out.events, &config).unwrap();
        let (decoded, report) = decode_capture(
            &schema,
            &stream.bytes,
            Some(stream.bit_len),
            Parallelism::Off,
        );
        assert!(report.is_clean());
        assert_eq!(decoded, direct);
    }

    #[test]
    fn profile_v1_paths_are_byte_identical_to_the_direct_paths() {
        let (model, out, mut config) = setup();
        config.depth = Some(5);
        let schema = wire_schema(&model, &config, 32).unwrap();
        let direct = capture(&model, &out, &config);
        let plain = encode_capture(&schema, &direct, config.depth).unwrap();
        let via_profile = encode_capture_with(&schema, &direct, config.depth, &ProfileV1).unwrap();
        assert_eq!(via_profile, plain);
        let via_events =
            encode_events_with(model.catalog(), &schema, &out.events, &config, &ProfileV1).unwrap();
        assert_eq!(via_events, plain);
        let (decoded, report) =
            decode_capture_with(&schema, &plain.bytes, Some(plain.bit_len), &ProfileV1);
        assert!(report.is_clean());
        assert_eq!(decoded, direct);
    }

    #[test]
    fn encode_capture_matches_encode_events() {
        let (model, out, mut config) = setup();
        config.depth = Some(3);
        let schema = wire_schema(&model, &config, 32).unwrap();
        let direct = capture(&model, &out, &config);
        let via_trace = encode_capture(&schema, &direct, config.depth).unwrap();
        let via_events = encode_events(model.catalog(), &schema, &out.events, &config).unwrap();
        assert_eq!(via_trace, via_events);
    }
}
