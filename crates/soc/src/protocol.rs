//! The five T2 protocol flows of the paper's evaluation (Table 1).
//!
//! Flow shapes (state count, message count) match Table 1 exactly:
//!
//! | Flow | States | Messages | Role |
//! |---|---|---|---|
//! | PIOR — PIO Read | 6 | 5 | CPU programmed-IO read through NCU/DMU/SIU |
//! | PIOW — PIO Write | 3 | 2 | CPU programmed-IO posted write |
//! | NCUU — NCU Upstream | 4 | 3 | memory read return MCU → NCU → CCX |
//! | NCUD — NCU Downstream | 3 | 2 | CPU request CCX → NCU → MCU |
//! | Mon — Mondo Interrupt | 6 | 5 | DMU-sourced Mondo interrupt via SIU to NCU |
//!
//! Message names follow the paper where it names them (`reqtot`, `grant`,
//! `mondoacknack`, `siincu`, `piowcrd`, `dmusiidata` with its 6-bit
//! `cputhreadid` subgroup); the rest use T2-flavored names. Each message is
//! annotated with its source and destination IP, which defines the *legal
//! IP pairs* of §5.6.

use std::collections::HashMap;
use std::sync::Arc;

use pstrace_flow::{Flow, FlowBuilder, MessageCatalog, MessageId};

use crate::ip::{Ip, IpPair};

/// The protocol flows of the T2 model: the five Table 1 flows plus the
/// DMA read/write extensions exercised by the paper's §5.7 reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKind {
    /// PIO Read.
    PioRead,
    /// PIO Write.
    PioWrite,
    /// NCU Upstream (memory return path).
    NcuUpstream,
    /// NCU Downstream (CPU request path).
    NcuDownstream,
    /// Mondo interrupt delivery.
    Mondo,
    /// DMA read: DMU fetches system memory through SIU and MCU. The §5.7
    /// walkthrough reasons about the absence of "prior DMA read
    /// messages"; this flow makes that reasoning executable. Not part of
    /// Table 1.
    DmaRead,
    /// DMA write: DMU posts data towards memory through SIU. Not part of
    /// Table 1.
    DmaWrite,
    /// Cache-line acquisition with a *branching* outcome: the directory
    /// grants the line Shared or Exclusive, and the exclusive path must
    /// invalidate the other sharer first. The only non-linear flow in the
    /// model — the realistic stress case for path localization. Not part
    /// of Table 1.
    Coherence,
}

impl FlowKind {
    /// The five Table 1 flows, in column order.
    pub const PAPER: [FlowKind; 5] = [
        FlowKind::PioRead,
        FlowKind::PioWrite,
        FlowKind::NcuUpstream,
        FlowKind::NcuDownstream,
        FlowKind::Mondo,
    ];

    /// Every modeled flow: the Table 1 five plus the extensions.
    pub const ALL: [FlowKind; 8] = [
        FlowKind::PioRead,
        FlowKind::PioWrite,
        FlowKind::NcuUpstream,
        FlowKind::NcuDownstream,
        FlowKind::Mondo,
        FlowKind::DmaRead,
        FlowKind::DmaWrite,
        FlowKind::Coherence,
    ];

    /// Abbreviation used in the paper's tables.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            FlowKind::PioRead => "PIOR",
            FlowKind::PioWrite => "PIOW",
            FlowKind::NcuUpstream => "NCUU",
            FlowKind::NcuDownstream => "NCUD",
            FlowKind::Mondo => "Mon",
            FlowKind::DmaRead => "DMAR",
            FlowKind::DmaWrite => "DMAW",
            FlowKind::Coherence => "COH",
        }
    }

    /// Full name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::PioRead => "PIO Read",
            FlowKind::PioWrite => "PIO Write",
            FlowKind::NcuUpstream => "NCU Upstream",
            FlowKind::NcuDownstream => "NCU Downstream",
            FlowKind::Mondo => "Mondo Interrupt",
            FlowKind::DmaRead => "DMA Read",
            FlowKind::DmaWrite => "DMA Write",
            FlowKind::Coherence => "Coherence",
        }
    }
}

impl std::fmt::Display for FlowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The complete T2-like SoC protocol model: shared message catalog, the
/// five flows, and per-message IP endpoints.
///
/// # Examples
///
/// ```
/// use pstrace_soc::{FlowKind, SocModel};
///
/// let model = SocModel::t2();
/// let pior = model.flow(FlowKind::PioRead);
/// assert_eq!(pior.state_count(), 6);
/// assert_eq!(pior.messages().len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct SocModel {
    catalog: Arc<MessageCatalog>,
    flows: HashMap<FlowKind, Arc<Flow>>,
    endpoints: HashMap<MessageId, IpPair>,
}

impl SocModel {
    /// Builds the OpenSPARC-T2-like model used by all experiments.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in flow specifications are malformed, which
    /// is covered by tests.
    #[must_use]
    pub fn t2() -> Self {
        let mut catalog = MessageCatalog::new();

        // PIO Read path: CCX -> NCU -> DMU, response via SIU, credit back.
        let piorreq = catalog.intern("piorreq", 10);
        let ncudmupio = catalog.intern("ncudmupio", 8);
        let dmupioack = catalog.intern("dmupioack", 7);
        let siincu = catalog.intern("siincu", 8);
        let piorcrd = catalog.intern("piorcrd", 5);
        // PIO Write: posted write plus returned credit.
        let piowreq = catalog.intern("piowreq", 12);
        let piowcrd = catalog.intern("piowcrd", 5);
        // NCU Upstream: memory return MCU -> NCU -> CCX -> CPU.
        let mcudata = catalog.intern("mcudata", 16);
        let ncucpxgnt = catalog.intern("ncucpxgnt", 5);
        let cpxdata = catalog.intern("cpxdata", 16);
        // NCU Downstream: CPU request CCX -> NCU -> MCU.
        let cpxreq = catalog.intern("cpxreq", 12);
        let ncumcureq = catalog.intern("ncumcureq", 14);
        // Mondo interrupt: DMU -> SIU -> NCU with ack/nack.
        let reqtot = catalog.intern("reqtot", 5);
        let grant = catalog.intern("grant", 5);
        let dmusiidata = catalog.intern("dmusiidata", 20);
        let mondoacknack = catalog.intern("mondoacknack", 2);
        // DMA read/write: DMU <-> SIU <-> MCU.
        let dmarreq = catalog.intern("dmarreq", 12);
        let siumcurd = catalog.intern("siumcurd", 10);
        let mcurddata = catalog.intern("mcurddata", 16);
        let siudmurd = catalog.intern("siudmurd", 16);
        let dmawreq = catalog.intern("dmawreq", 14);
        let siumcuwr = catalog.intern("siumcuwr", 12);
        let mcuwrack = catalog.intern("mcuwrack", 4);
        // Coherence: CPU <-> CCX line acquisition with a branching grant.
        let cohreq = catalog.intern("cohreq", 8);
        let gnts = catalog.intern("gnts", 6);
        let gntx = catalog.intern("gntx", 6);
        let inval = catalog.intern("inval", 4);
        let invack = catalog.intern("invack", 2);
        let cohfill = catalog.intern("cohfill", 16);

        // Subgroups available to the Step 3 packing loop.
        catalog.intern_group(dmusiidata, "cputhreadid", 6);
        catalog.intern_group(dmusiidata, "mondoid", 8);
        catalog.intern_group(piowreq, "bytemask", 2);
        catalog.intern_group(mcudata, "ecc", 5);
        catalog.intern_group(cpxdata, "tag", 6);
        catalog.intern_group(piorreq, "addrlo", 6);
        catalog.intern_group(mcurddata, "ecc", 5);
        catalog.intern_group(dmawreq, "addrhi", 6);
        catalog.intern_group(siudmurd, "tag", 4);

        let catalog = Arc::new(catalog);

        let mut endpoints = HashMap::new();
        endpoints.insert(piorreq, IpPair::new(Ip::Ccx, Ip::Ncu));
        endpoints.insert(ncudmupio, IpPair::new(Ip::Ncu, Ip::Dmu));
        endpoints.insert(dmupioack, IpPair::new(Ip::Dmu, Ip::Siu));
        endpoints.insert(siincu, IpPair::new(Ip::Siu, Ip::Ncu));
        endpoints.insert(piorcrd, IpPair::new(Ip::Ncu, Ip::Ccx));
        endpoints.insert(piowreq, IpPair::new(Ip::Ccx, Ip::Ncu));
        endpoints.insert(piowcrd, IpPair::new(Ip::Ncu, Ip::Ccx));
        endpoints.insert(mcudata, IpPair::new(Ip::Mcu, Ip::Ncu));
        endpoints.insert(ncucpxgnt, IpPair::new(Ip::Ncu, Ip::Ccx));
        endpoints.insert(cpxdata, IpPair::new(Ip::Ccx, Ip::Cpu));
        endpoints.insert(cpxreq, IpPair::new(Ip::Ccx, Ip::Ncu));
        endpoints.insert(ncumcureq, IpPair::new(Ip::Ncu, Ip::Mcu));
        endpoints.insert(reqtot, IpPair::new(Ip::Dmu, Ip::Siu));
        endpoints.insert(grant, IpPair::new(Ip::Siu, Ip::Dmu));
        endpoints.insert(dmusiidata, IpPair::new(Ip::Dmu, Ip::Siu));
        endpoints.insert(mondoacknack, IpPair::new(Ip::Ncu, Ip::Siu));
        endpoints.insert(dmarreq, IpPair::new(Ip::Dmu, Ip::Siu));
        endpoints.insert(siumcurd, IpPair::new(Ip::Siu, Ip::Mcu));
        endpoints.insert(mcurddata, IpPair::new(Ip::Mcu, Ip::Siu));
        endpoints.insert(siudmurd, IpPair::new(Ip::Siu, Ip::Dmu));
        endpoints.insert(dmawreq, IpPair::new(Ip::Dmu, Ip::Siu));
        endpoints.insert(siumcuwr, IpPair::new(Ip::Siu, Ip::Mcu));
        endpoints.insert(mcuwrack, IpPair::new(Ip::Mcu, Ip::Siu));
        endpoints.insert(cohreq, IpPair::new(Ip::Cpu, Ip::Ccx));
        endpoints.insert(gnts, IpPair::new(Ip::Ccx, Ip::Cpu));
        endpoints.insert(gntx, IpPair::new(Ip::Ccx, Ip::Cpu));
        endpoints.insert(inval, IpPair::new(Ip::Ccx, Ip::Cpu));
        endpoints.insert(invack, IpPair::new(Ip::Cpu, Ip::Ccx));
        endpoints.insert(cohfill, IpPair::new(Ip::Ccx, Ip::Cpu));

        let mut flows = HashMap::new();
        flows.insert(
            FlowKind::PioRead,
            Arc::new(
                FlowBuilder::new("PIO Read")
                    .state("PiorIdle")
                    .state("PiorIssued")
                    .state("PiorAtDmu")
                    .state("PiorResp")
                    .state("PiorCredit")
                    .stop_state("PiorDone")
                    .initial("PiorIdle")
                    .edge("PiorIdle", "piorreq", "PiorIssued")
                    .edge("PiorIssued", "ncudmupio", "PiorAtDmu")
                    .edge("PiorAtDmu", "dmupioack", "PiorResp")
                    .edge("PiorResp", "siincu", "PiorCredit")
                    .edge("PiorCredit", "piorcrd", "PiorDone")
                    .build(&catalog)
                    .expect("PIOR flow is well-formed"),
            ),
        );
        flows.insert(
            FlowKind::PioWrite,
            Arc::new(
                FlowBuilder::new("PIO Write")
                    .state("PiowIdle")
                    .state("PiowIssued")
                    .stop_state("PiowDone")
                    .initial("PiowIdle")
                    .edge("PiowIdle", "piowreq", "PiowIssued")
                    .edge("PiowIssued", "piowcrd", "PiowDone")
                    .build(&catalog)
                    .expect("PIOW flow is well-formed"),
            ),
        );
        flows.insert(
            FlowKind::NcuUpstream,
            Arc::new(
                FlowBuilder::new("NCU Upstream")
                    .state("NcuuIdle")
                    .state("NcuuAtNcu")
                    .state("NcuuGranted")
                    .stop_state("NcuuDone")
                    .initial("NcuuIdle")
                    .edge("NcuuIdle", "mcudata", "NcuuAtNcu")
                    .edge("NcuuAtNcu", "ncucpxgnt", "NcuuGranted")
                    .edge("NcuuGranted", "cpxdata", "NcuuDone")
                    .build(&catalog)
                    .expect("NCUU flow is well-formed"),
            ),
        );
        flows.insert(
            FlowKind::NcuDownstream,
            Arc::new(
                FlowBuilder::new("NCU Downstream")
                    .state("NcudIdle")
                    .state("NcudAtNcu")
                    .stop_state("NcudDone")
                    .initial("NcudIdle")
                    .edge("NcudIdle", "cpxreq", "NcudAtNcu")
                    .edge("NcudAtNcu", "ncumcureq", "NcudDone")
                    .build(&catalog)
                    .expect("NCUD flow is well-formed"),
            ),
        );
        flows.insert(
            FlowKind::Mondo,
            Arc::new(
                FlowBuilder::new("Mondo Interrupt")
                    .state("MonIdle")
                    .state("MonReq")
                    .state("MonGranted")
                    .state("MonPayload")
                    // NCU's interrupt-table update is indivisible: while it
                    // dispatches a Mondo no other flow may sit in an atomic
                    // state.
                    .atomic_state("MonDispatch")
                    .stop_state("MonDone")
                    .initial("MonIdle")
                    .edge("MonIdle", "reqtot", "MonReq")
                    .edge("MonReq", "grant", "MonGranted")
                    .edge("MonGranted", "dmusiidata", "MonPayload")
                    .edge("MonPayload", "siincu", "MonDispatch")
                    .edge("MonDispatch", "mondoacknack", "MonDone")
                    .build(&catalog)
                    .expect("Mon flow is well-formed"),
            ),
        );

        flows.insert(
            FlowKind::DmaRead,
            Arc::new(
                FlowBuilder::new("DMA Read")
                    .state("DmarIdle")
                    .state("DmarAtSiu")
                    .state("DmarAtMcu")
                    .state("DmarData")
                    .stop_state("DmarDone")
                    .initial("DmarIdle")
                    .edge("DmarIdle", "dmarreq", "DmarAtSiu")
                    .edge("DmarAtSiu", "siumcurd", "DmarAtMcu")
                    .edge("DmarAtMcu", "mcurddata", "DmarData")
                    .edge("DmarData", "siudmurd", "DmarDone")
                    .build(&catalog)
                    .expect("DMAR flow is well-formed"),
            ),
        );
        flows.insert(
            FlowKind::DmaWrite,
            Arc::new(
                FlowBuilder::new("DMA Write")
                    .state("DmawIdle")
                    .state("DmawAtSiu")
                    .state("DmawAtMcu")
                    .stop_state("DmawDone")
                    .initial("DmawIdle")
                    .edge("DmawIdle", "dmawreq", "DmawAtSiu")
                    .edge("DmawAtSiu", "siumcuwr", "DmawAtMcu")
                    .edge("DmawAtMcu", "mcuwrack", "DmawDone")
                    .build(&catalog)
                    .expect("DMAW flow is well-formed"),
            ),
        );

        flows.insert(
            FlowKind::Coherence,
            Arc::new(
                FlowBuilder::new("Coherence")
                    .state("CohIdle")
                    .state("CohWait")
                    .state("CohShared")
                    .state("CohInval")
                    .state("CohOwned")
                    .stop_state("CohDone")
                    .initial("CohIdle")
                    .edge("CohIdle", "cohreq", "CohWait")
                    // Branch: the crossbar grants Shared directly, or goes
                    // Exclusive via an invalidate round trip.
                    .edge("CohWait", "gnts", "CohShared")
                    .edge("CohWait", "gntx", "CohInval")
                    .edge("CohInval", "inval", "CohOwned")
                    .edge("CohOwned", "invack", "CohShared")
                    .edge("CohShared", "cohfill", "CohDone")
                    .build(&catalog)
                    .expect("COH flow is well-formed"),
            ),
        );

        SocModel {
            catalog,
            flows,
            endpoints,
        }
    }

    /// The shared message catalog.
    #[must_use]
    pub fn catalog(&self) -> &Arc<MessageCatalog> {
        &self.catalog
    }

    /// Returns a copy of the model with `kind`'s flow specification
    /// replaced by `flow` — the substitution point for *mined* flows: the
    /// capture side keeps the reference model while the analysis side
    /// (interleaving → selection → localization) runs on the inferred
    /// spec.
    ///
    /// # Panics
    ///
    /// Panics when `flow` was not built against this model's catalog:
    /// message identities must be shared for selection and localization
    /// to be comparable.
    #[must_use]
    pub fn with_flow(&self, kind: FlowKind, flow: Arc<Flow>) -> SocModel {
        assert!(
            Arc::ptr_eq(flow.catalog(), &self.catalog),
            "replacement flow must share the model's message catalog"
        );
        let mut model = self.clone();
        model.flows.insert(kind, flow);
        model
    }

    /// The flow specification for `kind`.
    ///
    /// # Panics
    ///
    /// Never panics: every [`FlowKind`] is present in a constructed model.
    #[must_use]
    pub fn flow(&self, kind: FlowKind) -> &Arc<Flow> {
        &self.flows[&kind]
    }

    /// Source/destination IPs of `message`.
    #[must_use]
    pub fn endpoints(&self, message: MessageId) -> Option<IpPair> {
        self.endpoints.get(&message).copied()
    }

    /// The IP sourcing `message`, if known.
    #[must_use]
    pub fn source_ip(&self, message: MessageId) -> Option<Ip> {
        self.endpoints(message).map(|p| p.src)
    }

    /// All messages sourced by `ip`.
    #[must_use]
    pub fn messages_from(&self, ip: Ip) -> Vec<MessageId> {
        let mut v: Vec<MessageId> = self
            .endpoints
            .iter()
            .filter(|(_, p)| p.src == ip)
            .map(|(m, _)| *m)
            .collect();
        v.sort_unstable();
        v
    }

    /// Distinct legal IP pairs over the given messages (§5.6).
    #[must_use]
    pub fn legal_ip_pairs(&self, messages: &[MessageId]) -> Vec<IpPair> {
        let mut pairs: Vec<IpPair> = messages.iter().filter_map(|m| self.endpoints(*m)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_flow_substitutes_one_spec_and_keeps_the_rest() {
        let model = SocModel::t2();
        let replacement = Arc::new(
            FlowBuilder::new("mined-piowreq")
                .state("a")
                .stop_state("b")
                .initial("a")
                .edge("a", "piowreq", "b")
                .build(model.catalog())
                .expect("valid"),
        );
        let routed = model.with_flow(FlowKind::PioWrite, Arc::clone(&replacement));
        assert!(Arc::ptr_eq(routed.flow(FlowKind::PioWrite), &replacement));
        assert!(Arc::ptr_eq(
            routed.flow(FlowKind::PioRead),
            model.flow(FlowKind::PioRead)
        ));
        assert!(Arc::ptr_eq(routed.catalog(), model.catalog()));
    }

    #[test]
    #[should_panic(expected = "share the model's message catalog")]
    fn with_flow_rejects_foreign_catalogs() {
        let model = SocModel::t2();
        let mut other = MessageCatalog::new();
        other.intern("piowreq", 1);
        let foreign = Arc::new(
            FlowBuilder::new("foreign")
                .state("a")
                .stop_state("b")
                .initial("a")
                .edge("a", "piowreq", "b")
                .build(&Arc::new(other))
                .expect("valid"),
        );
        let _ = model.with_flow(FlowKind::PioWrite, foreign);
    }

    #[test]
    fn flow_shapes_match_table_1() {
        let model = SocModel::t2();
        let expect = [
            (FlowKind::PioRead, 6, 5),
            (FlowKind::PioWrite, 3, 2),
            (FlowKind::NcuUpstream, 4, 3),
            (FlowKind::NcuDownstream, 3, 2),
            (FlowKind::Mondo, 6, 5),
            (FlowKind::DmaRead, 5, 4),
            (FlowKind::DmaWrite, 4, 3),
            (FlowKind::Coherence, 6, 6),
        ];
        for (kind, states, messages) in expect {
            let f = model.flow(kind);
            assert_eq!(f.state_count(), states, "{kind} states");
            assert_eq!(f.messages().len(), messages, "{kind} messages");
        }
    }

    #[test]
    fn dmusiidata_is_20_bits_with_6_bit_cputhreadid() {
        let model = SocModel::t2();
        let c = model.catalog();
        let d = c.get("dmusiidata").unwrap();
        assert_eq!(c.width(d), 20);
        let g = c.get_group("dmusiidata.cputhreadid").unwrap();
        assert_eq!(c.group(g).width(), 6);
    }

    #[test]
    fn every_message_has_endpoints() {
        let model = SocModel::t2();
        for (id, _) in model.catalog().iter() {
            assert!(model.endpoints(id).is_some(), "missing endpoints");
        }
    }

    #[test]
    fn siincu_is_shared_between_pior_and_mondo() {
        let model = SocModel::t2();
        let siincu = model.catalog().get("siincu").unwrap();
        assert!(model.flow(FlowKind::PioRead).messages().contains(&siincu));
        assert!(model.flow(FlowKind::Mondo).messages().contains(&siincu));
    }

    #[test]
    fn mondo_dispatch_is_atomic() {
        let model = SocModel::t2();
        let mon = model.flow(FlowKind::Mondo);
        assert_eq!(mon.atomic_states().len(), 1);
        assert_eq!(mon.state_name(mon.atomic_states()[0]), "MonDispatch");
    }

    #[test]
    fn dmu_sources_five_messages() {
        let model = SocModel::t2();
        let from_dmu = model.messages_from(Ip::Dmu);
        let names: Vec<&str> = from_dmu.iter().map(|&m| model.catalog().name(m)).collect();
        assert_eq!(
            names,
            ["dmupioack", "reqtot", "dmusiidata", "dmarreq", "dmawreq"]
        );
    }

    #[test]
    fn legal_pairs_deduplicate() {
        let model = SocModel::t2();
        let c = model.catalog();
        let msgs = [
            c.get("piorreq").unwrap(),
            c.get("piowreq").unwrap(), // same (CCX, NCU) pair
            c.get("grant").unwrap(),
        ];
        let pairs = model.legal_ip_pairs(&msgs);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn abbrevs_match_table_1() {
        assert_eq!(FlowKind::PioRead.abbrev(), "PIOR");
        assert_eq!(FlowKind::Mondo.to_string(), "Mon");
        assert_eq!(FlowKind::ALL.len(), 8);
        assert_eq!(FlowKind::PAPER.len(), 5);
        assert_eq!(FlowKind::NcuUpstream.name(), "NCU Upstream");
    }
}
