//! Cycle-based transaction-level simulation engine.
//!
//! The engine executes a usage scenario's flow instances concurrently under
//! the interleaving semantics of Definition 5: at every cycle one ready
//! instance takes one flow transition, no instance may step while another
//! sits in an atomic state, arbitration and channel latencies are
//! pseudo-random but fully seeded. Each fired transition emits a
//! [`MessageEvent`] carrying a deterministic payload; a
//! [`MessageInterceptor`] (the bug-injection hook) may corrupt, misroute or
//! drop the message before it is observed.
//!
//! The event stream plays the role of the System-Verilog monitors of the
//! paper's Figure 4: design activity already lifted to flow messages.

use pstrace_flow::{FlowIndex, IndexedFlow, IndexedMessage, StateId};
use pstrace_rng::Rng64;

use crate::ip::Ip;
use crate::protocol::SocModel;
use crate::scenario::UsageScenario;
use crate::value::payload;

/// Simulation parameters. All randomness derives from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// RNG seed: same seed, same execution.
    pub seed: u64,
    /// Hang horizon: the run is declared hung beyond this many cycles.
    pub max_cycles: u64,
    /// Minimum channel latency in cycles.
    pub min_latency: u64,
    /// Maximum channel latency in cycles.
    pub max_latency: u64,
    /// Instances start uniformly at random within `0..=start_jitter`.
    pub start_jitter: u64,
    /// Credit-based channel backpressure: each `⟨source, destination⟩`
    /// channel holds this many buffer credits; a message consumes one on
    /// send and the receiver returns it one latency after delivery.
    /// `None` disables backpressure (infinite buffering).
    pub channel_credits: Option<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xda_c2018,
            max_cycles: 1_000_000,
            min_latency: 1,
            max_latency: 24,
            start_jitter: 40,
            channel_credits: None,
        }
    }
}

impl SimConfig {
    /// A default config with the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Self::default()
        }
    }
}

/// One message observed on an IP interface during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageEvent {
    /// Cycle at which the message was sent.
    pub time: u64,
    /// The indexed flow message.
    pub message: IndexedMessage,
    /// Source IP.
    pub src: Ip,
    /// Destination IP (a bug may have misrouted it).
    pub dst: Ip,
    /// Payload, truncated to the message width (a bug may have corrupted
    /// it).
    pub value: u64,
    /// Which emission of this indexed message this is (0-based).
    pub occurrence: u32,
}

/// Verdict of a [`MessageInterceptor`] for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterceptAction {
    /// Deliver the (possibly mutated) message; the flow advances.
    #[default]
    Deliver,
    /// Swallow the message; the sending flow instance never advances past
    /// this transition (models lost handshakes and never-generated
    /// interrupts).
    Drop,
    /// Deliver the message, but its channel credit is never returned — a
    /// credit-leak bug. Harmless until the channel's credit pool drains,
    /// after which senders on that channel stall: a bug whose symptom
    /// needs many messages to manifest.
    DeliverLeakCredit,
}

/// Hook invoked for every message before it is observed; the bug-injection
/// layer implements this.
pub trait MessageInterceptor {
    /// Inspect and possibly mutate `event` (value, destination);
    /// return whether it is delivered.
    fn intercept(&mut self, event: &mut MessageEvent) -> InterceptAction;
}

/// The no-op interceptor used for golden (bug-free) runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIntercept;

impl MessageInterceptor for NoIntercept {
    fn intercept(&mut self, _event: &mut MessageEvent) -> InterceptAction {
        InterceptAction::Deliver
    }
}

/// Terminal status of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every flow instance reached a stop state.
    Completed,
    /// At least one instance never completed (dropped message or horizon
    /// exceeded) — the paper's hang/timeout symptom class.
    Hang {
        /// Indices of the instances that never completed.
        stuck: Vec<FlowIndex>,
    },
}

impl RunStatus {
    /// Whether the run completed cleanly.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// All delivered messages, in emission order.
    pub events: Vec<MessageEvent>,
    /// Terminal status.
    pub status: RunStatus,
    /// Cycle at which the run ended.
    pub cycles: u64,
}

impl SimOutcome {
    /// The observed indexed-message sequence (the full, unfiltered trace).
    #[must_use]
    pub fn message_sequence(&self) -> Vec<IndexedMessage> {
        self.events.iter().map(|e| e.message).collect()
    }
}

#[derive(Debug)]
struct InstanceState {
    flow: IndexedFlow,
    current: StateId,
    ready_at: u64,
    done: bool,
    stuck: bool,
}

/// The transaction-level simulator for one usage scenario.
///
/// # Examples
///
/// ```
/// use pstrace_soc::{SimConfig, Simulator, SocModel, UsageScenario};
///
/// let model = SocModel::t2();
/// let sim = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(7));
/// let outcome = sim.run();
/// assert!(outcome.status.is_completed());
/// // PIOR (5) + PIOW (2) + Mon (5) messages were observed.
/// assert_eq!(outcome.events.len(), 12);
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    model: &'m SocModel,
    scenario: UsageScenario,
    config: SimConfig,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for `scenario` on `model`.
    #[must_use]
    pub fn new(model: &'m SocModel, scenario: UsageScenario, config: SimConfig) -> Self {
        Simulator {
            model,
            scenario,
            config,
        }
    }

    /// The scenario under simulation.
    #[must_use]
    pub fn scenario(&self) -> &UsageScenario {
        &self.scenario
    }

    /// Runs a golden (bug-free) simulation.
    #[must_use]
    pub fn run(&self) -> SimOutcome {
        self.run_with(&mut NoIntercept)
    }

    /// Runs a simulation with `interceptor` inspecting every message.
    ///
    /// Arbitration, latencies and payloads depend only on the seed and the
    /// interceptor's actions, so a golden and a buggy run with the same
    /// seed diverge only where the bug acts.
    pub fn run_with(&self, interceptor: &mut dyn MessageInterceptor) -> SimOutcome {
        let mut rng = Rng64::seed_from_u64(self.config.seed);
        let mut instances: Vec<InstanceState> = self
            .scenario
            .instances(self.model)
            .into_iter()
            .map(|flow| {
                let current = flow.flow().initial_states()[0];
                let ready_at = rng.gen_range_u64(0, self.config.start_jitter);
                InstanceState {
                    flow,
                    current,
                    ready_at,
                    done: false,
                    stuck: false,
                }
            })
            .collect();

        let mut atomic_holder: Option<usize> = None;
        let mut occurrences: std::collections::HashMap<IndexedMessage, u32> =
            std::collections::HashMap::new();
        let mut events: Vec<MessageEvent> = Vec::new();
        let mut now = 0u64;
        // Channel credit state (only used when backpressure is enabled):
        // available credits per channel, plus the pending return times.
        let mut credits: std::collections::HashMap<crate::ip::IpPair, u32> =
            std::collections::HashMap::new();
        let mut credit_returns: Vec<(u64, crate::ip::IpPair)> = Vec::new();
        let credit_cap = self.config.channel_credits;
        let available = |credits: &mut std::collections::HashMap<crate::ip::IpPair, u32>,
                         pair: crate::ip::IpPair|
         -> u32 {
            match credit_cap {
                None => u32::MAX,
                Some(cap) => *credits.entry(pair).or_insert(cap),
            }
        };

        loop {
            // Release credits that have returned by `now`.
            if credit_cap.is_some() {
                let mut i = 0;
                while i < credit_returns.len() {
                    if credit_returns[i].0 <= now {
                        let (_, pair) = credit_returns.swap_remove(i);
                        *credits.entry(pair).or_insert(0) += 1;
                    } else {
                        i += 1;
                    }
                }
            }
            // Which instances may step? Pending, not blocked by another
            // instance holding the atomic token, and (with backpressure)
            // with at least one outgoing edge whose channel has credit.
            let movable: Vec<usize> = instances
                .iter()
                .enumerate()
                .filter(|(i, s)| !s.done && !s.stuck && atomic_holder.is_none_or(|h| h == *i))
                .map(|(i, _)| i)
                .collect();
            if movable.is_empty() {
                break;
            }
            let unblocked: Vec<usize> = movable
                .iter()
                .copied()
                .filter(|&i| {
                    let s = &instances[i];
                    s.flow.flow().edges_from(s.current).any(|e| {
                        let pair = self
                            .model
                            .endpoints(e.message)
                            .expect("every model message has endpoints");
                        available(&mut credits, pair) > 0
                    })
                })
                .collect();
            if unblocked.is_empty() {
                // Everyone is waiting on credits: advance to the earliest
                // return, or declare deadlock if none is pending.
                match credit_returns.iter().map(|&(t, _)| t).min() {
                    Some(t) if t <= self.config.max_cycles => {
                        now = now.max(t);
                        continue;
                    }
                    _ => break,
                }
            }
            // Advance time to the earliest ready unblocked instance.
            let earliest = unblocked
                .iter()
                .map(|&i| instances[i].ready_at)
                .min()
                .expect("nonempty");
            now = now.max(earliest);
            if now > self.config.max_cycles {
                break;
            }
            let ready: Vec<usize> = unblocked
                .iter()
                .copied()
                .filter(|&i| instances[i].ready_at <= now)
                .collect();
            if ready.is_empty() {
                continue;
            }
            // Random arbitration among ready instances.
            let chosen = ready[rng.gen_index(ready.len())];
            let flow = instances[chosen].flow.flow().clone();
            let index = instances[chosen].flow.index();
            let out_edges: Vec<pstrace_flow::Edge> = flow
                .edges_from(instances[chosen].current)
                .filter(|e| {
                    let pair = self
                        .model
                        .endpoints(e.message)
                        .expect("every model message has endpoints");
                    available(&mut credits, pair) > 0
                })
                .copied()
                .collect();
            debug_assert!(
                !out_edges.is_empty(),
                "unblocked instances have a sendable edge"
            );
            let edge = out_edges[rng.gen_index(out_edges.len())];

            let message = IndexedMessage::new(edge.message, index);
            let occurrence = {
                let c = occurrences.entry(message).or_insert(0);
                let occ = *c;
                *c += 1;
                occ
            };
            let endpoints = self
                .model
                .endpoints(edge.message)
                .expect("every model message has endpoints");
            let width = self.model.catalog().width(edge.message);
            let mut event = MessageEvent {
                time: now,
                message,
                src: endpoints.src,
                dst: endpoints.dst,
                value: payload(self.config.seed, message, occurrence, width),
                occurrence,
            };

            let channel = crate::ip::IpPair::new(event.src, event.dst);
            let action = interceptor.intercept(&mut event);
            if credit_cap.is_some() && action != InterceptAction::Drop {
                // The send consumes one buffer credit on its channel.
                let c = credits.entry(channel).or_insert(0);
                debug_assert!(*c > 0, "credit-blocked edges are not sendable");
                *c -= 1;
            }
            match action {
                InterceptAction::Deliver | InterceptAction::DeliverLeakCredit => {
                    events.push(event);
                    let was_atomic = flow.is_atomic(instances[chosen].current);
                    instances[chosen].current = edge.to;
                    if flow.is_stop(edge.to) {
                        instances[chosen].done = true;
                    }
                    let latency =
                        rng.gen_range_u64(self.config.min_latency, self.config.max_latency);
                    instances[chosen].ready_at = now + latency;
                    if credit_cap.is_some() && action == InterceptAction::Deliver {
                        // The receiver frees the buffer entry one latency
                        // after delivery; a leak never returns it.
                        let return_latency =
                            rng.gen_range_u64(self.config.min_latency, self.config.max_latency);
                        credit_returns.push((now + latency + return_latency, channel));
                    }
                    // Atomic token bookkeeping.
                    if flow.is_atomic(edge.to) {
                        atomic_holder = Some(chosen);
                    } else if was_atomic && atomic_holder == Some(chosen) {
                        atomic_holder = None;
                    }
                }
                InterceptAction::Drop => {
                    instances[chosen].stuck = true;
                    // The message was never generated, so no credit was
                    // consumed. A stuck atomic holder keeps the token and
                    // starves the rest of the system — exactly the deadlock
                    // a lost atomic handshake causes in silicon.
                }
            }
        }

        let stuck: Vec<FlowIndex> = instances
            .iter()
            .filter(|s| !s.done)
            .map(|s| s.flow.index())
            .collect();
        let status = if stuck.is_empty() {
            RunStatus::Completed
        } else {
            RunStatus::Hang { stuck }
        };
        SimOutcome {
            events,
            status,
            cycles: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FlowKind;

    fn model() -> SocModel {
        SocModel::t2()
    }

    #[test]
    fn golden_run_completes_all_scenarios() {
        let m = model();
        for scenario in UsageScenario::all_paper_scenarios() {
            let expected: usize = scenario
                .flows()
                .iter()
                .map(|&(k, n)| m.flow(k).messages().len() * n as usize)
                .sum();
            let sim = Simulator::new(&m, scenario.clone(), SimConfig::with_seed(1));
            let out = sim.run();
            assert!(out.status.is_completed(), "{}", scenario.name());
            assert_eq!(out.events.len(), expected, "{}", scenario.name());
        }
    }

    #[test]
    fn same_seed_same_execution() {
        let m = model();
        let a = Simulator::new(&m, UsageScenario::scenario1(), SimConfig::with_seed(9)).run();
        let b = Simulator::new(&m, UsageScenario::scenario1(), SimConfig::with_seed(9)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_in_interleaving() {
        let m = model();
        let runs: Vec<Vec<IndexedMessage>> = (0..20)
            .map(|s| {
                Simulator::new(&m, UsageScenario::scenario1(), SimConfig::with_seed(s))
                    .run()
                    .message_sequence()
            })
            .collect();
        let mut dedup = runs.clone();
        dedup.sort();
        dedup.dedup();
        assert!(dedup.len() > 1, "arbitration must vary across seeds");
    }

    #[test]
    fn events_respect_per_instance_flow_order() {
        let m = model();
        for seed in 0..10 {
            let out =
                Simulator::new(&m, UsageScenario::scenario3(), SimConfig::with_seed(seed)).run();
            // For each instance, the projected message sequence must be a
            // root-to-stop path of its flow (linear flows: exact match).
            for inst in UsageScenario::scenario3().instances(&m) {
                let seq: Vec<_> = out
                    .events
                    .iter()
                    .filter(|e| e.message.index == inst.index())
                    .map(|e| e.message.message)
                    .collect();
                let expected: Vec<_> = inst.flow().messages().to_vec();
                assert_eq!(seq, expected);
            }
        }
    }

    #[test]
    fn event_times_are_nondecreasing() {
        let m = model();
        let out = Simulator::new(&m, UsageScenario::scenario2(), SimConfig::with_seed(4)).run();
        for w in out.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn dropping_a_message_hangs_that_instance() {
        struct DropSiincu(pstrace_flow::MessageId);
        impl MessageInterceptor for DropSiincu {
            fn intercept(&mut self, event: &mut MessageEvent) -> InterceptAction {
                if event.message.message == self.0 {
                    InterceptAction::Drop
                } else {
                    InterceptAction::Deliver
                }
            }
        }
        let m = model();
        let siincu = m.catalog().get("siincu").unwrap();
        let sim = Simulator::new(&m, UsageScenario::scenario1(), SimConfig::with_seed(3));
        let out = sim.run_with(&mut DropSiincu(siincu));
        match out.status {
            RunStatus::Hang { ref stuck } => assert!(!stuck.is_empty()),
            RunStatus::Completed => panic!("dropping siincu must hang PIOR or Mon"),
        }
        assert!(out.message_sequence().iter().all(|im| im.message != siincu));
    }

    #[test]
    fn corruption_changes_value_not_structure() {
        struct CorruptGrant(pstrace_flow::MessageId);
        impl MessageInterceptor for CorruptGrant {
            fn intercept(&mut self, event: &mut MessageEvent) -> InterceptAction {
                if event.message.message == self.0 {
                    event.value ^= 0b1;
                }
                InterceptAction::Deliver
            }
        }
        let m = model();
        let grant = m.catalog().get("grant").unwrap();
        let config = SimConfig::with_seed(5);
        let golden = Simulator::new(&m, UsageScenario::scenario1(), config).run();
        let buggy = Simulator::new(&m, UsageScenario::scenario1(), config)
            .run_with(&mut CorruptGrant(grant));
        assert!(buggy.status.is_completed());
        assert_eq!(golden.message_sequence(), buggy.message_sequence());
        let diffs: Vec<_> = golden
            .events
            .iter()
            .zip(&buggy.events)
            .filter(|(g, b)| g.value != b.value)
            .collect();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0.message.message, grant);
    }

    #[test]
    fn atomic_state_excludes_concurrent_atomics() {
        // Two Mondo instances: their MonDispatch occupancy intervals must
        // not overlap. Dispatch is entered on observing siincu and left on
        // mondoacknack.
        let m = model();
        let scenario = UsageScenario::custom(9, "two mondos", &[(FlowKind::Mondo, 2)]);
        for seed in 0..10 {
            let out = Simulator::new(&m, scenario.clone(), SimConfig::with_seed(seed)).run();
            assert!(out.status.is_completed());
            let siincu = m.catalog().get("siincu").unwrap();
            let ack = m.catalog().get("mondoacknack").unwrap();
            // Walk events tracking who is inside dispatch.
            let mut inside: Option<FlowIndex> = None;
            for e in &out.events {
                if e.message.message == siincu {
                    assert!(inside.is_none(), "second dispatch while one active");
                    inside = Some(e.message.index);
                } else if e.message.message == ack {
                    assert_eq!(inside, Some(e.message.index));
                    inside = None;
                }
            }
        }
    }

    #[test]
    fn credit_backpressure_preserves_completion() {
        // With one credit per channel every scenario still completes: the
        // receiver returns credits and nothing deadlocks.
        let m = model();
        let mut scenarios = UsageScenario::all_paper_scenarios();
        scenarios.push(UsageScenario::scenario_dma());
        for scenario in scenarios {
            for seed in 0..5 {
                let mut config = SimConfig::with_seed(seed);
                config.channel_credits = Some(1);
                let out = Simulator::new(&m, scenario.clone(), config).run();
                assert!(
                    out.status.is_completed(),
                    "{} seed {seed} deadlocked under credits",
                    scenario.name()
                );
                let expected: usize = scenario
                    .flows()
                    .iter()
                    .map(|&(k, n)| m.flow(k).messages().len() * n as usize)
                    .sum();
                assert_eq!(out.events.len(), expected);
            }
        }
    }

    #[test]
    fn credit_backpressure_serializes_shared_channels() {
        // Two NCU Upstream instances share the MCU -> NCU channel; with a
        // single credit the second mcudata cannot be sent before the first
        // one's credit returns.
        let m = model();
        let scenario = UsageScenario::custom(8, "two ncuu", &[(FlowKind::NcuUpstream, 2)]);
        let mcudata = m.catalog().get("mcudata").unwrap();
        for seed in 0..10 {
            let mut config = SimConfig::with_seed(seed);
            config.channel_credits = Some(1);
            let out = Simulator::new(&m, scenario.clone(), config).run();
            assert!(out.status.is_completed());
            let times: Vec<u64> = out
                .events
                .iter()
                .filter(|e| e.message.message == mcudata)
                .map(|e| e.time)
                .collect();
            assert_eq!(times.len(), 2);
            // The credit round trip needs at least 2 latencies >= 2 cycles.
            assert!(
                times[1] >= times[0] + 2,
                "seed {seed}: sends not serialized"
            );
        }
    }

    #[test]
    fn leaked_credits_eventually_hang_the_channel() {
        struct LeakFirstMcudata(pstrace_flow::MessageId, bool);
        impl MessageInterceptor for LeakFirstMcudata {
            fn intercept(&mut self, event: &mut MessageEvent) -> InterceptAction {
                if event.message.message == self.0 && !self.1 {
                    self.1 = true;
                    return InterceptAction::DeliverLeakCredit;
                }
                InterceptAction::Deliver
            }
        }
        let m = model();
        let scenario = UsageScenario::custom(8, "two ncuu", &[(FlowKind::NcuUpstream, 2)]);
        let mcudata = m.catalog().get("mcudata").unwrap();
        let mut config = SimConfig::with_seed(3);
        config.channel_credits = Some(1);
        let sim = Simulator::new(&m, scenario, config);
        let out = sim.run_with(&mut LeakFirstMcudata(mcudata, false));
        match out.status {
            RunStatus::Hang { ref stuck } => assert_eq!(stuck.len(), 1),
            RunStatus::Completed => panic!("leaked credit must starve the second instance"),
        }
        // The first instance's messages were all delivered; the second
        // instance never sent its mcudata.
        let count = out
            .events
            .iter()
            .filter(|e| e.message.message == mcudata)
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn credits_disabled_is_the_default_and_unchanged() {
        let m = model();
        let a = Simulator::new(&m, UsageScenario::scenario1(), SimConfig::with_seed(9)).run();
        let mut config = SimConfig::with_seed(9);
        config.channel_credits = None;
        let b = Simulator::new(&m, UsageScenario::scenario1(), config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_is_respected() {
        let m = model();
        let mut config = SimConfig::with_seed(2);
        config.max_cycles = 1; // absurdly small horizon
        let out = Simulator::new(&m, UsageScenario::scenario1(), config).run();
        // Either it hangs at the horizon or completes within a cycle
        // (impossible given latencies ≥ 1 and 12 messages).
        assert!(!out.status.is_completed());
    }
}
