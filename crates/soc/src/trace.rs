//! Trace buffer capture: what the debugger actually sees.
//!
//! The hardware trace buffer records only the *selected* messages (full
//! messages plus any packed subgroups). Capturing a simulation's event
//! stream through a [`TraceBufferConfig`] yields the observed trace the
//! paper's debugging studies start from; everything else that happened in
//! the run is invisible — absence of a message in the captured trace is
//! itself debugging evidence (§5.7).

use pstrace_flow::{GroupId, IndexedMessage, MessageId};

use crate::engine::{MessageEvent, SimOutcome};
use crate::protocol::SocModel;
use crate::value::mask_to_width;

/// Which messages and subgroups the trace buffer is wired to record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBufferConfig {
    /// Fully traced messages.
    pub messages: Vec<MessageId>,
    /// Packed subgroups (the parent message is recorded, truncated to the
    /// subgroup's bits).
    pub groups: Vec<GroupId>,
    /// Buffer depth in entries. Real trace buffers are circular: once
    /// full, the oldest entries are overwritten, so only the **last**
    /// `depth` selected messages survive to be read out. `None` models an
    /// unbounded buffer (streaming trace port).
    pub depth: Option<usize>,
}

impl TraceBufferConfig {
    /// Config tracing the given full messages only, unbounded depth.
    #[must_use]
    pub fn messages_only(messages: &[MessageId]) -> Self {
        TraceBufferConfig {
            messages: messages.to_vec(),
            groups: Vec::new(),
            depth: None,
        }
    }

    /// Returns this config with a circular-buffer depth.
    ///
    /// # Panics
    ///
    /// Panics on `depth == 0`: a zero-entry circular buffer can never
    /// hold a record, so a config claiming that depth is a bug at the
    /// call site, not an empty trace waiting to happen. Use an explicit
    /// empty message selection to model "capture nothing".
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(
            depth > 0,
            "circular trace-buffer depth must be at least 1 entry"
        );
        self.depth = Some(depth);
        self
    }

    /// All message ids the buffer observes (full messages plus subgroup
    /// parents), deduplicated and sorted.
    #[must_use]
    pub fn observed_messages(&self, model: &SocModel) -> Vec<MessageId> {
        let mut out = self.messages.clone();
        for &g in &self.groups {
            let parent = model.catalog().group(g).parent();
            if !out.contains(&parent) {
                out.push(parent);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One record in the captured trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle of the original message.
    pub time: u64,
    /// The indexed message observed.
    pub message: IndexedMessage,
    /// The recorded bits: the full payload for fully traced messages, or
    /// the payload truncated to the widest traced subgroup.
    pub value: u64,
    /// Whether only a subgroup (not the full message) was recorded.
    pub partial: bool,
}

/// The content of the trace buffer after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapturedTrace {
    records: Vec<TraceRecord>,
}

impl CapturedTrace {
    /// Builds a trace from raw records (e.g. parsed from a trace file).
    #[must_use]
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        CapturedTrace { records }
    }

    /// The records in capture order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The observed indexed-message sequence (input to path localization).
    #[must_use]
    pub fn message_sequence(&self) -> Vec<IndexedMessage> {
        self.records.iter().map(|r| r.message).collect()
    }

    /// Whether any record carries `message` (of any index).
    #[must_use]
    pub fn contains_message(&self, message: MessageId) -> bool {
        self.records.iter().any(|r| r.message.message == message)
    }

    /// Number of captured records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Filters a simulation's events through the trace buffer configuration.
///
/// # Examples
///
/// ```
/// use pstrace_soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};
///
/// let model = SocModel::t2();
/// let out = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(1)).run();
/// let siincu = model.catalog().get("siincu").unwrap();
/// let config = TraceBufferConfig::messages_only(&[siincu]);
/// let trace = capture(&model, &out, &config);
/// // siincu is sent once by PIOR and once by Mon.
/// assert_eq!(trace.len(), 2);
/// ```
#[must_use]
pub fn capture(
    model: &SocModel,
    outcome: &SimOutcome,
    config: &TraceBufferConfig,
) -> CapturedTrace {
    capture_events(model, &outcome.events, config)
}

/// The record a single event leaves in the buffer, if the configuration
/// observes its message: the full payload for fully traced messages, or
/// the payload truncated to the widest traced subgroup. Shared by the
/// modeled capture path and the wire encoder so both see identical
/// filtering semantics.
#[must_use]
pub(crate) fn record_for_event(
    catalog: &pstrace_flow::MessageCatalog,
    config: &TraceBufferConfig,
    e: &MessageEvent,
) -> Option<TraceRecord> {
    let m = e.message.message;
    if config.messages.contains(&m) {
        return Some(TraceRecord {
            time: e.time,
            message: e.message,
            value: e.value,
            partial: false,
        });
    }
    // Widest traced subgroup of this message, if any.
    config
        .groups
        .iter()
        .map(|&g| catalog.group(g))
        .filter(|g| g.parent() == m)
        .max_by_key(|g| g.width())
        .map(|group| TraceRecord {
            time: e.time,
            message: e.message,
            value: mask_to_width(e.value, group.width()),
            partial: true,
        })
}

/// [`capture`] over a raw event slice.
///
/// # Panics
///
/// Panics when the configuration declares a zero circular depth (see
/// [`TraceBufferConfig::with_depth`]).
#[must_use]
pub fn capture_events(
    model: &SocModel,
    events: &[MessageEvent],
    config: &TraceBufferConfig,
) -> CapturedTrace {
    assert!(
        config.depth != Some(0),
        "circular trace-buffer depth must be at least 1 entry"
    );
    let catalog = model.catalog();
    let mut records: Vec<TraceRecord> = events
        .iter()
        .filter_map(|e| record_for_event(catalog, config, e))
        .collect();
    if let Some(depth) = config.depth {
        // Circular buffer: only the newest `depth` records survive.
        if records.len() > depth {
            records.drain(..records.len() - depth);
        }
    }
    CapturedTrace { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::scenario::UsageScenario;

    fn run() -> (SocModel, SimOutcome) {
        let model = SocModel::t2();
        let out =
            Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(11)).run();
        (model, out)
    }

    #[test]
    fn empty_config_captures_nothing() {
        let (model, out) = run();
        let trace = capture(&model, &out, &TraceBufferConfig::default());
        assert!(trace.is_empty());
    }

    #[test]
    fn full_message_capture_preserves_value_and_order() {
        let (model, out) = run();
        let reqtot = model.catalog().get("reqtot").unwrap();
        let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&[reqtot]));
        assert_eq!(trace.len(), 1);
        let rec = trace.records()[0];
        assert!(!rec.partial);
        let original = out
            .events
            .iter()
            .find(|e| e.message.message == reqtot)
            .unwrap();
        assert_eq!(rec.value, original.value);
        assert_eq!(rec.time, original.time);
    }

    #[test]
    fn subgroup_capture_truncates() {
        let (model, out) = run();
        let catalog = model.catalog();
        let gid = catalog.get_group("dmusiidata.cputhreadid").unwrap();
        let config = TraceBufferConfig {
            messages: Vec::new(),
            groups: vec![gid],
            depth: None,
        };
        let trace = capture(&model, &out, &config);
        assert_eq!(trace.len(), 1, "one dmusiidata in scenario 1");
        let rec = trace.records()[0];
        assert!(rec.partial);
        assert!(rec.value < (1 << 6), "truncated to 6 bits");
        let full = out
            .events
            .iter()
            .find(|e| e.message.message == catalog.get("dmusiidata").unwrap())
            .unwrap();
        assert_eq!(rec.value, full.value & 0x3f);
    }

    #[test]
    fn full_message_beats_subgroup_of_same_parent() {
        let (model, out) = run();
        let catalog = model.catalog();
        let d = catalog.get("dmusiidata").unwrap();
        let gid = catalog.get_group("dmusiidata.cputhreadid").unwrap();
        let config = TraceBufferConfig {
            messages: vec![d],
            groups: vec![gid],
            depth: None,
        };
        let trace = capture(&model, &out, &config);
        assert_eq!(trace.len(), 1);
        assert!(!trace.records()[0].partial);
    }

    #[test]
    fn observed_messages_includes_group_parents() {
        let model = SocModel::t2();
        let catalog = model.catalog();
        let siincu = catalog.get("siincu").unwrap();
        let gid = catalog.get_group("dmusiidata.mondoid").unwrap();
        let config = TraceBufferConfig {
            messages: vec![siincu],
            groups: vec![gid],
            depth: None,
        };
        let observed = config.observed_messages(&model);
        assert!(observed.contains(&siincu));
        assert!(observed.contains(&catalog.get("dmusiidata").unwrap()));
        assert_eq!(observed.len(), 2);
    }

    #[test]
    fn circular_depth_keeps_the_newest_records() {
        let (model, out) = run();
        let all = UsageScenario::scenario1().messages(&model);
        let unbounded = capture(&model, &out, &TraceBufferConfig::messages_only(&all));
        let depth = 5;
        let wrapped = capture(
            &model,
            &out,
            &TraceBufferConfig::messages_only(&all).with_depth(depth),
        );
        assert_eq!(wrapped.len(), depth);
        assert_eq!(
            wrapped.records(),
            &unbounded.records()[unbounded.len() - depth..],
            "the survivors are exactly the newest records"
        );
        // A depth larger than the trace changes nothing.
        let roomy = capture(
            &model,
            &out,
            &TraceBufferConfig::messages_only(&all).with_depth(1000),
        );
        assert_eq!(roomy, unbounded);
    }

    #[test]
    #[should_panic(expected = "at least 1 entry")]
    fn zero_depth_is_rejected_at_config_time() {
        let _ = TraceBufferConfig::default().with_depth(0);
    }

    #[test]
    #[should_panic(expected = "at least 1 entry")]
    fn zero_depth_is_rejected_at_capture_time() {
        // A config built literally (bypassing `with_depth`) still fails
        // loudly at the capture boundary instead of capturing nothing.
        let (model, out) = run();
        let config = TraceBufferConfig {
            messages: Vec::new(),
            groups: Vec::new(),
            depth: Some(0),
        };
        let _ = capture(&model, &out, &config);
    }

    #[test]
    fn depth_one_is_the_smallest_legal_buffer() {
        let (model, out) = run();
        let all = UsageScenario::scenario1().messages(&model);
        let trace = capture(
            &model,
            &out,
            &TraceBufferConfig::messages_only(&all).with_depth(1),
        );
        assert_eq!(trace.len(), 1, "exactly the newest record survives");
        let unbounded = capture(&model, &out, &TraceBufferConfig::messages_only(&all));
        assert_eq!(trace.records()[0], *unbounded.records().last().unwrap());
    }

    #[test]
    fn sequence_projection_matches_events() {
        let (model, out) = run();
        let catalog = model.catalog();
        let msgs = [
            catalog.get("siincu").unwrap(),
            catalog.get("piowcrd").unwrap(),
        ];
        let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&msgs));
        let expected: Vec<IndexedMessage> = out
            .events
            .iter()
            .filter(|e| msgs.contains(&e.message.message))
            .map(|e| e.message)
            .collect();
        assert_eq!(trace.message_sequence(), expected);
        assert!(trace.contains_message(msgs[0]));
        assert!(!trace.contains_message(catalog.get("grant").unwrap()));
    }
}
