//! Transaction-level OpenSPARC-T2-like SoC substrate.
//!
//! The paper's evaluation runs on the OpenSPARC T2 with System-Verilog
//! monitors lifting RTL signals to flow messages (Figure 4). This crate is
//! the Rust stand-in: a seeded, cycle-based transaction-level simulator of
//! the same IP blocks ([`Ip`]) executing the same five protocol flows
//! ([`FlowKind`], shapes matching Table 1) under the interleaving semantics
//! of the flow formalism, emitting message events that a modeled trace
//! buffer ([`TraceBufferConfig`] / [`capture`]) filters down to the
//! observed trace.
//!
//! Bug injection plugs in through the [`MessageInterceptor`] hook; golden
//! and buggy runs share all randomness, so any trace difference is caused
//! by the bug.
//!
//! # Examples
//!
//! ```
//! use pstrace_soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};
//!
//! let model = SocModel::t2();
//! let scenario = UsageScenario::scenario1();
//! let outcome = Simulator::new(&model, scenario, SimConfig::with_seed(42)).run();
//! assert!(outcome.status.is_completed());
//!
//! let siincu = model.catalog().get("siincu").unwrap();
//! let trace = capture(&model, &outcome, &TraceBufferConfig::messages_only(&[siincu]));
//! assert_eq!(trace.len(), 2); // once from PIO Read, once from Mondo
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod ip;
mod protocol;
mod scenario;
mod trace;
pub mod tracefile;
pub mod value;
pub mod wirecap;

pub use engine::{
    InterceptAction, MessageEvent, MessageInterceptor, NoIntercept, RunStatus, SimConfig,
    SimOutcome, Simulator,
};
pub use ip::{Ip, IpPair};
pub use protocol::{FlowKind, SocModel};
pub use scenario::UsageScenario;
pub use trace::{capture, capture_events, CapturedTrace, TraceBufferConfig, TraceRecord};
