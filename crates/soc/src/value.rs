//! Deterministic message payload generation.
//!
//! Golden-vs-buggy differencing (the paper's Table 5 *bug coverage* metric)
//! needs message payloads that are reproducible across runs: the same
//! `(seed, message, instance, occurrence)` always carries the same value,
//! so any difference between a golden and a buggy run is attributable to
//! the injected bug.

use pstrace_flow::IndexedMessage;

/// SplitMix64 — a small, high-quality 64-bit mixer.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic payload carried by the `occurrence`-th emission of
/// `message` in a run seeded with `seed`, truncated to `width` bits.
#[must_use]
pub fn payload(seed: u64, message: IndexedMessage, occurrence: u32, width: u32) -> u64 {
    let mixed = splitmix64(
        seed ^ ((message.message.index() as u64) << 40)
            ^ (u64::from(message.index.0) << 24)
            ^ u64::from(occurrence),
    );
    mask_to_width(mixed, width)
}

/// Truncates `value` to its low `width` bits (`width ≥ 64` keeps all bits).
#[must_use]
pub fn mask_to_width(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstrace_flow::{FlowIndex, MessageCatalog};

    fn im(catalog: &MessageCatalog, name: &str, idx: u32) -> IndexedMessage {
        IndexedMessage::new(catalog.get(name).unwrap(), FlowIndex(idx))
    }

    #[test]
    fn payload_is_deterministic() {
        let mut c = MessageCatalog::new();
        c.intern("m", 12);
        let a = payload(42, im(&c, "m", 1), 0, 12);
        let b = payload(42, im(&c, "m", 1), 0, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn payload_varies_with_every_coordinate() {
        let mut c = MessageCatalog::new();
        c.intern("m", 32);
        c.intern("n", 32);
        let base = payload(42, im(&c, "m", 1), 0, 32);
        assert_ne!(base, payload(43, im(&c, "m", 1), 0, 32), "seed");
        assert_ne!(base, payload(42, im(&c, "n", 1), 0, 32), "message");
        assert_ne!(base, payload(42, im(&c, "m", 2), 0, 32), "index");
        assert_ne!(base, payload(42, im(&c, "m", 1), 1, 32), "occurrence");
    }

    #[test]
    fn payload_respects_width() {
        let mut c = MessageCatalog::new();
        c.intern("m", 6);
        for occ in 0..100 {
            assert!(payload(7, im(&c, "m", 1), occ, 6) < 64);
        }
    }

    #[test]
    fn mask_handles_full_width() {
        assert_eq!(mask_to_width(u64::MAX, 64), u64::MAX);
        assert_eq!(mask_to_width(u64::MAX, 65), u64::MAX);
        assert_eq!(mask_to_width(0b1111, 2), 0b11);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
