//! IP blocks of the modeled SoC.
//!
//! The model mirrors the OpenSPARC T2 blocks that participate in the
//! paper's usage scenarios (Figure 3, Table 1): the cache crossbar (CCX),
//! non-cacheable unit (NCU), data management unit (DMU), system interface
//! unit (SIU), memory controller unit (MCU) and the CPU cores behind the
//! crossbar.

use std::fmt;

/// An IP block of the modeled SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Ip {
    /// A CPU core (SPARC physical core).
    Cpu,
    /// Cache crossbar connecting cores to the rest of the SoC.
    Ccx,
    /// Non-cacheable unit: PIO and interrupt hub.
    Ncu,
    /// Data management unit: PCIe-side DMA/PIO engine.
    Dmu,
    /// System interface unit: ordered/bypass queues between DMU and NCU/L2.
    Siu,
    /// Memory controller unit.
    Mcu,
}

impl Ip {
    /// All modeled IP blocks.
    pub const ALL: [Ip; 6] = [Ip::Cpu, Ip::Ccx, Ip::Ncu, Ip::Dmu, Ip::Siu, Ip::Mcu];

    /// Short uppercase name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Ip::Cpu => "CPU",
            Ip::Ccx => "CCX",
            Ip::Ncu => "NCU",
            Ip::Dmu => "DMU",
            Ip::Siu => "SIU",
            Ip::Mcu => "MCU",
        }
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A directed `⟨source IP, destination IP⟩` pair, *legal* when at least one
/// message is passed between them (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpPair {
    /// The IP sourcing the message.
    pub src: Ip,
    /// The IP receiving the message.
    pub dst: Ip,
}

impl IpPair {
    /// Creates a pair.
    #[must_use]
    pub fn new(src: Ip, dst: Ip) -> Self {
        IpPair { src, dst }
    }
}

impl fmt::Display for IpPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Ip::Ncu.to_string(), "NCU");
        assert_eq!(Ip::Dmu.name(), "DMU");
        assert_eq!(Ip::ALL.len(), 6);
    }

    #[test]
    fn pairs_are_directed() {
        let a = IpPair::new(Ip::Dmu, Ip::Siu);
        let b = IpPair::new(Ip::Siu, Ip::Dmu);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "<DMU, SIU>");
    }
}
