//! Trace file serialization.
//!
//! The paper's flow (Figure 4) records monitored messages "into an output
//! trace file" that the debugging tools consume. This module defines that
//! file format: one record per line,
//!
//! ```text
//! # time index message value partial
//! 37 2 siincu 0x5b 0
//! ```
//!
//! — a format trivially greppable, diffable and loadable back into a
//! [`CapturedTrace`].

use std::fmt;

use pstrace_flow::{FlowIndex, IndexedMessage};

use crate::protocol::SocModel;
use crate::trace::{CapturedTrace, TraceRecord};

/// Error raised while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceFileError {
    /// A line did not have the expected five fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A record references a message name missing from the model.
    UnknownMessage {
        /// 1-based line number.
        line: usize,
        /// The unknown name.
        name: String,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            TraceFileError::UnknownMessage { line, name } => {
                write!(f, "line {line}: unknown message `{name}`")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Serializes a captured trace to the text format.
///
/// # Examples
///
/// ```
/// use pstrace_soc::{capture, tracefile, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};
///
/// # fn main() -> Result<(), pstrace_soc::tracefile::TraceFileError> {
/// let model = SocModel::t2();
/// let out = Simulator::new(&model, UsageScenario::scenario1(), SimConfig::with_seed(1)).run();
/// let siincu = model.catalog().get("siincu").unwrap();
/// let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&[siincu]));
///
/// let text = tracefile::write_trace(&model, &trace);
/// let back = tracefile::read_trace(&model, &text)?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write_trace(model: &SocModel, trace: &CapturedTrace) -> String {
    use std::fmt::Write as _;
    let catalog = model.catalog();
    let mut out = String::from("# time index message value partial\n");
    for r in trace.records() {
        let _ = writeln!(
            out,
            "{} {} {} {:#x} {}",
            r.time,
            r.message.index.0,
            catalog.name(r.message.message),
            r.value,
            u8::from(r.partial)
        );
    }
    out
}

/// Parses the text format back into a [`CapturedTrace`].
///
/// # Errors
///
/// Returns [`TraceFileError`] for malformed lines or unknown message
/// names.
pub fn read_trace(model: &SocModel, text: &str) -> Result<CapturedTrace, TraceFileError> {
    let catalog = model.catalog();
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(TraceFileError::Malformed {
                line: line_no,
                reason: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let time: u64 = fields[0].parse().map_err(|_| TraceFileError::Malformed {
            line: line_no,
            reason: "time must be an integer".into(),
        })?;
        let index: u32 = fields[1].parse().map_err(|_| TraceFileError::Malformed {
            line: line_no,
            reason: "index must be an integer".into(),
        })?;
        let message = catalog
            .get(fields[2])
            .ok_or_else(|| TraceFileError::UnknownMessage {
                line: line_no,
                name: fields[2].to_owned(),
            })?;
        let value_str = fields[3]
            .strip_prefix("0x")
            .ok_or_else(|| TraceFileError::Malformed {
                line: line_no,
                reason: "value must be hexadecimal (0x…)".into(),
            })?;
        let value = u64::from_str_radix(value_str, 16).map_err(|_| TraceFileError::Malformed {
            line: line_no,
            reason: "value must be hexadecimal (0x…)".into(),
        })?;
        let partial = match fields[4] {
            "0" => false,
            "1" => true,
            _ => {
                return Err(TraceFileError::Malformed {
                    line: line_no,
                    reason: "partial must be 0 or 1".into(),
                })
            }
        };
        records.push(TraceRecord {
            time,
            message: IndexedMessage::new(message, FlowIndex(index)),
            value,
            partial,
        });
    }
    Ok(CapturedTrace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::scenario::UsageScenario;
    use crate::trace::{capture, TraceBufferConfig};

    fn sample() -> (SocModel, CapturedTrace) {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(5)).run();
        let all = scenario.messages(&model);
        let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&all));
        (model, trace)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (model, trace) = sample();
        let text = write_trace(&model, &trace);
        let back = read_trace(&model, &text).unwrap();
        assert_eq!(back, trace);
        assert!(text.starts_with('#'));
        assert_eq!(text.lines().count(), trace.len() + 1);
    }

    #[test]
    fn subgroup_records_round_trip_partial_flag() {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let out = Simulator::new(&model, scenario, SimConfig::with_seed(5)).run();
        let gid = model.catalog().get_group("dmusiidata.cputhreadid").unwrap();
        let config = TraceBufferConfig {
            messages: Vec::new(),
            groups: vec![gid],
            depth: None,
        };
        let trace = capture(&model, &out, &config);
        assert!(trace.records().iter().all(|r| r.partial));
        let text = write_trace(&model, &trace);
        assert!(text.contains(" 1\n"), "partial flag serialized");
        assert_eq!(read_trace(&model, &text).unwrap(), trace);
    }

    #[test]
    fn rejects_malformed_lines() {
        let model = SocModel::t2();
        assert!(matches!(
            read_trace(&model, "1 2 3\n").unwrap_err(),
            TraceFileError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            read_trace(&model, "x 1 siincu 0x0 0\n").unwrap_err(),
            TraceFileError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            read_trace(&model, "1 1 ghost 0x0 0\n").unwrap_err(),
            TraceFileError::UnknownMessage { line: 1, .. }
        ));
        assert!(matches!(
            read_trace(&model, "1 1 siincu 12 0\n").unwrap_err(),
            TraceFileError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            read_trace(&model, "1 1 siincu 0x0 7\n").unwrap_err(),
            TraceFileError::Malformed { line: 1, .. }
        ));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let model = SocModel::t2();
        let trace = read_trace(&model, "# header\n\n# more\n").unwrap();
        assert!(trace.is_empty());
    }
}
