//! Property-based tests for the SoC simulator.

use proptest::prelude::*;
use pstrace_flow::{FlowIndex, IndexedMessage, InterleavedFlow, ProductStateId};
use pstrace_soc::{
    capture, tracefile, CapturedTrace, SimConfig, Simulator, SocModel, TraceBufferConfig,
    TraceRecord, UsageScenario,
};

/// Replays an observed indexed-message sequence against the scenario's
/// interleaved flow, returning the reached product state if the sequence is
/// a valid execution prefix.
fn replay(u: &InterleavedFlow, seq: &[pstrace_flow::IndexedMessage]) -> Option<ProductStateId> {
    let mut current = u.initial_states()[0];
    for m in seq {
        let next = u.edges_from(current).find(|e| e.message == *m)?.to;
        current = next;
    }
    Some(current)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every simulated run of every paper scenario is a complete execution
    /// of the scenario's interleaved flow: the simulator refines the flow
    /// semantics.
    #[test]
    fn simulation_is_an_interleaving_execution(seed in any::<u64>(), scenario_no in 1u8..=3) {
        let model = SocModel::t2();
        let scenario = match scenario_no {
            1 => UsageScenario::scenario1(),
            2 => UsageScenario::scenario2(),
            _ => UsageScenario::scenario3(),
        };
        let u = scenario.interleaving(&model).unwrap();
        let out = Simulator::new(&model, scenario, SimConfig::with_seed(seed)).run();
        prop_assert!(out.status.is_completed());
        let reached = replay(&u, &out.message_sequence());
        prop_assert!(reached.is_some(), "simulated trace must follow the interleaving");
        prop_assert!(u.stop_states().contains(&reached.unwrap()));
    }

    /// Credit backpressure restricts orderings but never semantics: golden
    /// runs still complete and still replay as interleaving executions.
    #[test]
    fn credits_preserve_interleaving_semantics(
        seed in any::<u64>(),
        scenario_no in 1u8..=3,
        credits in 1u32..4,
    ) {
        let model = SocModel::t2();
        let scenario = match scenario_no {
            1 => UsageScenario::scenario1(),
            2 => UsageScenario::scenario2(),
            _ => UsageScenario::scenario3(),
        };
        let u = scenario.interleaving(&model).unwrap();
        let mut config = SimConfig::with_seed(seed);
        config.channel_credits = Some(credits);
        let out = Simulator::new(&model, scenario, config).run();
        prop_assert!(out.status.is_completed(), "deadlock under {credits} credits");
        let reached = replay(&u, &out.message_sequence());
        prop_assert!(reached.is_some());
        prop_assert!(u.stop_states().contains(&reached.unwrap()));
    }

    /// Determinism: the full outcome is a pure function of the seed.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>()) {
        let model = SocModel::t2();
        let a = Simulator::new(&model, UsageScenario::scenario3(), SimConfig::with_seed(seed)).run();
        let b = Simulator::new(&model, UsageScenario::scenario3(), SimConfig::with_seed(seed)).run();
        prop_assert_eq!(a, b);
    }

    /// Captured traces are order-preserving sub-sequences of the run and
    /// only contain selected messages.
    #[test]
    fn capture_is_a_projection(seed in any::<u64>(), pick in proptest::collection::vec(any::<bool>(), 16)) {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed)).run();
        let all_messages = scenario.messages(&model);
        let selected: Vec<_> = all_messages
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&selected));
        let expected: Vec<_> = out
            .events
            .iter()
            .filter(|e| selected.contains(&e.message.message))
            .map(|e| e.message)
            .collect();
        prop_assert_eq!(trace.message_sequence(), expected);
    }

    /// Trace files round-trip arbitrary valid records exactly: any record
    /// sequence over the model's catalog survives write → read unchanged.
    #[test]
    fn tracefile_round_trips_arbitrary_records(
        parts in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u8>(), any::<u64>(), any::<bool>()),
            0..64,
        ),
    ) {
        let model = SocModel::t2();
        let messages = UsageScenario::scenario1().messages(&model);
        let records: Vec<TraceRecord> = parts
            .iter()
            .map(|&(time, index, pick, value, partial)| TraceRecord {
                time,
                message: IndexedMessage::new(
                    messages[usize::from(pick) % messages.len()],
                    FlowIndex(index),
                ),
                value,
                partial,
            })
            .collect();
        let trace = CapturedTrace::from_records(records);
        let text = tracefile::write_trace(&model, &trace);
        let back = tracefile::read_trace(&model, &text);
        prop_assert_eq!(back, Ok(trace));
    }

    /// Every malformed line is rejected with `Malformed` (or
    /// `UnknownMessage`) carrying the correct 1-based line number — never
    /// a panic, never a silently skipped record.
    #[test]
    fn tracefile_flags_malformed_lines_precisely(
        n_good in 0usize..12,
        corrupt_at in any::<u8>(),
        kind in 0u8..8,
    ) {
        let model = SocModel::t2();
        let messages = UsageScenario::scenario1().messages(&model);
        let records: Vec<TraceRecord> = (0..n_good)
            .map(|i| TraceRecord {
                time: i as u64,
                message: IndexedMessage::new(messages[i % messages.len()], FlowIndex(1)),
                value: i as u64,
                partial: false,
            })
            .collect();
        let trace = CapturedTrace::from_records(records);
        let mut lines: Vec<String> = tracefile::write_trace(&model, &trace)
            .lines()
            .map(str::to_owned)
            .collect();
        let bad = match kind {
            0 => "garbage",
            1 => "1 2 3",
            2 => "x 1 siincu 0x0 0",
            3 => "1 x siincu 0x0 0",
            4 => "1 1 siincu 12 0",
            5 => "1 1 siincu 0xZZ 0",
            6 => "1 1 siincu 0x0 7",
            _ => "1 1 ghost 0x0 0",
        };
        // Insert after the header, somewhere among the records.
        let at = 1 + usize::from(corrupt_at) % (n_good + 1);
        lines.insert(at, bad.to_owned());
        let text = lines.join("\n");
        let err = tracefile::read_trace(&model, &text).unwrap_err();
        let expected_line = at + 1; // line numbers are 1-based
        match err {
            tracefile::TraceFileError::Malformed { line, .. } => {
                prop_assert!(kind < 7, "ghost message must be UnknownMessage");
                prop_assert_eq!(line, expected_line);
            }
            tracefile::TraceFileError::UnknownMessage { line, name } => {
                prop_assert_eq!(kind, 7);
                prop_assert_eq!(name.as_str(), "ghost");
                prop_assert_eq!(line, expected_line);
            }
            other => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Arbitrary bytes never panic the parser: every input yields Ok or a
    /// structured error.
    #[test]
    fn tracefile_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let model = SocModel::t2();
        let text = String::from_utf8_lossy(&bytes);
        let _ = tracefile::read_trace(&model, &text);
    }
}
