//! Property-based tests for the SoC simulator.

use proptest::prelude::*;
use pstrace_flow::{InterleavedFlow, ProductStateId};
use pstrace_soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};

/// Replays an observed indexed-message sequence against the scenario's
/// interleaved flow, returning the reached product state if the sequence is
/// a valid execution prefix.
fn replay(u: &InterleavedFlow, seq: &[pstrace_flow::IndexedMessage]) -> Option<ProductStateId> {
    let mut current = u.initial_states()[0];
    for m in seq {
        let next = u.edges_from(current).find(|e| e.message == *m)?.to;
        current = next;
    }
    Some(current)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every simulated run of every paper scenario is a complete execution
    /// of the scenario's interleaved flow: the simulator refines the flow
    /// semantics.
    #[test]
    fn simulation_is_an_interleaving_execution(seed in any::<u64>(), scenario_no in 1u8..=3) {
        let model = SocModel::t2();
        let scenario = match scenario_no {
            1 => UsageScenario::scenario1(),
            2 => UsageScenario::scenario2(),
            _ => UsageScenario::scenario3(),
        };
        let u = scenario.interleaving(&model).unwrap();
        let out = Simulator::new(&model, scenario, SimConfig::with_seed(seed)).run();
        prop_assert!(out.status.is_completed());
        let reached = replay(&u, &out.message_sequence());
        prop_assert!(reached.is_some(), "simulated trace must follow the interleaving");
        prop_assert!(u.stop_states().contains(&reached.unwrap()));
    }

    /// Credit backpressure restricts orderings but never semantics: golden
    /// runs still complete and still replay as interleaving executions.
    #[test]
    fn credits_preserve_interleaving_semantics(
        seed in any::<u64>(),
        scenario_no in 1u8..=3,
        credits in 1u32..4,
    ) {
        let model = SocModel::t2();
        let scenario = match scenario_no {
            1 => UsageScenario::scenario1(),
            2 => UsageScenario::scenario2(),
            _ => UsageScenario::scenario3(),
        };
        let u = scenario.interleaving(&model).unwrap();
        let mut config = SimConfig::with_seed(seed);
        config.channel_credits = Some(credits);
        let out = Simulator::new(&model, scenario, config).run();
        prop_assert!(out.status.is_completed(), "deadlock under {credits} credits");
        let reached = replay(&u, &out.message_sequence());
        prop_assert!(reached.is_some());
        prop_assert!(u.stop_states().contains(&reached.unwrap()));
    }

    /// Determinism: the full outcome is a pure function of the seed.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>()) {
        let model = SocModel::t2();
        let a = Simulator::new(&model, UsageScenario::scenario3(), SimConfig::with_seed(seed)).run();
        let b = Simulator::new(&model, UsageScenario::scenario3(), SimConfig::with_seed(seed)).run();
        prop_assert_eq!(a, b);
    }

    /// Captured traces are order-preserving sub-sequences of the run and
    /// only contain selected messages.
    #[test]
    fn capture_is_a_projection(seed in any::<u64>(), pick in proptest::collection::vec(any::<bool>(), 16)) {
        let model = SocModel::t2();
        let scenario = UsageScenario::scenario1();
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed)).run();
        let all_messages = scenario.messages(&model);
        let selected: Vec<_> = all_messages
            .iter()
            .zip(&pick)
            .filter(|(_, &p)| p)
            .map(|(m, _)| *m)
            .collect();
        let trace = capture(&model, &out, &TraceBufferConfig::messages_only(&selected));
        let expected: Vec<_> = out
            .events
            .iter()
            .filter(|e| selected.contains(&e.message.message))
            .map(|e| e.message)
            .collect();
        prop_assert_eq!(trace.message_sequence(), expected);
    }
}
