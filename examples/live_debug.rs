//! Live debugging session: inject a bug, stream the wire capture into an
//! ingest session frame by frame, and watch path localization narrow as
//! each frame arrives — then replay the same capture to a loopback
//! `pstraced` daemon over real TCP and print its session report.
//!
//! Run with: `cargo run --example live_debug`

use std::error::Error;
use std::sync::Arc;

use pstrace::bug::{bug_catalog, case_studies, BugInterceptor};
use pstrace::diag::MatchMode;
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SimConfig, Simulator, SocModel, TraceBufferConfig};
use pstrace::stream::{stream_ptw, Server, ServerConfig, Session};
use pstrace::wire::write_ptw;

fn main() -> Result<(), Box<dyn Error>> {
    let model = SocModel::t2();
    let case = case_studies()
        .into_iter()
        .find(|c| c.number == 1)
        .expect("case study 1 exists");
    println!(
        "case study {} over {}: {}",
        case.number,
        case.scenario.name(),
        case.root_cause
    );

    // Select messages for the 32-bit buffer and run the buggy silicon.
    let scenario = case.scenario.clone();
    let flow = scenario.interleaving(&model)?;
    let selection =
        Selector::new(&flow, SelectionConfig::new(TraceBufferSpec::new(32)?)).select()?;
    let trace_config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let sim = Simulator::new(&model, scenario, SimConfig::with_seed(case.seed));
    let catalog = bug_catalog(&model);
    let mut interceptor = BugInterceptor::new(&model, case.bugs(&catalog));
    let buggy = sim.run_with(&mut interceptor);

    // Encode the capture into wire frames.
    let schema = wirecap::wire_schema(&model, &trace_config, 32)?;
    let stream = wirecap::encode_events(model.catalog(), &schema, &buggy.events, &trace_config)?;
    println!(
        "captured {} frames of {} bits each\n",
        stream.frames,
        schema.frame_bits()
    );

    // Feed the payload into an ingest session one byte at a time and
    // report localization whenever a frame completes: the consistent-path
    // count can only shrink as evidence accumulates.
    let mut session = Session::new(&flow, schema.clone(), MatchMode::Prefix);
    let mut frames_seen = 0;
    for byte in &stream.bytes {
        session.push_chunk(std::slice::from_ref(byte));
        let m = session.metrics();
        if m.frames > frames_seen {
            frames_seen = m.frames;
            let loc = session.localization();
            println!(
                "  frame {:>3}: {:>3} of {} interleaved-flow paths consistent ({:.2}%)",
                frames_seen,
                loc.consistent,
                loc.total,
                loc.fraction() * 100.0
            );
        }
    }
    let report = session.finish(Some(stream.bit_len));
    println!("\nin-process session:\n{}", report.render());

    // The same capture over real TCP: spin up a loopback daemon, replay
    // the `.ptw` container in small chunks, print the daemon's report.
    let ptw = write_ptw(model.catalog(), &schema, &stream);
    let server = Server::spawn(Arc::new(SocModel::t2()), &ServerConfig::default())?;
    println!("loopback daemon on {}", server.local_addr());
    let remote = stream_ptw(
        server.local_addr(),
        model.catalog(),
        case.number,
        MatchMode::Prefix,
        &ptw,
        64,
    )?;
    server.shutdown();
    println!("{remote}");
    Ok(())
}
