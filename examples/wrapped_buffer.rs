//! Circular trace buffers and suffix localization.
//!
//! Real trace buffers wrap: once full, the oldest entries are overwritten
//! and only the newest survive read-out. This example shows how much
//! localization power a wrapped buffer loses as its depth shrinks, using
//! case study 3 (the malformed CPU request).
//!
//! Run with: `cargo run --example wrapped_buffer`

use std::error::Error;

use pstrace::bug::case_studies;
use pstrace::diag::{run_case_study, CaseStudyConfig};
use pstrace::soc::SocModel;

fn main() -> Result<(), Box<dyn Error>> {
    let model = SocModel::t2();
    let cs = &case_studies()[2];

    println!(
        "case study {} — localization vs trace buffer depth\n",
        cs.number
    );
    println!(
        "{:>9} {:>9} {:>12} {:>14} {:>12}",
        "depth", "captured", "consistent", "total paths", "localization"
    );
    for depth in [None, Some(16), Some(8), Some(4), Some(2), Some(1)] {
        let report = run_case_study(
            &model,
            cs,
            CaseStudyConfig {
                buffer_bits: 32,
                packing: true,
                depth,
                wire: false,
            },
        )?;
        println!(
            "{:>9} {:>9} {:>12} {:>14} {:>11.2}%",
            depth.map_or_else(|| "inf".to_owned(), |d| d.to_string()),
            report.captured.len(),
            report.localization.consistent,
            report.localization.total,
            report.path_localization() * 100.0
        );
    }
    println!("\nshallower buffers keep fewer records, so more interleaved-flow");
    println!("paths stay consistent with the surviving window — observability");
    println!("budget is depth as well as width.");
    Ok(())
}
