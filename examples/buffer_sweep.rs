//! Trace-buffer width sweep: how selection quality scales with
//! observability budget, with and without Step 3 packing.
//!
//! For each of the three Table 1 usage scenarios and a range of buffer
//! widths, runs the selector twice (packing on/off) and prints
//! utilization, flow-spec coverage and information gain — the Table 3
//! trade-off as a function of budget.
//!
//! Run with: `cargo run --release --example buffer_sweep`

use std::error::Error;

use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{SocModel, UsageScenario};

fn main() -> Result<(), Box<dyn Error>> {
    let model = SocModel::t2();
    for scenario in UsageScenario::all_paper_scenarios() {
        let product = scenario.interleaving(&model)?;
        println!(
            "== {} ({} states, {} edges) ==",
            scenario.name(),
            product.state_count(),
            product.edge_count()
        );
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "bits", "util WP", "util WoP", "cov WP", "cov WoP", "gain WP", "gain WoP"
        );
        for bits in [8u32, 16, 24, 32, 48, 64] {
            let buffer = TraceBufferSpec::new(bits)?;
            let mut config = SelectionConfig::new(buffer);
            config.packing = true;
            let with = Selector::new(&product, config).select()?;
            config.packing = false;
            let without = Selector::new(&product, config).select()?;
            println!(
                "{:>6} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.3} {:>9.3}",
                bits,
                with.utilization() * 100.0,
                without.utilization() * 100.0,
                with.coverage() * 100.0,
                without.coverage() * 100.0,
                with.gain_packed,
                without.chosen.gain
            );
        }
        println!();
    }
    Ok(())
}
