//! Quickstart: the paper's running example (§2–3).
//!
//! Builds the toy cache-coherence flow of Figure 1a, interleaves two
//! concurrently executing instances (Figure 2), runs the three-step
//! message selection under a 2-bit trace buffer, and prints every
//! intermediate quantity the paper walks through.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use pstrace::flow::{examples::cache_coherence, instantiate, path_count, InterleavedFlow};
use pstrace::select::{flow_spec_coverage, SelectionConfig, Selector, TraceBufferSpec};

fn main() -> Result<(), Box<dyn Error>> {
    // Figure 1a: the exclusive-line-access flow between an L1 and the
    // directory. Messages ReqE, GntE, Ack are 1 bit each; GntW is atomic.
    let (flow, catalog) = cache_coherence();
    println!("flow: {flow}");

    // Figure 1b/2: two legally indexed instances, interleaved.
    let instances = instantiate(&Arc::new(flow), 2);
    let product = InterleavedFlow::build(&instances)?;
    println!(
        "interleaving: {} states, {} edges, {} root-to-stop paths",
        product.state_count(),
        product.edge_count(),
        path_count(&product),
    );

    // §3: select messages for a 2-bit trace buffer.
    let buffer = TraceBufferSpec::new(2)?;
    let report = Selector::new(&product, SelectionConfig::new(buffer)).select()?;

    println!("\nstep 1/2 candidates (gain in nats, descending):");
    for cand in &report.candidates {
        let names: Vec<&str> = cand.messages.iter().map(|&m| catalog.name(m)).collect();
        let coverage = flow_spec_coverage(&product, &cand.messages);
        println!(
            "  {{{}}}  width {:>2}  gain {:.4}  coverage {:.4}",
            names.join(", "),
            cand.width,
            cand.gain,
            coverage
        );
    }

    let chosen: Vec<&str> = report
        .chosen
        .messages
        .iter()
        .map(|&m| catalog.name(m))
        .collect();
    println!("\nselected combination: {{{}}}", chosen.join(", "));
    println!("  mutual information gain : {:.3} nats", report.chosen.gain);
    println!("  flow-spec coverage      : {:.4}", report.coverage());
    println!(
        "  trace buffer utilization: {:.1} %",
        report.utilization() * 100.0
    );

    Ok(())
}
