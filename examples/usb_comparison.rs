//! The §5.4 baseline comparison on the USB-like design (Table 4).
//!
//! Selects trace signals three ways — SRR-greedy (SigSeT), PageRank
//! (PRNet) and the paper's flow-level information-gain method — and
//! reports which of the ten debug-relevant interface signals each method
//! captures, the flow-specification coverage each achieves, and what
//! fraction of interface-message occurrences SRR-style restoration can
//! reconstruct.
//!
//! Run with: `cargo run --example usb_comparison`

use std::error::Error;
use std::sync::Arc;

use pstrace::flow::{FlowIndex, IndexedFlow, InterleavedFlow};
use pstrace::rtl::{prnet_select, sigset_select, simulate, RandomStimulus, UsbDesign};
use pstrace::select::{flow_spec_coverage, SelectionConfig, Selector, TraceBufferSpec};

fn main() -> Result<(), Box<dyn Error>> {
    let usb = UsbDesign::new();
    let netlist = &usb.netlist;
    println!(
        "usb-like design: {} signals, {} flip-flops, {} inputs",
        netlist.signal_count(),
        netlist.flops().len(),
        netlist.inputs().len()
    );

    // The usage scenario: one token transaction and one data transaction.
    let flows = vec![
        IndexedFlow::new(Arc::clone(&usb.flows[0]), FlowIndex(1)),
        IndexedFlow::new(Arc::clone(&usb.flows[1]), FlowIndex(2)),
    ];
    let product = InterleavedFlow::build(&flows)?;

    let budget = 8usize;
    let reference = simulate(netlist, &RandomStimulus::new(netlist, 48, 2), 48);

    let sigset = sigset_select(netlist, &reference, budget);
    let prnet = prnet_select(netlist, budget);
    let info = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(budget as u32)?),
    )
    .select()?;
    let info_signals = usb.signals_of_messages(&info.chosen.messages);

    println!("\nTable 4 — interface signal selection per method:");
    println!(
        "{:<16} {:>7} {:>7} {:>9}",
        "signal", "SigSeT", "PRNet", "InfoGain"
    );
    for &s in &usb.interface_signals {
        let mark = |sel: &[pstrace::rtl::SignalId]| if sel.contains(&s) { "Y" } else { "-" };
        println!(
            "{:<16} {:>7} {:>7} {:>9}",
            netlist.signal_name(s),
            mark(&sigset),
            mark(&prnet),
            mark(&info_signals)
        );
    }

    let sigset_cov = flow_spec_coverage(&product, &usb.messages_covered_by(&sigset));
    let prnet_cov = flow_spec_coverage(&product, &usb.messages_covered_by(&prnet));
    let info_cov = flow_spec_coverage(&product, &info.chosen.messages);
    println!(
        "\nflow-spec coverage: SigSeT {:.2} %, PRNet {:.2} %, InfoGain {:.2} %",
        sigset_cov * 100.0,
        prnet_cov * 100.0,
        info_cov * 100.0
    );

    let sigset_recon = usb.message_reconstruction(&sigset, &reference);
    let info_recon = usb.message_reconstruction(&info_signals, &reference);
    println!(
        "interface-message reconstruction: SigSeT {:.1} %, InfoGain {:.1} %",
        sigset_recon * 100.0,
        info_recon * 100.0
    );
    Ok(())
}
