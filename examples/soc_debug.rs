//! Full post-silicon debugging session on the T2-like SoC (§5.7 style).
//!
//! Runs every case study: selects messages for a 32-bit trace buffer over
//! the scenario's interleaved flow, simulates a golden and a buggy
//! execution, captures only the selected messages, and then debugs from
//! the captured trace — path localization, IP-pair investigation and
//! root-cause pruning.
//!
//! Run with: `cargo run --example soc_debug`

use std::error::Error;

use pstrace::bug::case_studies;
use pstrace::diag::{run_case_study, CaseStudyConfig};
use pstrace::soc::SocModel;

fn main() -> Result<(), Box<dyn Error>> {
    let model = SocModel::t2();
    for cs in case_studies() {
        let report = run_case_study(&model, &cs, CaseStudyConfig::default())?;
        println!("{}", report.render(&model));
    }
    Ok(())
}
