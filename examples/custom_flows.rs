//! Bring-your-own-protocol: define flows in the text format and run the
//! full selection pipeline over them.
//!
//! The paper's method consumes flow specifications that SoC teams already
//! maintain as architectural collateral. This example models a simple
//! AXI-style read/write pair in the `pstrace` flow DSL, parses it, and
//! selects trace messages for a 12-bit buffer.
//!
//! Run with: `cargo run --example custom_flows`

use std::error::Error;
use std::sync::Arc;

use pstrace::flow::parse::parse_flows;
use pstrace::flow::{path_count, FlowIndex, IndexedFlow, InterleavedFlow};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};

const AXI: &str = r#"
# A simplified AXI-style usage scenario: one read and one write channel.
message araddr  12
message rdata   16
message rresp   2
message awaddr  12
message wdata   16
message bresp   2
group   rdata.id 4
group   wdata.strb 4

flow "axi read" {
    state  ArIdle ArAddr ArData
    stop   ArDone
    initial ArIdle
    edge ArIdle -araddr-> ArAddr
    edge ArAddr -rdata->  ArData
    edge ArData -rresp->  ArDone
}

flow "axi write" {
    state  AwIdle AwAddr AwData
    stop   AwDone
    initial AwIdle
    edge AwIdle -awaddr-> AwAddr
    edge AwAddr -wdata->  AwData
    edge AwData -bresp->  AwDone
}
"#;

fn main() -> Result<(), Box<dyn Error>> {
    let doc = parse_flows(AXI)?;
    println!(
        "parsed {} flows over {} messages",
        doc.flows.len(),
        doc.catalog.len()
    );

    // Two concurrent reads and one write.
    let instances = vec![
        IndexedFlow::new(
            Arc::clone(doc.flow("axi read").expect("declared")),
            FlowIndex(1),
        ),
        IndexedFlow::new(
            Arc::clone(doc.flow("axi read").expect("declared")),
            FlowIndex(2),
        ),
        IndexedFlow::new(
            Arc::clone(doc.flow("axi write").expect("declared")),
            FlowIndex(3),
        ),
    ];
    let product = InterleavedFlow::build(&instances)?;
    println!(
        "interleaving: {} states, {} edges, {} paths",
        product.state_count(),
        product.edge_count(),
        path_count(&product)
    );

    let report =
        Selector::new(&product, SelectionConfig::new(TraceBufferSpec::new(12)?)).select()?;
    println!("\nselected for a 12-bit buffer:");
    for &m in &report.chosen.messages {
        println!(
            "  {:<8} {:>2} bits",
            doc.catalog.name(m),
            doc.catalog.width(m)
        );
    }
    for &g in &report.packed_groups {
        println!(
            "  {:<8} {:>2} bits (packed subgroup)",
            doc.catalog.group_qualified_name(g),
            doc.catalog.group(g).width()
        );
    }
    println!(
        "gain {:.4} nats, utilization {:.1} %, coverage {:.1} %",
        report.gain_packed,
        report.utilization() * 100.0,
        report.coverage() * 100.0
    );
    Ok(())
}
