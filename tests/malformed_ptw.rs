//! Malformed `.ptw` input never panics: every corruption lands on a
//! typed error (or an empty-but-valid decode), across the batch decoder,
//! the replay client, and a live daemon session.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

use pstrace::codec::{decode_v2, encode_v2, read_ptw_auto};
use pstrace::diag::MatchMode;
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::{proto, stream_ptw, Server, ServerConfig, StreamError};
use pstrace::wire::{
    decode_stream, encode_records, read_ptw, write_ptw, write_ptw_with, DamageReason, PtwMeta,
    WireError, WireRecord, WireSchema,
};

/// A small valid scenario-1 capture: `(schema, ptw bytes, payload bits)`.
fn fixture(records: usize) -> (SocModel, WireSchema, Vec<u8>) {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).expect("nonzero");
    let flow = scenario.interleaving(&model).expect("interleaves");
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .expect("selection succeeds");
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).expect("schema fits");
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).expect("encodes");
    let ptw = write_ptw(model.catalog(), &schema, &encoded);
    (model, schema, ptw)
}

#[test]
fn truncated_header_is_a_typed_error() {
    let (model, _, ptw) = fixture(40);
    // Every truncation point inside the header must error, never panic.
    for cut in [0usize, 1, 3, 4, 5, 8, 12, 13] {
        let err = read_ptw(model.catalog(), &ptw[..cut.min(ptw.len())]);
        assert!(err.is_err(), "header cut at {cut} bytes must error");
    }
}

#[test]
fn garbage_catalog_names_are_a_typed_error() {
    let (model, _, ptw) = fixture(40);
    // Stomp the slot table (everything past the fixed 13-byte header):
    // slot names become garbage the catalog cannot resolve.
    let mut bad = ptw.clone();
    for b in bad.iter_mut().skip(13).take(32) {
        *b = 0xFF;
    }
    assert!(
        read_ptw(model.catalog(), &bad).is_err(),
        "garbage slot table must be rejected"
    );
    // Foreign magic likewise.
    let mut foreign = ptw;
    foreign[..4].copy_from_slice(b"NOPE");
    assert!(read_ptw(model.catalog(), &foreign).is_err());
}

#[test]
fn mid_file_eof_is_a_typed_error_everywhere() {
    let (model, _, ptw) = fixture(40);
    let (_, consumed) = pstrace::wire::read_ptw_schema(model.catalog(), &ptw).expect("valid");

    // Cut inside the payload-length field.
    let short_len = &ptw[..consumed + 3];
    assert!(read_ptw(model.catalog(), short_len).is_err());

    // Cut mid-payload: the declared bit length outruns the bytes.
    let payload_len = ptw.len() - consumed - 8;
    let mid = &ptw[..consumed + 8 + payload_len / 2];
    assert!(read_ptw(model.catalog(), mid).is_err());

    // The replay client validates the same way before touching a socket,
    // so a daemon never sees the malformed container.
    let err = stream_ptw(
        "127.0.0.1:1", // never connected: validation fails first
        model.catalog(),
        1,
        MatchMode::Prefix,
        mid,
        64,
    )
    .expect_err("client rejects the truncated container");
    assert!(
        !matches!(err, StreamError::Io(_)),
        "must fail on validation, not transport: {err}"
    );
}

#[test]
fn zero_length_body_decodes_to_zero_frames_and_streams_cleanly() {
    let (model, schema, _) = fixture(1);
    let empty = encode_records(&schema, &[], None).expect("empty stream encodes");
    assert_eq!(empty.bit_len, 0);
    let ptw = write_ptw(model.catalog(), &schema, &empty);

    // Batch: a valid container with zero frames, not an error.
    let (schema_back, stream_back) = read_ptw(model.catalog(), &ptw).expect("parses");
    assert_eq!(schema_back.frame_bits(), schema.frame_bits());
    let report = decode_stream(&schema_back, &stream_back.bytes, Some(stream_back.bit_len));
    assert_eq!(report.frames, 0);
    assert!(report.records.is_empty());

    // Live: the session completes with zero records.
    let server = Server::spawn(Arc::new(SocModel::t2()), &ServerConfig::default()).unwrap();
    let reply = stream_ptw(
        server.local_addr(),
        model.catalog(),
        1,
        MatchMode::Prefix,
        &ptw,
        64,
    )
    .expect("zero-length session completes");
    assert!(reply.contains("records"), "report renders: {reply}");
    let snap = server.snapshot();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.records, 0);
    server.shutdown();
}

/// A valid v2 (compressed) container over the same scenario-1 schema:
/// `(model, schema, records, ptw bytes)`.
fn v2_fixture(records: usize, sync_every: u16) -> (SocModel, WireSchema, Vec<WireRecord>, Vec<u8>) {
    let (model, schema, _) = fixture(records);
    let slots = schema.slots().to_vec();
    let recs: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_v2(&schema, &recs, sync_every, None).expect("encodes");
    let ptw = write_ptw_with(model.catalog(), &schema, PtwMeta::v2(sync_every), &encoded);
    (model, schema, recs, ptw)
}

#[test]
fn v2_container_is_a_typed_error_for_v1_only_readers() {
    let (model, _, _, ptw) = v2_fixture(40, 8);
    // The v1-only entry point refuses the profile with the typed
    // variant, naming both the file's version and the reader's ceiling.
    let err = read_ptw(model.catalog(), &ptw).expect_err("v1 reader must refuse v2");
    match err {
        WireError::UnsupportedProfile {
            version,
            max_supported,
        } => {
            assert_eq!(version, 2);
            assert_eq!(max_supported, 1);
        }
        other => panic!("expected UnsupportedProfile, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("v2") && msg.contains("v1"), "{msg}");

    // The codec-aware entry point decodes it fully.
    let (_, meta, report) = read_ptw_auto(model.catalog(), &ptw).expect("codec reader accepts v2");
    assert_eq!(meta.version, 2);
    assert!(report.is_clean(), "{:?}", report.damaged);
    assert_eq!(report.records.len(), 40);

    // A version byte beyond every known dialect is BadVersion for both,
    // and the message names the supported range.
    let mut future = ptw;
    future[4] = 9;
    let err = read_ptw_auto(model.catalog(), &future).expect_err("version 9 is unknown");
    assert!(
        matches!(err, WireError::BadVersion { .. }),
        "typed: {err:?}"
    );
    assert!(err.to_string().contains("1..=2"), "{err}");
}

#[test]
fn truncated_v2_sync_block_is_bounded_damage_never_a_panic() {
    let (model, schema, recs, ptw) = v2_fixture(48, 8);
    // Recover the payload span: schema header + 8-byte bit-length prefix.
    let (_, _, consumed) = pstrace::wire::read_ptw_header(model.catalog(), &ptw).unwrap();
    let payload = ptw[consumed + 8..].to_vec();

    // Chop the payload mid-block at every granularity: the decoder
    // reports the torn tail block as sync damage and keeps everything
    // before it; it never panics and never invents records.
    for cut in 1..payload.len() {
        let torn = &payload[..cut];
        let report = decode_v2(&schema, torn, Some(torn.len() as u64 * 8));
        assert!(
            report.records.len() <= recs.len(),
            "cut {cut}: more records out than in"
        );
        for r in &report.records {
            assert!(recs.contains(r), "cut {cut}: invented record {r:?}");
        }
        if report.records.len() < recs.len() {
            // A cut landing exactly on a block boundary leaves a clean
            // (shorter) stream — there is nothing to flag. Any other cut
            // tears a block and must surface as sync damage.
            let clean_boundary =
                report.damaged.is_empty() && report.records == recs[..report.records.len()];
            assert!(
                clean_boundary
                    || report.damaged.iter().any(|d| matches!(
                        d.reason,
                        DamageReason::SyncCorrupt { .. } | DamageReason::SyncLost { .. }
                    )),
                "cut {cut}: lost records must be accounted as sync damage: {:?}",
                report.damaged
            );
        }
    }

    // A container truncated mid-payload stays a typed error, as in v1.
    let mid = &ptw[..ptw.len() - payload.len() / 2];
    assert!(read_ptw_auto(model.catalog(), mid).is_err());
}

#[test]
fn v2_container_streams_to_a_live_daemon() {
    // End to end over the PSTS handshake: the container's schema prefix
    // carries the v2 version byte, the daemon negotiates the compressed
    // decoder, and the session report accounts every record.
    let (model, _, recs, ptw) = v2_fixture(40, 8);
    let server = Server::spawn(Arc::new(SocModel::t2()), &ServerConfig::default()).unwrap();
    for chunk in [1usize, 7, 64] {
        let reply = stream_ptw(
            server.local_addr(),
            model.catalog(),
            1,
            MatchMode::Prefix,
            &ptw,
            chunk,
        )
        .expect("v2 session completes");
        assert!(reply.contains("records"), "report renders: {reply}");
    }
    let snap = server.snapshot();
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.records, 3 * recs.len() as u64);
    server.shutdown();
}

#[test]
fn garbage_handshake_is_rejected_and_the_daemon_survives() {
    let (model, _, ptw) = fixture(40);
    let server = Server::spawn(Arc::new(SocModel::t2()), &ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A hello whose schema bytes are not a `.ptw` prefix: the server must
    // reject the session with a typed remote error, not die.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    proto::write_hello(&mut writer, 1, MatchMode::Prefix, b"this is not a schema").unwrap();
    let err = proto::read_reply(&mut reader).expect_err("server rejects garbage schema");
    assert!(
        matches!(err, StreamError::Remote(_)),
        "typed rejection: {err}"
    );
    drop(reader);
    drop(writer);

    // A bad scenario number on an otherwise valid handshake likewise.
    let err = stream_ptw(addr, model.catalog(), 77, MatchMode::Prefix, &ptw, 64)
        .expect_err("scenario 77 does not exist");
    assert!(
        matches!(err, StreamError::Remote(_)),
        "typed rejection: {err}"
    );

    // The daemon shrugged both off: a valid session still completes.
    stream_ptw(addr, model.catalog(), 1, MatchMode::Prefix, &ptw, 64)
        .expect("daemon survives malformed handshakes");
    let snap = server.snapshot();
    assert_eq!(snap.completed, 1);
    assert!(snap.failed >= 2, "both rejections were counted: {snap:?}");
    server.shutdown();
}
