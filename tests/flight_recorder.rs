//! End-to-end acceptance for the flight recorder: the daemon traces
//! itself with its own `.ptw` machinery.
//!
//! Pinned here:
//! * one trace-context id — minted by the client, carried in the PSTS
//!   hello — follows a session across a forced reconnect and a
//!   cross-shard handoff, in the live journal and in the serialized
//!   dump;
//! * a chaos-wrapped soak's spilled dump decodes cleanly against the
//!   built-in flight catalog and renders a per-session timeline;
//! * mining nothing but that dump recovers the session-lifecycle flow
//!   at P/R >= 0.9 — the dogfood version of `pstrace mine`'s recovery
//!   verdict.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pstrace::codec::flight::{
    flight_catalog, flight_message_name, lifecycle_flow, lifecycle_messages, read_flight_dump,
    render_timeline,
};
use pstrace::diag::MatchMode;
use pstrace::faults::{run_soak, watchdog, FaultPlan, SoakConfig};
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::mine::{evaluate, ExecutionLog, LogRecord, Miner, MiningConfig};
use pstrace::obs::EventKind;
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::{proto, Server, ServerConfig};
use pstrace::wire::{encode_records, read_ptw_schema, write_ptw, WireRecord};

/// A small scenario-1 capture split the way the PSTS handshake wants
/// it: schema prefix, payload bit length, payload bytes.
struct Capture {
    model: Arc<SocModel>,
    schema: Vec<u8>,
    bit_len: u64,
    payload: Vec<u8>,
}

fn capture(records: usize) -> Capture {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).unwrap();
    let flow = scenario.interleaving(&model).unwrap();
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .unwrap();
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).unwrap();
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).unwrap();
    let ptw = write_ptw(model.catalog(), &schema, &encoded);
    let (_, consumed) = read_ptw_schema(model.catalog(), &ptw).unwrap();
    let schema_bytes = ptw[..consumed].to_vec();
    let rest = &ptw[consumed..];
    let bit_len = u64::from_le_bytes(rest[..8].try_into().unwrap());
    let payload = rest[8..].to_vec();
    Capture {
        model: Arc::new(model),
        schema: schema_bytes,
        bit_len,
        payload,
    }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn trace_context_follows_a_session_across_reconnect_and_shards() {
    let _guard = watchdog(Duration::from_secs(120), "flight trace continuity");
    const TRACE: u64 = 0x7e57_f11e_0001;
    let cap = capture(400);
    let server = Server::spawn(
        Arc::clone(&cap.model),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            read_timeout: Duration::from_millis(150),
            resume_grace: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // First connection: hello carrying the client-minted trace-context
    // id, half the payload, then the transport vanishes without FINISH.
    let half = cap.payload.len() / 2;
    let (token, epoch) = {
        let mut s = connect(&server);
        proto::write_resume_hello_as(&mut s, 0, 0, 1, MatchMode::Prefix, 0, TRACE, &cap.schema)
            .unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (token, offset, epoch) = proto::parse_resume_ack(&ack).unwrap();
        assert!(token > 0);
        assert_eq!(offset, 0);
        for piece in cap.payload[..half].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        s.flush().unwrap();
        (token, epoch)
    };
    assert!(
        poll_until(Duration::from_secs(30), || server.snapshot().parked >= 1),
        "session was never parked: {:?}",
        server.snapshot()
    );

    // Reconnect with the token *and the same trace id*. Connection ids
    // round-robin over shards, so this lands on a different shard than
    // the token's owner: a cross-shard handoff.
    {
        let mut s = connect(&server);
        proto::write_resume_hello_as(
            &mut s,
            token,
            epoch,
            1,
            MatchMode::Prefix,
            0,
            TRACE,
            &cap.schema,
        )
        .unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (acked, offset, _) = proto::parse_resume_ack(&ack).unwrap();
        assert_eq!(acked, token);
        let offset = usize::try_from(offset).unwrap();
        assert!(offset <= half);
        for piece in cap.payload[offset..].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        proto::write_finish(&mut s, cap.bit_len).unwrap();
        s.flush().unwrap();
        proto::read_reply(&mut s).unwrap();
    }
    let snap = server.snapshot();
    assert!(snap.resumed >= 1 && snap.handoffs >= 1, "{snap:?}");

    // The live journal: one trace context carries the whole story —
    // open and handshake from the first connection, the park when the
    // transport died, the handoff and resume from the second, and the
    // clean finish/close.
    let events = server.flight_snapshot().events;
    let kinds: Vec<EventKind> = events
        .iter()
        .filter(|e| e.trace == TRACE)
        .map(|e| e.kind)
        .collect();
    for want in [
        EventKind::Open,
        EventKind::Handshake,
        EventKind::Park,
        EventKind::Handoff,
        EventKind::Resume,
        EventKind::Finish,
        EventKind::Close,
    ] {
        assert!(
            kinds.contains(&want),
            "journal lost {want:?} for trace 0x{TRACE:x}: {kinds:?}"
        );
    }

    // The serialized dump tells the same story as one flow instance.
    let bytes = server.flight_dump_bytes().unwrap();
    server.shutdown();
    let dump = read_flight_dump(&bytes).unwrap();
    assert_eq!(dump.damaged, 0, "a self-dump is never damaged");
    let sessions = dump.sessions();
    let ours: Vec<_> = sessions
        .iter()
        .filter(|(index, trace, _)| *index != 0 && *trace == TRACE)
        .collect();
    assert_eq!(
        ours.len(),
        1,
        "the trace id must map to exactly one flow instance:\n{}",
        render_timeline(&dump)
    );
    let (_, _, ours) = ours[0];
    assert!(ours.iter().any(|e| e.kind == EventKind::Park));
    assert!(ours.iter().any(|e| e.kind == EventKind::Resume));
    let timeline = render_timeline(&dump);
    assert!(
        timeline.contains(&format!("trace 0x{TRACE:016x}")),
        "timeline must name the trace id:\n{timeline}"
    );
}

#[test]
fn recovery_is_journaled_as_fr_recover_events() {
    let _guard = watchdog(Duration::from_secs(120), "flight recover events");
    const TRACE: u64 = 0x7e57_f11e_0002;
    let dir = std::env::temp_dir().join(format!("pstrace-flight-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cap = capture(400);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        read_timeout: Duration::from_millis(150),
        resume_grace: Duration::from_secs(30),
        durability: pstrace::stream::durable::DurabilityPolicy::Strict,
        wal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // Life #1: park one session mid-stream, then shut down with it
    // still parked — its Open + Park group stays journaled in the WAL.
    let first = Server::spawn(Arc::clone(&cap.model), &config).unwrap();
    {
        let mut s = connect(&first);
        proto::write_resume_hello_as(&mut s, 0, 0, 1, MatchMode::Prefix, 0, TRACE, &cap.schema)
            .unwrap();
        proto::read_reply(&mut s).unwrap();
        for piece in cap.payload[..cap.payload.len() / 2].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        s.flush().unwrap();
    }
    assert!(
        poll_until(Duration::from_secs(30), || first.snapshot().parked >= 1),
        "session was never parked: {:?}",
        first.snapshot()
    );
    first.shutdown();

    // Life #2 recovers it, and the flight journal says so: lane-0
    // fr-recover events carrying the restored/replayed/skipped counts,
    // at daemon scope (trace 0), with the interned reason labels.
    let second = Server::spawn(Arc::clone(&cap.model), &config).unwrap();
    assert!(
        poll_until(Duration::from_secs(30), || second.snapshot().recovered >= 1),
        "no session recovered: {:?}",
        second.snapshot()
    );
    let events = second.flight_snapshot().events;
    let recover: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Recover)
        .collect();
    assert!(!recover.is_empty(), "recovery left no fr-recover events");
    for want in ["sessions-restored", "entries-replayed", "entries-skipped"] {
        assert!(
            recover
                .iter()
                .any(|e| e.trace == 0 && pstrace::obs::reason_label(e.reason) == want),
            "missing daemon-scope fr-recover reason {want:?}"
        );
    }
    let restored = recover
        .iter()
        .find(|e| pstrace::obs::reason_label(e.reason) == "sessions-restored")
        .expect("checked above");
    assert!(
        restored.session >= 1,
        "the restored count rides in the event"
    );

    // The dump decodes against the built-in catalog, which names the
    // new lifecycle message.
    let bytes = second.flight_dump_bytes().unwrap();
    second.shutdown();
    let dump = read_flight_dump(&bytes).unwrap();
    assert_eq!(dump.damaged, 0);
    assert!(dump.events.iter().any(|e| e.kind == EventKind::Recover));
    assert_eq!(flight_message_name(EventKind::Recover), "fr-recover");
    assert!(
        flight_catalog().get("fr-recover").is_some(),
        "the flight catalog materializes fr-recover"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_soak_dump_mines_back_the_lifecycle_flow() {
    let _guard = watchdog(Duration::from_secs(300), "flight mine recovery");
    let plan = FaultPlan::by_intensity("light", 7)
        .unwrap()
        .without_reconnect_faults();
    let mut config = SoakConfig::new(plan);
    config.sessions = 6;
    config.records = 400;
    config.chunk_bytes = 256;
    let dump_path =
        std::env::temp_dir().join(format!("pstrace-flight-mine-{}.ptw", std::process::id()));
    config.flight_dump = Some(dump_path.clone());
    let report = run_soak(&config).expect("harness builds");
    report.survival().expect("survival criteria hold");

    let bytes = std::fs::read(&dump_path).expect("soak spilled the flight dump");
    std::fs::remove_file(&dump_path).ok();
    let dump = read_flight_dump(&bytes).expect("dump decodes against the flight catalog");
    assert_eq!(dump.damaged, 0);
    // Chaos journals what it injected beside what the daemon did
    // about it.
    if !report.ledger.is_empty() {
        assert!(
            dump.events.iter().any(|e| e.kind == EventKind::Fault),
            "injected faults must appear as flight events:\n{}",
            render_timeline(&dump)
        );
    }

    // Mine the lifecycle DAG from nothing but the dump: narrow the
    // journal to the lifecycle vocabulary, group by the dump's flow
    // instances, and score against the built-in ground truth.
    let catalog = flight_catalog();
    let lifecycle = lifecycle_messages(&catalog);
    let records: Vec<LogRecord> = dump
        .events
        .iter()
        .filter_map(|e| {
            let mid = catalog.get(&flight_message_name(e.kind))?;
            Some(LogRecord {
                time: e.ts_ns / 1_000,
                message: IndexedMessage::new(mid, FlowIndex(e.session as u32)),
            })
        })
        .collect();
    let log = ExecutionLog::from_records(records).retain_messages(&lifecycle);
    assert!(
        log.len() >= 4 * config.sessions,
        "every completed session contributes a full lifecycle: {} records",
        log.len()
    );
    let mut miner = Miner::new(Arc::clone(&catalog), MiningConfig::default());
    miner.push_log(log);
    let mined = miner.mine_observed(None);
    assert!(!mined.candidates.is_empty(), "mining found no candidates");
    let truth = lifecycle_flow(&catalog);
    let eval = evaluate(&mined.candidates, &[&truth], 0.9);
    assert_eq!(
        eval.recovered,
        1,
        "the session-lifecycle flow must be recovered at P/R >= 0.9: {}",
        eval.verdict_line()
    );
}
