//! Integration: the branching coherence extension scenario end to end.
//!
//! Every Table 1 flow is linear; the coherence flow branches (Shared vs
//! Exclusive grant), which stresses exactly the machinery linear flows let
//! off easy: random branch choice in the simulator, per-branch path
//! localization, and cause signatures that must not be pruned by unsound
//! linear-flow inference.

use pstrace::bug::{BugCategory, BugInterceptor, BugKind, BugSpec, BugTrigger};
use pstrace::diag::{
    consistent_paths, distill, evaluate_causes, scenario_causes, MatchMode, Verdict, Witness,
};
use pstrace::flow::path_count;
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{
    capture, FlowKind, Ip, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario,
};

#[test]
fn coherence_flow_branches() {
    let model = SocModel::t2();
    let flow = model.flow(FlowKind::Coherence);
    assert!(!flow.is_linear());
    assert_eq!(
        pstrace::flow::flow_path_count(flow),
        2,
        "Shared or Exclusive"
    );
    // Every Table 1 flow is linear.
    for kind in FlowKind::PAPER {
        assert!(model.flow(kind).is_linear(), "{kind}");
    }
}

#[test]
fn simulator_explores_both_branches() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario_coherence();
    let gnts = model.catalog().get("gnts").unwrap();
    let gntx = model.catalog().get("gntx").unwrap();
    let mut saw_shared = false;
    let mut saw_exclusive = false;
    for seed in 0..32 {
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed)).run();
        assert!(out.status.is_completed(), "seed {seed}");
        for e in &out.events {
            saw_shared |= e.message.message == gnts;
            saw_exclusive |= e.message.message == gntx;
        }
    }
    assert!(saw_shared, "the Shared branch is reachable");
    assert!(saw_exclusive, "the Exclusive branch is reachable");
}

#[test]
fn selection_and_localization_work_on_branching_flows() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario_coherence();
    let product = scenario.interleaving(&model).unwrap();
    assert!(path_count(&product) > 10, "branching multiplies paths");

    let report = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(32).unwrap()),
    )
    .select()
    .unwrap();
    assert!(report.utilization() > 0.8);

    // A golden run's captured trace must localize to at least itself and
    // strictly fewer paths than the total: observing the grant messages
    // resolves each instance's branch choice.
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(3)).run();
    let trace = capture(
        &model,
        &out,
        &TraceBufferConfig {
            messages: report.chosen.messages.clone(),
            groups: report.packed_groups.clone(),
            depth: None,
        },
    );
    let consistent = consistent_paths(
        &product,
        &trace.message_sequence(),
        &report.effective_messages,
        MatchMode::Exact,
    );
    assert!(consistent >= 1);
    assert!(consistent < path_count(&product));
}

#[test]
fn branching_flow_evidence_is_not_over_inferred() {
    // A run that took the Shared branch leaves gntx/inval/invack
    // unobserved. Linear-flow inference must NOT mark them healthy or
    // absent — they are simply on the path not taken.
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario_coherence();
    let all = scenario.messages(&model);
    let cfg = TraceBufferConfig::messages_only(&all);

    // Find a seed where both instances took the Shared branch.
    let gntx = model.catalog().get("gntx").unwrap();
    let seed = (0..64)
        .find(|&s| {
            let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(s)).run();
            out.events.iter().all(|e| e.message.message != gntx)
        })
        .expect("some seed avoids the exclusive branch entirely");
    let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed)).run();
    let trace = capture(&model, &out, &cfg);
    let ev = distill(&model, &scenario, &trace, &trace);
    let w = |name: &str| Witness::new(FlowKind::Coherence, model.catalog().get(name).unwrap());
    assert_eq!(ev.verdict(w("gntx")), Verdict::Unobserved);
    assert_eq!(ev.verdict(w("inval")), Verdict::Unobserved);
    assert_eq!(
        ev.verdict(w("cohreq")),
        Verdict::Healthy,
        "directly observed"
    );

    // Causes about the exclusive path stay plausible (not contradicted).
    let causes = scenario_causes(&model, &scenario);
    let report = evaluate_causes(&causes, &ev);
    assert!(report.plausible().iter().any(|c| c.id == 3));
}

#[test]
fn diagnosing_a_coherence_bug() {
    // Corrupt the fill data in the crossbar; the fill-corruption cause
    // must survive and the CCX be implicated.
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario_coherence();
    let bug = BugSpec {
        id: 90,
        depth: 2,
        category: BugCategory::Data,
        kind: BugKind::CorruptPayload { mask: 0xff },
        ip: Ip::Ccx,
        target: model.catalog().get("cohfill").unwrap(),
        trigger: BugTrigger::OnOccurrence(0),
        description: "fill data corrupted in the crossbar return path",
    };
    let sim = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(9));
    let golden = sim.run();
    let buggy = sim.run_with(&mut BugInterceptor::new(&model, vec![bug]));
    let all = scenario.messages(&model);
    let cfg = TraceBufferConfig::messages_only(&all);
    let ev = distill(
        &model,
        &scenario,
        &capture(&model, &golden, &cfg),
        &capture(&model, &buggy, &cfg),
    );
    let causes = scenario_causes(&model, &scenario);
    let report = evaluate_causes(&causes, &ev);
    let plausible = report.plausible();
    assert!(
        plausible.iter().any(|c| c.id == 6),
        "fill corruption survives"
    );
    assert!(plausible.iter().any(|c| c.ip == Ip::Ccx));
    // Branching costs pruning power: causes about the grant path not
    // taken can never be contradicted, so the floor is lower than in the
    // all-linear paper scenarios.
    assert!(report.pruned_fraction() >= 0.4);
}
