//! Profiling smoke tests: under the deterministic [`ManualClock`] every
//! span lasts exactly one tick, so the `--profile` phase table is a
//! byte-for-byte golden, and the Chrome trace-event export is valid JSON
//! carrying the pipeline's phase names.

use pstrace::bug::case_studies;
use pstrace::diag::{run_case_study_observed, CaseStudyConfig};
use pstrace::obs::{
    phase_summaries, render_chrome_trace, render_profile_table, validate_json, JsonValue,
    ManualClock, Registry, MANUAL_TICK_NS,
};
use pstrace::select::{Parallelism, SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{SocModel, UsageScenario};

fn manual_registry() -> Registry {
    Registry::with_clock(Box::new(ManualClock::new()))
}

#[test]
fn selection_profile_table_is_golden_under_the_manual_clock() {
    let model = SocModel::t2();
    let product = UsageScenario::scenario1().interleaving(&model).unwrap();
    let mut config = SelectionConfig::new(TraceBufferSpec::new(32).unwrap());
    // Sequential ranking: exactly one `rank-worker` span, every machine.
    config.parallelism = Parallelism::Off;
    let registry = manual_registry();
    Selector::new(&product, config)
        .select_observed(Some(&registry))
        .unwrap();

    // Every non-nested span is exactly one tick; `rank` nests the
    // worker span, so it spans three clock reads (3 ticks).
    let expected = "\
phase         calls         total          mean       %
-----------  ------  ------------  ------------  ------
mi-cache          1       1.000ms       1.000ms   12.5%
enumerate         1       1.000ms       1.000ms   12.5%
rank-worker       1       1.000ms       1.000ms   12.5%
rank              1       3.000ms       3.000ms   37.5%
pack              1       1.000ms       1.000ms   12.5%
coverage          1       1.000ms       1.000ms   12.5%
total             6       8.000ms
";
    assert_eq!(render_profile_table(&registry), expected);
}

#[test]
fn case_study_chrome_trace_validates_and_names_every_phase() {
    let model = SocModel::t2();
    let case = case_studies().into_iter().find(|c| c.number == 1).unwrap();
    let registry = manual_registry();
    run_case_study_observed(
        &model,
        &case,
        CaseStudyConfig::default(),
        case.seed,
        Some(&registry),
    )
    .unwrap();

    // Every recorded span measured a whole number of manual ticks.
    for summary in phase_summaries(&registry.spans()) {
        assert!(
            summary.total_ns % MANUAL_TICK_NS == 0 && summary.total_ns > 0,
            "phase {} measured {}ns, not whole ticks",
            summary.name,
            summary.total_ns
        );
    }

    let json = render_chrome_trace(&registry);
    let value = validate_json(&json).expect("chrome trace export is valid JSON");
    let events = value
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for phase in [
        "interleave",
        "mi-cache",
        "enumerate",
        "rank",
        "pack",
        "coverage",
        "simulate-golden",
        "simulate-buggy",
        "capture",
        "localize",
        "causes",
        "investigate",
    ] {
        assert!(names.contains(&phase), "missing {phase} in {names:?}");
    }
    for event in events {
        assert_eq!(
            event.get("ph").and_then(JsonValue::as_str),
            Some("X"),
            "complete events only"
        );
    }
}
