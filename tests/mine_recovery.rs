//! Flow-mining acceptance: mined specifications must recover the paper's
//! ground-truth flow DAGs and slot into the debugging pipeline without
//! changing its output.
//!
//! Acceptance criteria pinned here:
//! * mining the five usage-scenario capture corpora recovers at least
//!   4 of the 5 hand-written Table 1 flows at node and edge
//!   precision/recall >= 0.9;
//! * substituting a mined PIO-read spec for the hand-written one yields
//!   a case-study localization line byte-identical to the original on a
//!   clean capture (the mined DAG is structurally exact, so selection,
//!   interleaving and path counting all agree);
//! * mining a chaos-corrupted wire capture never panics, skips the
//!   damaged frames, and reports them through the `pstrace_mine_*`
//!   observability counters.

use std::sync::Arc;

use pstrace::bug::case_studies;
use pstrace::diag::{run_case_study_observed, run_case_study_routed, CaseStudyConfig};
use pstrace::faults::{corrupt_wire, FaultLedger, FaultPlan};
use pstrace::mine::{
    default_seeds, evaluate, full_body_width, full_capture_config, scenario_executions, Miner,
    MiningConfig,
};
use pstrace::obs::Registry;
use pstrace::soc::{wirecap, FlowKind, SimConfig, Simulator, SocModel, UsageScenario};
use pstrace::wire::decode_stream;
use pstrace_rng::Rng64;

fn paper_scenarios() -> Vec<UsageScenario> {
    vec![
        UsageScenario::scenario1(),
        UsageScenario::scenario2(),
        UsageScenario::scenario3(),
        UsageScenario::scenario_dma(),
        UsageScenario::scenario_coherence(),
    ]
}

/// A miner loaded with wire-tripped captures of every paper scenario.
fn combined_miner(model: &SocModel, seeds_per_scenario: u64) -> Miner {
    let seeds = default_seeds(seeds_per_scenario);
    let mut miner = Miner::new(model.catalog().clone(), MiningConfig::default());
    for scenario in paper_scenarios() {
        let (logs, skipped) =
            scenario_executions(model, &scenario, &seeds, true).expect("corpus encodes");
        assert_eq!(skipped, 0, "clean corpora must decode without damage");
        for log in logs {
            miner.push_log(log);
        }
    }
    miner
}

#[test]
fn mining_recovers_at_least_four_of_five_paper_flows() {
    let model = SocModel::t2();
    let miner = combined_miner(&model, 8);
    let report = miner.mine();
    assert!(
        report.candidates.len() >= 5,
        "expected candidates for every initiating message, got {}",
        report.candidates.len()
    );

    // The five hand-written Table 1 flows are the ground truth; the
    // corpus also exercises DMA and coherence flows, whose candidates
    // simply go unmatched here.
    let truth_kinds = [
        FlowKind::PioRead,
        FlowKind::PioWrite,
        FlowKind::NcuUpstream,
        FlowKind::NcuDownstream,
        FlowKind::Mondo,
    ];
    let truths: Vec<&pstrace::flow::Flow> = truth_kinds
        .iter()
        .map(|&k| model.flow(k).as_ref())
        .collect();
    let recovery = evaluate(&report.candidates, &truths, 0.9);

    for m in &recovery.matches {
        let s = &m.score;
        eprintln!(
            "{}: candidate={:?} nodes P={:.2} R={:.2} edges P={:.2} R={:.2} recovered={}",
            m.truth,
            m.candidate,
            s.nodes.precision,
            s.nodes.recall,
            s.edges.precision,
            s.edges.recall,
            m.recovered
        );
    }
    assert!(
        recovery.recovered >= 4,
        "mining must recover >= 4/5 ground-truth flows at P/R >= 0.9:\n{}",
        recovery.verdict_line()
    );
    assert_eq!(recovery.total, 5);
    assert!(recovery
        .verdict_line()
        .starts_with(&format!("mine recovery: {}/5", recovery.recovered)));
}

#[test]
fn mined_pio_read_localization_is_byte_identical() {
    let model = SocModel::t2();
    // Scenario 1 alone gives a clean PIO-read cluster; the mined flow is
    // built over the model's own catalog Arc, so `with_flow` accepts it.
    let seeds = default_seeds(8);
    let mut miner = Miner::new(model.catalog().clone(), MiningConfig::default());
    let (logs, _) = scenario_executions(&model, &UsageScenario::scenario1(), &seeds, true)
        .expect("corpus encodes");
    for log in logs {
        miner.push_log(log);
    }
    let report = miner.mine();
    let mined = report
        .candidates
        .iter()
        .find(|c| c.flow.name() == "mined-piorreq")
        .expect("scenario 1 must yield a PIO-read candidate");
    let score = pstrace::mine::score_against(&mined.flow, model.flow(FlowKind::PioRead));
    assert!(
        score.meets(0.9),
        "mined PIO-read must match ground truth: {score:?}"
    );

    let analysis = model.with_flow(FlowKind::PioRead, Arc::new(mined.flow.clone()));
    let case = &case_studies()[0]; // case 1 runs scenario 1 (PIO read path)
    let config = CaseStudyConfig::default();
    let hand =
        run_case_study_observed(&model, case, config, case.seed, None).expect("hand-written");
    let routed =
        run_case_study_routed(&model, &analysis, case, config, case.seed, None).expect("mined");

    assert_eq!(
        hand.localization, routed.localization,
        "mined spec must not change localization"
    );
    let line = |r: &pstrace::diag::CaseStudyReport| {
        r.render(&model)
            .lines()
            .find(|l| l.contains("localization"))
            .expect("report renders a localization line")
            .to_string()
    };
    assert_eq!(
        line(&hand),
        line(&routed),
        "localization report lines must be byte-identical"
    );
}

#[test]
fn mining_chaos_corrupted_capture_skips_frames_without_panicking() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let config = full_capture_config(&model, &scenario);
    let schema = wirecap::wire_schema(&model, &config, full_body_width(&model, &scenario))
        .expect("full-visibility schema fits");

    let obs = Registry::new();
    let mut miner = Miner::new(model.catalog().clone(), MiningConfig::default());
    let mut rng = Rng64::seed_from_u64(0xBAD5EED);
    let mut ledger = FaultLedger::new();
    let plan = FaultPlan::standard(0xBAD5EED);
    for seed in default_seeds(6) {
        let outcome = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(seed)).run();
        let stream = wirecap::encode_events(model.catalog(), &schema, &outcome.events, &config)
            .expect("records fit the schema");
        let mangled = corrupt_wire(
            &plan,
            seed,
            schema.frame_bits(),
            &stream,
            &mut rng,
            &mut ledger,
        );
        let report = decode_stream(&schema, &mangled.bytes, Some(mangled.bit_len));
        miner.push_decoded(&report);
    }
    assert!(!ledger.is_empty(), "the standard plan must inject faults");

    // Must not panic, must account every damaged frame, and must still
    // produce something from the surviving records.
    let report = miner.mine_observed(Some(&obs));
    assert!(
        report.stats.skipped_frames >= 1,
        "bit flips at 1e-3 over six captures must damage at least one frame"
    );
    assert_eq!(
        obs.counter("pstrace_mine_skipped_frames_total").get(),
        report.stats.skipped_frames,
        "skipped frames must flow through the obs counter"
    );
    assert!(
        obs.counter("pstrace_mine_executions_total").get() >= 6,
        "every pushed capture counts as an execution"
    );
}
