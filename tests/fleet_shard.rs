//! Fleet-ingest contracts of the sharded event-loop daemon: session
//! pinning across reconnects (with cross-shard handoff), deterministic
//! tenant-quota shedding, per-shard registry merge parity with a
//! single-registry run, and graceful SHUTDOWN-verb drain.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pstrace::diag::MatchMode;
use pstrace::faults::watchdog;
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::{proto, request_shutdown, stream_ptw, Server, ServerConfig, StatsSnapshot};
use pstrace::wire::{encode_records, read_ptw_schema, write_ptw, WireRecord};

/// A small scenario-1 capture split the way the PSTS handshake wants
/// it: schema prefix, payload bit length, payload bytes.
struct Capture {
    model: Arc<SocModel>,
    ptw: Vec<u8>,
    schema: Vec<u8>,
    bit_len: u64,
    payload: Vec<u8>,
}

fn capture(records: usize) -> Capture {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).unwrap();
    let flow = scenario.interleaving(&model).unwrap();
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .unwrap();
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).unwrap();
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).unwrap();
    let ptw = write_ptw(model.catalog(), &schema, &encoded);
    let (_, consumed) = read_ptw_schema(model.catalog(), &ptw).unwrap();
    let schema_bytes = ptw[..consumed].to_vec();
    let rest = &ptw[consumed..];
    let bit_len = u64::from_le_bytes(rest[..8].try_into().unwrap());
    let payload = rest[8..].to_vec();
    Capture {
        model: Arc::new(model),
        ptw,
        schema: schema_bytes,
        bit_len,
        payload,
    }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// One uninterrupted resumable session over a raw socket; returns the
/// final report text.
fn run_resumable(server: &Server, cap: &Capture) -> String {
    let mut s = connect(server);
    proto::write_resume_hello(&mut s, 0, 1, MatchMode::Prefix, &cap.schema).unwrap();
    let ack = proto::read_reply(&mut s).unwrap();
    let (_token, offset, _epoch) = proto::parse_resume_ack(&ack).unwrap();
    assert_eq!(offset, 0);
    for piece in cap.payload.chunks(64) {
        proto::write_data(&mut s, piece).unwrap();
    }
    proto::write_finish(&mut s, cap.bit_len).unwrap();
    s.flush().unwrap();
    proto::read_reply(&mut s).unwrap()
}

/// Everything but the wall-clock-dependent ingest line (B/s varies).
fn stable_lines(report: &str) -> Vec<&str> {
    report
        .lines()
        .filter(|l| !l.trim_start().starts_with("ingest"))
        .collect()
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn resume_pins_the_session_across_reconnect_and_shards() {
    let _guard = watchdog(Duration::from_secs(120), "fleet resume pinning");
    let cap = capture(400);
    let server = Server::spawn(
        Arc::clone(&cap.model),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            read_timeout: Duration::from_millis(150),
            resume_grace: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // The reference answer: the same capture, never interrupted.
    let uninterrupted = run_resumable(&server, &cap);

    // Now the same session dies mid-stream. First connection: hello,
    // ack, half the payload, then the transport vanishes without FINISH.
    let half = cap.payload.len() / 2;
    let (token, epoch) = {
        let mut s = connect(&server);
        proto::write_resume_hello(&mut s, 0, 1, MatchMode::Prefix, &cap.schema).unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (token, offset, epoch) = proto::parse_resume_ack(&ack).unwrap();
        assert!(token > 0, "fresh resumable session got token {token}");
        assert_eq!(offset, 0);
        for piece in cap.payload[..half].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        s.flush().unwrap();
        (token, epoch)
    };

    // The owning shard must notice the dead transport and park the
    // session rather than fail it.
    assert!(
        poll_until(Duration::from_secs(30), || server.snapshot().parked >= 1),
        "session was never parked: {:?}",
        server.snapshot()
    );

    // Reconnect with the token. Connection ids round-robin over shards,
    // so this connection lands on a different shard than the token's
    // owner — the daemon must hand it off, not lose it.
    let resumed = {
        let mut s = connect(&server);
        proto::write_resume_hello_as(
            &mut s,
            token,
            epoch,
            1,
            MatchMode::Prefix,
            0,
            0,
            &cap.schema,
        )
        .unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (acked, offset, _) = proto::parse_resume_ack(&ack).unwrap();
        assert_eq!(acked, token, "resume ack changed the token");
        let offset = usize::try_from(offset).unwrap();
        assert!(offset <= half, "server acked bytes it never saw");
        for piece in cap.payload[offset..].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        proto::write_finish(&mut s, cap.bit_len).unwrap();
        s.flush().unwrap();
        proto::read_reply(&mut s).unwrap()
    };

    let snap = server.snapshot();
    assert!(snap.resumed >= 1, "no resume counted: {snap:?}");
    assert!(snap.parked >= 1, "no park counted: {snap:?}");
    assert!(
        snap.handoffs >= 1,
        "reconnect landed cross-shard, so a handoff must be counted: {snap:?}"
    );
    assert_eq!(snap.worker_panics, 0);
    assert_eq!(
        stable_lines(&resumed),
        stable_lines(&uninterrupted),
        "resumed session diverged from the uninterrupted run:\n{resumed}\nvs\n{uninterrupted}"
    );
    server.shutdown();
}

#[test]
fn over_quota_tenants_are_shed_deterministically() {
    let _guard = watchdog(Duration::from_secs(120), "fleet tenant quota");
    let cap = capture(120);
    let server = Server::spawn(
        Arc::clone(&cap.model),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 2,
            tenant_quota: Some(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Tenant 7 occupies its whole quota with one in-flight session:
    // hello acked, payload half-sent, connection held open.
    let mut held = connect(&server);
    proto::write_resume_hello_as(&mut held, 0, 0, 1, MatchMode::Prefix, 7, 0, &cap.schema).unwrap();
    let ack = proto::read_reply(&mut held).unwrap();
    proto::parse_resume_ack(&ack).unwrap();

    // A second tenant-7 session must be rejected, every time, with the
    // quota named; the governor's answer does not depend on which shard
    // the connection lands on.
    for _ in 0..3 {
        let err = stream_ptw(
            server.local_addr(),
            cap.model.catalog(),
            1,
            MatchMode::Prefix,
            &cap.ptw,
            64,
        )
        .map(|_| ());
        // `stream_ptw` defaults to tenant 0 — prove the quota is
        // per-tenant by running tenant 7 raw instead.
        err.expect("tenant 0 is under quota and must be served");
        let mut s = connect(&server);
        proto::write_hello_as(&mut s, 1, MatchMode::Prefix, 7, 0, &cap.schema).unwrap();
        s.flush().unwrap();
        let verdict = proto::read_reply(&mut s);
        let msg = verdict.expect_err("tenant 7 is at quota").to_string();
        assert!(
            msg.contains("tenant") && msg.contains("quota"),
            "shed reason must name the quota: {msg}"
        );
    }

    let snap = server.snapshot();
    assert!(snap.shed >= 3, "three rejections counted as shed: {snap:?}");
    let exposition = pstrace::obs::render_prometheus_samples(&server.merged_samples());
    assert!(
        exposition.contains("pstrace_stream_shed_total{reason=\"tenant-quota-shed\"} 3"),
        "shed reason series missing:\n{exposition}"
    );

    // Tenant 7's held session still completes: shedding the overflow
    // never harms the session that holds the quota.
    for piece in cap.payload.chunks(64) {
        proto::write_data(&mut held, piece).unwrap();
    }
    proto::write_finish(&mut held, cap.bit_len).unwrap();
    held.flush().unwrap();
    proto::read_reply(&mut held).expect("held tenant-7 session completes");
    server.shutdown();
}

#[test]
fn sharded_registry_merge_matches_a_single_registry_run() {
    let cap = capture(300);
    let run = |shards: usize| -> (StatsSnapshot, String) {
        let server = Server::spawn(
            Arc::clone(&cap.model),
            &ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                shards,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        for _ in 0..4 {
            stream_ptw(
                server.local_addr(),
                cap.model.catalog(),
                1,
                MatchMode::Prefix,
                &cap.ptw,
                64,
            )
            .unwrap();
        }
        let exposition = pstrace::obs::render_prometheus_samples(&server.merged_samples());
        (server.shutdown(), exposition)
    };

    // Global session ids restart with each daemon, so both runs label
    // their per-session series 1..=4 — the expositions must be equal
    // key for key and value for value, not merely as aggregates.
    let (single_snap, single_expo) = run(1);
    let (sharded_snap, sharded_expo) = run(4);
    assert_eq!(single_snap, sharded_snap);
    assert_eq!(
        single_expo, sharded_expo,
        "merged 4-shard exposition diverged from the single-registry run"
    );
    assert_eq!(single_snap.completed, 4);
    assert_eq!(single_snap.failed, 0);
}

#[test]
fn shutdown_verb_drains_the_daemon_and_frees_the_port() {
    let _guard = watchdog(Duration::from_secs(60), "fleet shutdown drain");
    let cap = capture(120);
    let server = Server::spawn(
        Arc::clone(&cap.model),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A session completes before the shutdown request: normal service.
    stream_ptw(
        addr,
        cap.model.catalog(),
        1,
        MatchMode::Prefix,
        &cap.ptw,
        64,
    )
    .unwrap();

    let ack = request_shutdown(addr).unwrap();
    assert!(ack.contains("draining"), "shutdown ack: {ack}");
    assert!(server.shutdown_requested());

    // The accept thread exits and the listener closes; new connections
    // must start failing.
    assert!(
        poll_until(Duration::from_secs(30), || TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(200)
        )
        .is_err()),
        "the listener never closed after SHUTDOWN"
    );
    let snap = server.shutdown();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.worker_panics, 0);
}
