//! Scale stress tests (run with `cargo test -- --ignored`): the paper's
//! third contribution is making scalability an explicit objective, so the
//! machinery must hold up far beyond the paper scenarios.

use std::time::Instant;

use pstrace::flow::path_count;
use pstrace::infogain::LogBase;
use pstrace::select::{beam_select, TraceBufferSpec};
use pstrace::soc::{FlowKind, SocModel, UsageScenario};

/// A ~146k-state interleaving (3×3 flows, 27 concurrent instances' worth
/// of product structure) must build, count paths and beam-select within
/// seconds.
#[test]
#[ignore = "multi-second stress run; execute with -- --ignored"]
fn hundred_thousand_state_interleaving() {
    let model = SocModel::t2();
    let scenario = UsageScenario::custom(
        9,
        "stress",
        &[
            (FlowKind::PioWrite, 3),
            (FlowKind::NcuDownstream, 3),
            (FlowKind::Mondo, 3),
        ],
    );
    let t0 = Instant::now();
    let product = scenario.interleaving(&model).unwrap();
    assert!(product.state_count() > 100_000, "{}", product.state_count());
    assert!(t0.elapsed().as_secs() < 30, "build too slow");

    let t1 = Instant::now();
    let paths = path_count(&product);
    assert!(paths > 1_000_000_000, "combinatorial path space: {paths}");
    assert!(t1.elapsed().as_secs() < 30, "path DP too slow");

    let t2 = Instant::now();
    let buffer = TraceBufferSpec::new(32).unwrap();
    let best = beam_select(&product, buffer.width_bits(), 4, LogBase::Nats).unwrap();
    assert!(!best.messages.is_empty());
    assert!(best.gain > 0.0);
    assert!(t2.elapsed().as_secs() < 60, "beam selection too slow");
}

/// The product state budget aborts cleanly instead of exhausting memory.
#[test]
#[ignore = "multi-second stress run; execute with -- --ignored"]
fn product_budget_aborts_cleanly() {
    use pstrace::flow::{InterleaveConfig, InterleavedFlow};
    let model = SocModel::t2();
    let scenario = UsageScenario::custom(
        9,
        "over-budget",
        &[(FlowKind::Mondo, 6), (FlowKind::PioRead, 4)],
    );
    let err = InterleavedFlow::build_with(
        &scenario.instances(&model),
        InterleaveConfig {
            max_states: 100_000,
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        pstrace::flow::FlowError::ProductTooLarge { limit: 100_000 }
    ));
}
