//! Integration: a user-defined protocol, from text specification to path
//! localization, without touching the built-in T2 model.
//!
//! This is the downstream-adoption path: write flows in the DSL, select
//! trace messages, and debug from an observed message sequence.

use std::sync::Arc;

use pstrace::diag::{consistent_paths, localize, MatchMode};
use pstrace::flow::parse::parse_flows;
use pstrace::flow::{executions, path_count, FlowIndex, IndexedFlow, InterleavedFlow};
use pstrace::select::{flow_spec_coverage, SelectionConfig, Selector, TraceBufferSpec};

const SPEC: &str = r#"
# A NoC packet protocol: request/response with an optional retry branch.
message hdr    8
message retry  2
message gnt    4
message data   16
message eot    2
group   data.tag 4

flow "noc packet" {
    state  Idle Arb Retried Granted Streaming
    stop   Done
    initial Idle
    edge Idle      -hdr->   Arb
    edge Arb       -retry-> Retried
    edge Retried   -hdr->   Granted
    edge Arb       -gnt->   Granted
    edge Granted   -data->  Streaming
    edge Streaming -eot->   Done
}
"#;

#[test]
fn dsl_protocol_end_to_end() {
    let doc = parse_flows(SPEC).expect("spec parses");
    let flow = doc.flow("noc packet").expect("declared");
    assert!(!flow.is_linear(), "the retry branch makes it non-linear");
    assert_eq!(pstrace::flow::flow_path_count(flow), 2);

    // Three concurrent packets.
    let instances: Vec<IndexedFlow> = (1..=3)
        .map(|i| IndexedFlow::new(Arc::clone(flow), FlowIndex(i)))
        .collect();
    let product = InterleavedFlow::build(&instances).expect("interleaves");
    let total = path_count(&product);
    assert!(
        total > 1000,
        "3 packets x retry branches x interleavings: {total}"
    );

    // Select for a 12-bit buffer; the 16-bit data cannot fit whole, but
    // its 4-bit tag subgroup can pack.
    let report = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(12).expect("nonzero")),
    )
    .select()
    .expect("selects");
    assert!(report.utilization() >= 0.9, "{}", report.utilization());
    let data = doc.catalog.get("data").unwrap();
    assert!(
        !report.chosen.messages.contains(&data),
        "16-bit data cannot be selected whole"
    );
    let coverage = flow_spec_coverage(&product, &report.effective_messages);
    assert!(coverage > 0.5, "coverage {coverage}");

    // Debug from an observed trace: take a real execution, capture its
    // projection onto the selection, and localize.
    let exec = executions(&product).nth(7).expect("plenty of paths");
    let observed = exec.project(&report.effective_messages);
    let loc = localize(
        &product,
        &observed,
        &report.effective_messages,
        MatchMode::Exact,
    );
    assert!(loc.consistent >= 1);
    assert!(
        loc.fraction() < 0.05,
        "selection localizes to under 5% of paths, got {:.4}",
        loc.fraction()
    );

    // A truncated observation (hang) still matches as a prefix.
    let cut = &observed[..observed.len() / 2];
    let prefix_hits =
        consistent_paths(&product, cut, &report.effective_messages, MatchMode::Prefix);
    assert!(prefix_hits >= loc.consistent);
}

#[test]
fn dsl_retry_branch_is_distinguishable() {
    // Tracing `retry` and `gnt` pins each packet's branch choice exactly.
    let doc = parse_flows(SPEC).expect("spec parses");
    let flow = doc.flow("noc packet").expect("declared");
    let instances: Vec<IndexedFlow> = (1..=2)
        .map(|i| IndexedFlow::new(Arc::clone(flow), FlowIndex(i)))
        .collect();
    let product = InterleavedFlow::build(&instances).unwrap();
    let retry = doc.catalog.get("retry").unwrap();
    let gnt = doc.catalog.get("gnt").unwrap();
    let selected = [retry, gnt];

    for exec in executions(&product).take(50) {
        let observed = exec.project(&selected);
        let hits = consistent_paths(&product, &observed, &selected, MatchMode::Exact);
        // Branch choices are resolved; only the interleaving order of the
        // untraced messages stays free.
        assert!(hits >= 1);
        assert!(hits < path_count(&product));
    }
}
