//! Wire-format acceptance: the bit-packed codec against the modeled
//! capture path on every paper scenario.
//!
//! * `decode(encode(capture)) == capture` bit-for-bit on every scenario's
//!   selection — including circular-depth truncation;
//! * measured per-frame utilization equals the analytic
//!   `TraceBufferSpec::utilization` of the selection (Table 3), packed
//!   subgroup bits included;
//! * a corrupted frame is flagged and decoding resynchronizes at the next
//!   frame boundary instead of crashing or cascading;
//! * the chunked decoder is bit-identical to the sequential one;
//! * the `.ptw` container survives a disk round trip.

use pstrace::codec::{ProfileV2, DEFAULT_SYNC_EVERY};
use pstrace::faults::{corrupt_wire, FaultLedger, FaultPlan};
use pstrace::select::{Parallelism, SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::wirecap;
use pstrace::soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};
use pstrace_rng::Rng64;

fn paper_scenarios() -> Vec<UsageScenario> {
    vec![
        UsageScenario::scenario1(),
        UsageScenario::scenario2(),
        UsageScenario::scenario3(),
        UsageScenario::scenario_dma(),
        UsageScenario::scenario_coherence(),
    ]
}

/// Selection-derived trace config + schema for a scenario over the
/// paper's 32-bit buffer.
fn selection_setup(
    model: &SocModel,
    scenario: &UsageScenario,
    depth: Option<usize>,
) -> (TraceBufferConfig, wirecap::WireSchema, f64) {
    let buffer = TraceBufferSpec::new(32).expect("nonzero");
    let selection = Selector::new(
        &scenario.interleaving(model).expect("interleaves"),
        SelectionConfig::new(buffer),
    )
    .select()
    .expect("selection succeeds");
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth,
    };
    let schema =
        wirecap::wire_schema(model, &config, buffer.width_bits()).expect("schema fits buffer");
    (config, schema, selection.utilization())
}

#[test]
fn every_scenario_round_trips_bit_identically() {
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        for depth in [None, Some(4)] {
            let (config, schema, _) = selection_setup(&model, &scenario, depth);
            let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2018)).run();
            let direct = capture(&model, &out, &config);
            let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
                .expect("records fit the schema");
            let (decoded, report) = wirecap::decode_capture(
                &schema,
                &stream.bytes,
                Some(stream.bit_len),
                Parallelism::Off,
            );
            assert!(
                report.is_clean(),
                "{}: {:?}",
                scenario.name(),
                report.damaged
            );
            assert_eq!(
                decoded,
                direct,
                "{} depth {:?}: decode(encode(x)) != capture(x)",
                scenario.name(),
                depth
            );
        }
    }
}

#[test]
fn measured_utilization_matches_the_analytic_model() {
    // Satellite 3: the decoder-side occupancy measurement reproduces the
    // Table-3 utilization numbers the selection model predicts, packed
    // subgroup bits included.
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        let (config, schema, modeled) = selection_setup(&model, &scenario, None);
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(7)).run();
        let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
            .expect("records fit the schema");
        let (_, report) = wirecap::decode_capture(
            &schema,
            &stream.bytes,
            Some(stream.bit_len),
            Parallelism::Off,
        );
        assert!(
            (report.utilization() - modeled).abs() < 1e-12,
            "{}: measured {} != modeled {}",
            scenario.name(),
            report.utilization(),
            modeled
        );
        assert!(
            report.utilization() > 0.5,
            "{}: a selected schema should fill most of the 32-bit buffer, measured {:.4}",
            scenario.name(),
            report.utilization()
        );
    }
}

#[test]
fn corrupted_frame_is_flagged_and_decoding_resyncs() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let (config, schema, _) = selection_setup(&model, &scenario, None);
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(2018)).run();
    let direct = capture(&model, &out, &config);
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");
    assert!(stream.frames >= 4, "fixture needs a few frames");

    // Trash a middle frame wholesale (every byte it touches).
    let mut bytes = stream.bytes.clone();
    let frame_bits = u64::from(schema.frame_bits());
    let victim = stream.frames / 2;
    let first_byte = (victim as u64 * frame_bits / 8) as usize;
    let last_byte = (((victim as u64 + 1) * frame_bits - 1) / 8) as usize;
    for b in &mut bytes[first_byte..=last_byte] {
        *b = !*b;
    }

    let (decoded, report) =
        wirecap::decode_capture(&schema, &bytes, Some(stream.bit_len), Parallelism::Off);
    assert!(!report.is_clean(), "the damage must be flagged");
    assert!(
        report.damaged.iter().any(|d| d.frame == victim),
        "the trashed frame {victim} must be flagged: {:?}",
        report.damaged
    );
    // Resync: every record outside the damaged neighborhood survives.
    // (Byte-sharing and the time heuristic may cost the immediate
    // neighbors, never more.)
    assert!(
        decoded.len() + 3 >= direct.len(),
        "damage cascaded: {} of {} records survive",
        decoded.len(),
        direct.len()
    );
    let direct_records = direct.records();
    for r in decoded.records() {
        assert!(
            direct_records.contains(r),
            "decoder invented a record: {r:?}"
        );
    }
}

#[test]
fn chunked_decode_is_bit_identical_to_sequential() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario3();
    let (config, schema, _) = selection_setup(&model, &scenario, None);
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(99)).run();
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");
    let (seq_trace, seq_report) = wirecap::decode_capture(
        &schema,
        &stream.bytes,
        Some(stream.bit_len),
        Parallelism::Off,
    );
    for parallelism in [
        Parallelism::Auto,
        Parallelism::threads(2),
        Parallelism::threads(7),
    ] {
        let (trace, report) =
            wirecap::decode_capture(&schema, &stream.bytes, Some(stream.bit_len), parallelism);
        assert_eq!(trace, seq_trace, "{parallelism:?}");
        assert_eq!(report, seq_report, "{parallelism:?}");
    }
}

#[test]
fn every_scenario_round_trips_bit_identically_under_v2() {
    // Tentpole invariant, v2 edition: the compressed dialect reproduces
    // the modeled capture bit-for-bit on every scenario's selection,
    // including circular-depth truncation, at several sync cadences.
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        for depth in [None, Some(4)] {
            let (config, schema, _) = selection_setup(&model, &scenario, depth);
            let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2018)).run();
            let direct = capture(&model, &out, &config);
            for sync_every in [1u16, 16, DEFAULT_SYNC_EVERY] {
                let profile = ProfileV2 { sync_every };
                let stream = wirecap::encode_events_with(
                    model.catalog(),
                    &schema,
                    &out.events,
                    &config,
                    &profile,
                )
                .expect("records fit the schema");
                let (decoded, report) = wirecap::decode_capture_with(
                    &schema,
                    &stream.bytes,
                    Some(stream.bit_len),
                    &profile,
                );
                assert!(
                    report.is_clean(),
                    "{} sync {}: {:?}",
                    scenario.name(),
                    sync_every,
                    report.damaged
                );
                assert_eq!(
                    decoded,
                    direct,
                    "{} depth {:?} sync {}: v2 decode(encode(x)) != capture(x)",
                    scenario.name(),
                    depth,
                    sync_every
                );
            }
        }
    }
}

/// A reference corpus for a scenario: several seeded runs of the same
/// workload back to back, times rebased so the stream stays one
/// monotone capture (a longer soak of the same scenario).
fn reference_corpus(
    model: &SocModel,
    scenario: &UsageScenario,
    seeds: u64,
) -> Vec<pstrace::soc::MessageEvent> {
    let mut events = Vec::new();
    let mut base = 0u64;
    for seed in 0..seeds {
        let out = Simulator::new(model, scenario.clone(), SimConfig::with_seed(2018 + seed)).run();
        let mut last = base;
        for e in &out.events {
            let mut e = *e;
            e.time += base;
            last = last.max(e.time);
            events.push(e);
        }
        base = last + 1;
    }
    events
}

#[test]
fn v2_is_at_least_20_percent_smaller_on_every_scenario() {
    // Acceptance criterion: on all five reference scenarios the v2 wire
    // is >= 20 % smaller than v1 at the default sync cadence — i.e. at
    // the damage tolerance the corruption tests pin.
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        let (config, schema, _) = selection_setup(&model, &scenario, None);
        let events = reference_corpus(&model, &scenario, 8);
        let v1 = wirecap::encode_events(model.catalog(), &schema, &events, &config)
            .expect("records fit the schema");
        let v2 = wirecap::encode_events_with(
            model.catalog(),
            &schema,
            &events,
            &config,
            &ProfileV2::default(),
        )
        .expect("records fit the schema");
        assert!(
            (v2.bytes.len() as f64) <= 0.8 * v1.bytes.len() as f64,
            "{}: v2 {} bytes vs v1 {} bytes ({:.1} %)",
            scenario.name(),
            v2.bytes.len(),
            v1.bytes.len(),
            100.0 * v2.bytes.len() as f64 / v1.bytes.len() as f64
        );
    }
}

#[test]
fn v2_corruption_from_the_fault_injector_stays_bounded() {
    // Equal damage tolerance: the seeded fault injector's bit flips
    // (byte granularity — v2 is byte-aligned) never panic the decoder,
    // never make it invent records, and each injected fault costs at
    // most its sync window plus the following resync hunt.
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let (config, schema, _) = selection_setup(&model, &scenario, None);
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(2018)).run();
    let direct = capture(&model, &out, &config);
    let sync_every = 8u16;
    let profile = ProfileV2 { sync_every };
    let stream =
        wirecap::encode_events_with(model.catalog(), &schema, &out.events, &config, &profile)
            .expect("records fit the schema");

    // Flips-only plan: every ledger entry is one flipped bit, so the
    // loss budget is exact — at most two sync windows per flip (the
    // window it lands in, plus a neighbor if it forges a header).
    let mut flips = FaultPlan::quiet(0xC0DEC);
    flips.wire.bit_flip = 1e-3;
    let mut rng = Rng64::seed_from_u64(0xC0DEC);
    let mut any_fault = false;
    for session in 0..32u64 {
        let mut ledger = FaultLedger::new();
        let mangled = corrupt_wire(&flips, session, 8, &stream, &mut rng, &mut ledger);
        let (decoded, report) =
            wirecap::decode_capture_with(&schema, &mangled.bytes, Some(mangled.bit_len), &profile);
        if ledger.is_empty() {
            assert!(report.is_clean(), "clean bytes must decode clean");
            assert_eq!(decoded, direct);
            continue;
        }
        any_fault = true;
        assert!(
            !report.is_clean(),
            "session {session}: damage must be flagged"
        );
        let direct_records = direct.records();
        for r in decoded.records() {
            assert!(
                direct_records.contains(r),
                "session {session}: decoder invented a record: {r:?}"
            );
        }
        let lost = direct.len() - decoded.len();
        let budget = ledger.len() * 2 * usize::from(sync_every);
        assert!(
            lost <= budget,
            "session {session}: lost {lost} records to {} flips (window {sync_every})",
            ledger.len()
        );
    }
    assert!(any_fault, "1e-3 flips over 32 runs must corrupt something");

    // The full standard plan adds storms, truncation, duplication and
    // reordering: those can legitimately cost arbitrary spans, so the
    // bar is no panic and no invented records.
    let plan = FaultPlan::standard(0xC0DEC);
    let mut ledger = FaultLedger::new();
    for session in 0..16u64 {
        let mangled = corrupt_wire(&plan, session, 8, &stream, &mut rng, &mut ledger);
        let (decoded, _) =
            wirecap::decode_capture_with(&schema, &mangled.bytes, Some(mangled.bit_len), &profile);
        let direct_records = direct.records();
        for r in decoded.records() {
            assert!(
                direct_records.contains(r),
                "session {session}: decoder invented a record: {r:?}"
            );
        }
    }
    assert!(!ledger.is_empty(), "the standard plan must inject faults");
}

#[test]
fn ptw_container_survives_the_disk() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario2();
    let (config, schema, _) = selection_setup(&model, &scenario, Some(8));
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(5)).run();
    let direct = capture(&model, &out, &config);
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");

    let path = std::env::temp_dir().join("pstrace_wire_roundtrip.ptw");
    std::fs::write(&path, wirecap::write_ptw(model.catalog(), &schema, &stream)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let (schema2, stream2) = wirecap::read_ptw(model.catalog(), &bytes).expect("valid container");
    assert_eq!(schema2, schema);
    assert_eq!(stream2, stream);
    let (decoded, report) = wirecap::decode_capture(
        &schema2,
        &stream2.bytes,
        Some(stream2.bit_len),
        Parallelism::Auto,
    );
    assert!(report.is_clean());
    assert_eq!(decoded, direct);
}
