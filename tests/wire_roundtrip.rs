//! Wire-format acceptance: the bit-packed codec against the modeled
//! capture path on every paper scenario.
//!
//! * `decode(encode(capture)) == capture` bit-for-bit on every scenario's
//!   selection — including circular-depth truncation;
//! * measured per-frame utilization equals the analytic
//!   `TraceBufferSpec::utilization` of the selection (Table 3), packed
//!   subgroup bits included;
//! * a corrupted frame is flagged and decoding resynchronizes at the next
//!   frame boundary instead of crashing or cascading;
//! * the chunked decoder is bit-identical to the sequential one;
//! * the `.ptw` container survives a disk round trip.

use pstrace::select::{Parallelism, SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::wirecap;
use pstrace::soc::{capture, SimConfig, Simulator, SocModel, TraceBufferConfig, UsageScenario};

fn paper_scenarios() -> Vec<UsageScenario> {
    vec![
        UsageScenario::scenario1(),
        UsageScenario::scenario2(),
        UsageScenario::scenario3(),
        UsageScenario::scenario_dma(),
        UsageScenario::scenario_coherence(),
    ]
}

/// Selection-derived trace config + schema for a scenario over the
/// paper's 32-bit buffer.
fn selection_setup(
    model: &SocModel,
    scenario: &UsageScenario,
    depth: Option<usize>,
) -> (TraceBufferConfig, wirecap::WireSchema, f64) {
    let buffer = TraceBufferSpec::new(32).expect("nonzero");
    let selection = Selector::new(
        &scenario.interleaving(model).expect("interleaves"),
        SelectionConfig::new(buffer),
    )
    .select()
    .expect("selection succeeds");
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth,
    };
    let schema =
        wirecap::wire_schema(model, &config, buffer.width_bits()).expect("schema fits buffer");
    (config, schema, selection.utilization())
}

#[test]
fn every_scenario_round_trips_bit_identically() {
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        for depth in [None, Some(4)] {
            let (config, schema, _) = selection_setup(&model, &scenario, depth);
            let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(2018)).run();
            let direct = capture(&model, &out, &config);
            let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
                .expect("records fit the schema");
            let (decoded, report) = wirecap::decode_capture(
                &schema,
                &stream.bytes,
                Some(stream.bit_len),
                Parallelism::Off,
            );
            assert!(
                report.is_clean(),
                "{}: {:?}",
                scenario.name(),
                report.damaged
            );
            assert_eq!(
                decoded,
                direct,
                "{} depth {:?}: decode(encode(x)) != capture(x)",
                scenario.name(),
                depth
            );
        }
    }
}

#[test]
fn measured_utilization_matches_the_analytic_model() {
    // Satellite 3: the decoder-side occupancy measurement reproduces the
    // Table-3 utilization numbers the selection model predicts, packed
    // subgroup bits included.
    let model = SocModel::t2();
    for scenario in paper_scenarios() {
        let (config, schema, modeled) = selection_setup(&model, &scenario, None);
        let out = Simulator::new(&model, scenario.clone(), SimConfig::with_seed(7)).run();
        let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
            .expect("records fit the schema");
        let (_, report) = wirecap::decode_capture(
            &schema,
            &stream.bytes,
            Some(stream.bit_len),
            Parallelism::Off,
        );
        assert!(
            (report.utilization() - modeled).abs() < 1e-12,
            "{}: measured {} != modeled {}",
            scenario.name(),
            report.utilization(),
            modeled
        );
        assert!(
            report.utilization() > 0.5,
            "{}: a selected schema should fill most of the 32-bit buffer, measured {:.4}",
            scenario.name(),
            report.utilization()
        );
    }
}

#[test]
fn corrupted_frame_is_flagged_and_decoding_resyncs() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let (config, schema, _) = selection_setup(&model, &scenario, None);
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(2018)).run();
    let direct = capture(&model, &out, &config);
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");
    assert!(stream.frames >= 4, "fixture needs a few frames");

    // Trash a middle frame wholesale (every byte it touches).
    let mut bytes = stream.bytes.clone();
    let frame_bits = u64::from(schema.frame_bits());
    let victim = stream.frames / 2;
    let first_byte = (victim as u64 * frame_bits / 8) as usize;
    let last_byte = (((victim as u64 + 1) * frame_bits - 1) / 8) as usize;
    for b in &mut bytes[first_byte..=last_byte] {
        *b = !*b;
    }

    let (decoded, report) =
        wirecap::decode_capture(&schema, &bytes, Some(stream.bit_len), Parallelism::Off);
    assert!(!report.is_clean(), "the damage must be flagged");
    assert!(
        report.damaged.iter().any(|d| d.frame == victim),
        "the trashed frame {victim} must be flagged: {:?}",
        report.damaged
    );
    // Resync: every record outside the damaged neighborhood survives.
    // (Byte-sharing and the time heuristic may cost the immediate
    // neighbors, never more.)
    assert!(
        decoded.len() + 3 >= direct.len(),
        "damage cascaded: {} of {} records survive",
        decoded.len(),
        direct.len()
    );
    let direct_records = direct.records();
    for r in decoded.records() {
        assert!(
            direct_records.contains(r),
            "decoder invented a record: {r:?}"
        );
    }
}

#[test]
fn chunked_decode_is_bit_identical_to_sequential() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario3();
    let (config, schema, _) = selection_setup(&model, &scenario, None);
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(99)).run();
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");
    let (seq_trace, seq_report) = wirecap::decode_capture(
        &schema,
        &stream.bytes,
        Some(stream.bit_len),
        Parallelism::Off,
    );
    for parallelism in [
        Parallelism::Auto,
        Parallelism::threads(2),
        Parallelism::threads(7),
    ] {
        let (trace, report) =
            wirecap::decode_capture(&schema, &stream.bytes, Some(stream.bit_len), parallelism);
        assert_eq!(trace, seq_trace, "{parallelism:?}");
        assert_eq!(report, seq_report, "{parallelism:?}");
    }
}

#[test]
fn ptw_container_survives_the_disk() {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario2();
    let (config, schema, _) = selection_setup(&model, &scenario, Some(8));
    let out = Simulator::new(&model, scenario, SimConfig::with_seed(5)).run();
    let direct = capture(&model, &out, &config);
    let stream = wirecap::encode_events(model.catalog(), &schema, &out.events, &config)
        .expect("records fit the schema");

    let path = std::env::temp_dir().join("pstrace_wire_roundtrip.ptw");
    std::fs::write(&path, wirecap::write_ptw(model.catalog(), &schema, &stream)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let (schema2, stream2) = wirecap::read_ptw(model.catalog(), &bytes).expect("valid container");
    assert_eq!(schema2, schema);
    assert_eq!(stream2, stream);
    let (decoded, report) = wirecap::decode_capture(
        &schema2,
        &stream2.bytes,
        Some(stream2.bit_len),
        Parallelism::Auto,
    );
    assert!(report.is_clean());
    assert_eq!(decoded, direct);
}
