//! Crash-only ingest contracts: a parked session's resume token works
//! across a daemon restart (checkpoint + WAL replay), tokens from a
//! foreign WAL lineage are shed with a typed epoch rejection, and
//! `pstrace stop` against a dead daemon fails fast with a typed
//! connection error instead of burning a retry budget.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pstrace::diag::MatchMode;
use pstrace::faults::watchdog;
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::obs::EventKind;
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::durable::DurabilityPolicy;
use pstrace::stream::{proto, request_shutdown, Server, ServerConfig, StreamError};
use pstrace::wire::{encode_records, read_ptw_schema, write_ptw, WireRecord};

/// A small scenario-1 capture split the way the PSTS handshake wants
/// it: schema prefix, payload bit length, payload bytes.
struct Capture {
    model: Arc<SocModel>,
    schema: Vec<u8>,
    bit_len: u64,
    payload: Vec<u8>,
}

fn capture(records: usize) -> Capture {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).unwrap();
    let flow = scenario.interleaving(&model).unwrap();
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .unwrap();
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).unwrap();
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).unwrap();
    let ptw = write_ptw(model.catalog(), &schema, &encoded);
    let (_, consumed) = read_ptw_schema(model.catalog(), &ptw).unwrap();
    let schema_bytes = ptw[..consumed].to_vec();
    let rest = &ptw[consumed..];
    let bit_len = u64::from_le_bytes(rest[..8].try_into().unwrap());
    let payload = rest[8..].to_vec();
    Capture {
        model: Arc::new(model),
        schema: schema_bytes,
        bit_len,
        payload,
    }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pstrace-crashrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        read_timeout: Duration::from_millis(150),
        resume_grace: Duration::from_secs(30),
        durability: DurabilityPolicy::Strict,
        wal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// One uninterrupted resumable session over a raw socket; returns the
/// final report text.
fn run_resumable(server: &Server, cap: &Capture) -> String {
    let mut s = connect(server);
    proto::write_resume_hello(&mut s, 0, 1, MatchMode::Prefix, &cap.schema).unwrap();
    let ack = proto::read_reply(&mut s).unwrap();
    let (_token, offset, _epoch) = proto::parse_resume_ack(&ack).unwrap();
    assert_eq!(offset, 0);
    for piece in cap.payload.chunks(64) {
        proto::write_data(&mut s, piece).unwrap();
    }
    proto::write_finish(&mut s, cap.bit_len).unwrap();
    s.flush().unwrap();
    proto::read_reply(&mut s).unwrap()
}

/// Everything but the wall-clock-dependent ingest line (B/s varies).
fn stable_lines(report: &str) -> Vec<&str> {
    report
        .lines()
        .filter(|l| !l.trim_start().starts_with("ingest"))
        .collect()
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn parked_session_resumes_across_a_daemon_restart() {
    let _guard = watchdog(Duration::from_secs(120), "crash recovery resume");
    let dir = wal_dir("resume");
    let cap = capture(400);

    // Life #1: a reference run, then a session that dies half-streamed
    // and parks. Shutting the daemon down with the session still parked
    // leaves its Open + Park group in the WAL — the crash-only property
    // is that restart and crash recovery are the same code path.
    let first = Server::spawn(Arc::clone(&cap.model), &durable_config(&dir)).unwrap();
    let uninterrupted = run_resumable(&first, &cap);
    let daemon_epoch = first.epoch();
    assert_ne!(daemon_epoch, 0, "a durable daemon mints a nonzero epoch");

    let half = cap.payload.len() / 2;
    let (token, epoch) = {
        let mut s = connect(&first);
        proto::write_resume_hello(&mut s, 0, 1, MatchMode::Prefix, &cap.schema).unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (token, offset, epoch) = proto::parse_resume_ack(&ack).unwrap();
        assert!(token > 0);
        assert_eq!(offset, 0);
        assert_eq!(epoch, daemon_epoch, "the ack quotes the daemon's epoch");
        for piece in cap.payload[..half].chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        s.flush().unwrap();
        (token, epoch)
    };
    assert!(
        poll_until(Duration::from_secs(30), || first.snapshot().parked >= 1),
        "session was never parked: {:?}",
        first.snapshot()
    );
    first.shutdown();

    // Life #2: same WAL directory. Recovery must re-mint the same epoch,
    // re-park the journaled session, and honor the pre-crash token.
    let second = Server::spawn(Arc::clone(&cap.model), &durable_config(&dir)).unwrap();
    assert_eq!(second.epoch(), epoch, "the epoch survives restarts");
    assert!(
        poll_until(Duration::from_secs(30), || second.snapshot().recovered >= 1),
        "no session recovered: {:?}",
        second.snapshot()
    );
    // The recovery shows up in the flight journal too: lane-0 fr-recover
    // events carry the restored/replayed/skipped counts.
    assert!(
        second
            .flight_snapshot()
            .events
            .iter()
            .any(|e| e.kind == EventKind::Recover),
        "recovery must be journaled as fr-recover events"
    );

    let resumed = {
        let mut s = connect(&second);
        proto::write_resume_hello_as(
            &mut s,
            token,
            epoch,
            1,
            MatchMode::Prefix,
            0,
            0,
            &cap.schema,
        )
        .unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (acked, offset, acked_epoch) = proto::parse_resume_ack(&ack).unwrap();
        assert_eq!(acked, token, "resume ack changed the token");
        assert_eq!(acked_epoch, epoch);
        assert_eq!(offset, 0, "payload is not durable: the client resends");
        for piece in cap.payload.chunks(64) {
            proto::write_data(&mut s, piece).unwrap();
        }
        proto::write_finish(&mut s, cap.bit_len).unwrap();
        s.flush().unwrap();
        proto::read_reply(&mut s).unwrap()
    };
    let snap = second.snapshot();
    assert!(snap.resumed >= 1, "no resume counted: {snap:?}");
    assert_eq!(snap.worker_panics, 0);
    assert_eq!(
        stable_lines(&resumed),
        stable_lines(&uninterrupted),
        "recovered session diverged from the uninterrupted run:\n{resumed}\nvs\n{uninterrupted}"
    );
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_lineage_tokens_are_shed_with_a_typed_epoch_rejection() {
    let _guard = watchdog(Duration::from_secs(120), "crash recovery epoch shed");
    let dir_a = wal_dir("lineage-a");
    let dir_b = wal_dir("lineage-b");
    let cap = capture(200);

    // A token minted by daemon A (WAL lineage A)…
    let a = Server::spawn(Arc::clone(&cap.model), &durable_config(&dir_a)).unwrap();
    let (token, epoch) = {
        let mut s = connect(&a);
        proto::write_resume_hello(&mut s, 0, 1, MatchMode::Prefix, &cap.schema).unwrap();
        let ack = proto::read_reply(&mut s).unwrap();
        let (token, _, epoch) = proto::parse_resume_ack(&ack).unwrap();
        (token, epoch)
    };
    a.shutdown();

    // …presented to daemon B (lineage B): splicing it into B's tables
    // would corrupt someone else's session, so B sheds it politely and
    // accounts the shed under its own reason label.
    let b = Server::spawn(Arc::clone(&cap.model), &durable_config(&dir_b)).unwrap();
    assert_ne!(
        b.epoch(),
        epoch,
        "distinct WAL lineages mint distinct epochs"
    );
    let mut s = connect(&b);
    proto::write_resume_hello_as(
        &mut s,
        token,
        epoch,
        1,
        MatchMode::Prefix,
        0,
        0,
        &cap.schema,
    )
    .unwrap();
    let err = proto::read_reply(&mut s).expect_err("foreign token must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("epoch") && msg.contains("rejected"),
        "rejection must name the epoch mismatch: {msg}"
    );
    drop(s);

    let snap = b.snapshot();
    assert!(snap.shed >= 1, "the rejection is counted as shed: {snap:?}");
    let exposition = pstrace::obs::render_prometheus_samples(&b.merged_samples());
    assert!(
        exposition.contains("pstrace_stream_shed_total{reason=\"resume-epoch-shed\"} 1"),
        "shed reason series missing:\n{exposition}"
    );
    assert!(
        b.flight_snapshot()
            .events
            .iter()
            .any(|e| e.kind == EventKind::Shed),
        "the shed must be journaled"
    );
    b.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn stop_against_a_dead_daemon_fails_fast_with_a_typed_error() {
    // A port that was just released: nothing is listening there.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let started = Instant::now();
    let err = request_shutdown(addr).expect_err("no daemon is listening");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, StreamError::Unreachable { .. }),
        "typed connection error, not a generic i/o failure: {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("unreachable") && msg.contains(&addr.port().to_string()),
        "the error names the dead address: {msg}"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "stop must fail fast, not burn a retry budget: {elapsed:?}"
    );
}
