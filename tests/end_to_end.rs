//! End-to-end integration: the full select → simulate → inject → capture →
//! localize → diagnose pipeline across every case study, asserting the
//! qualitative shape of the paper's Tables 3 and 6 and Figures 6 and 7.

use pstrace::bug::{bug_catalog, case_studies, Symptom};
use pstrace::diag::{run_case_study, CaseStudyConfig};
use pstrace::soc::SocModel;

#[test]
fn table_3_shape_holds() {
    let model = SocModel::t2();
    for cs in case_studies() {
        let with = run_case_study(
            &model,
            &cs,
            CaseStudyConfig {
                buffer_bits: 32,
                packing: true,
                depth: None,
                wire: false,
            },
        )
        .expect("case study runs");
        let without = run_case_study(
            &model,
            &cs,
            CaseStudyConfig {
                buffer_bits: 32,
                packing: false,
                depth: None,
                wire: false,
            },
        )
        .expect("case study runs");

        // Utilization high and never hurt by packing.
        assert!(with.selection.utilization() >= 0.9, "case {}", cs.number);
        assert!(with.selection.utilization() >= without.selection.utilization());
        // Coverage substantial and never hurt by packing.
        assert!(with.selection.coverage() >= 0.7, "case {}", cs.number);
        assert!(with.selection.coverage() + 1e-12 >= without.selection.coverage());
        // Localization: a small fraction of all interleaved-flow paths.
        assert!(
            with.path_localization() <= 0.10,
            "case {}: localization {:.3}",
            cs.number,
            with.path_localization()
        );
        assert!(with.path_localization() <= without.path_localization() + 1e-12);
    }
}

#[test]
fn every_case_study_symptomizes_and_diagnoses() {
    let model = SocModel::t2();
    let catalog = bug_catalog(&model);
    for cs in case_studies() {
        let report = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
        // A symptom is always observable.
        let symptom = report.symptom.as_ref().expect("symptom observed");
        match cs.number {
            1 => assert!(matches!(symptom, Symptom::Hang { .. })),
            _ => assert!(matches!(symptom, Symptom::BadTrap { .. })),
        }
        // Figure 7 shape: a majority of causes is pruned…
        assert!(
            report.pruned_fraction() >= 0.5,
            "case {}: pruned only {:.2}",
            cs.number,
            report.pruned_fraction()
        );
        // …and the truly buggy IP always remains among the plausible.
        let true_ip = cs.bugs(&catalog)[0].ip;
        assert!(
            report.causes.plausible().iter().any(|c| c.ip == true_ip),
            "case {}: true IP {true_ip} was pruned",
            cs.number
        );
    }
}

#[test]
fn figure_6_series_are_monotone() {
    let model = SocModel::t2();
    for cs in case_studies() {
        let report = run_case_study(&model, &cs, CaseStudyConfig::default()).unwrap();
        let pairs = report.walk.pair_elimination_series();
        let causes = report.walk.cause_elimination_series();
        assert!(!pairs.is_empty());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for w in causes.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Table 6 shape: only a fraction of legal IP pairs is ever
        // investigated.
        assert!(report.walk.pairs_investigated.len() <= report.walk.legal_pairs.len());
        assert!(!report.walk.pairs_investigated.is_empty());
    }
}

#[test]
fn pipeline_is_deterministic() {
    let model = SocModel::t2();
    let cs = &case_studies()[2];
    let a = run_case_study(&model, cs, CaseStudyConfig::default()).unwrap();
    let b = run_case_study(&model, cs, CaseStudyConfig::default()).unwrap();
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.localization, b.localization);
    assert_eq!(a.captured, b.captured);
    assert_eq!(a.symptom, b.symptom);
}
