//! Integration: the §5.4 USB baseline comparison shape (Table 4).

use std::sync::Arc;

use pstrace::flow::{FlowIndex, IndexedFlow, InterleavedFlow};
use pstrace::rtl::{prnet_select, sigset_select, simulate, RandomStimulus, UsbDesign};
use pstrace::select::{flow_spec_coverage, SelectionConfig, Selector, TraceBufferSpec};

#[test]
fn table_4_shape_holds() {
    let usb = UsbDesign::new();
    let flows = vec![
        IndexedFlow::new(Arc::clone(&usb.flows[0]), FlowIndex(1)),
        IndexedFlow::new(Arc::clone(&usb.flows[1]), FlowIndex(2)),
    ];
    let product = InterleavedFlow::build(&flows).unwrap();
    // Stimulus seed re-pinned when the workspace moved from external `rand`
    // to the internal SplitMix64 generator: the stimulus stream changed, and
    // seed 11 reproduces the Table-4 shape the old seed 2 exhibited.
    let reference = simulate(&usb.netlist, &RandomStimulus::new(&usb.netlist, 48, 11), 48);

    let budget = 8;
    let sigset = sigset_select(&usb.netlist, &reference, budget);
    let prnet = prnet_select(&usb.netlist, budget);
    let info = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(budget as u32).unwrap()),
    )
    .select()
    .unwrap();
    let info_signals = usb.signals_of_messages(&info.chosen.messages);

    // SigSeT never touches the debug-relevant interface.
    assert!(sigset.iter().all(|s| !usb.interface_signals.contains(s)));
    // The info-gain method selects only interface signals.
    assert!(info_signals
        .iter()
        .all(|s| usb.interface_signals.contains(s)));

    // Coverage ordering: InfoGain >> PRNet >= SigSeT.
    let info_cov = flow_spec_coverage(&product, &info.chosen.messages);
    let sigset_cov = flow_spec_coverage(&product, &usb.messages_covered_by(&sigset));
    let prnet_cov = flow_spec_coverage(&product, &usb.messages_covered_by(&prnet));
    assert!(info_cov >= 0.8, "info gain coverage {info_cov:.3}");
    assert!(info_cov > 2.0 * prnet_cov.max(0.05));
    assert!(prnet_cov >= sigset_cov);

    // The §1 reconstruction claim: SRR-selected signals reconstruct only
    // a small fraction of interface-message occurrences; the flow method's
    // signals reconstruct theirs trivially.
    let sigset_recon = usb.message_reconstruction(&sigset, &reference);
    assert!(
        sigset_recon <= 0.26,
        "SigSeT reconstructs {sigset_recon:.2}"
    );
    let all_interface = usb.message_reconstruction(&usb.interface_signals, &reference);
    assert!((all_interface - 1.0).abs() < 1e-12);
}

#[test]
fn full_budget_selects_every_interface_message() {
    let usb = UsbDesign::new();
    let flows = vec![
        IndexedFlow::new(Arc::clone(&usb.flows[0]), FlowIndex(1)),
        IndexedFlow::new(Arc::clone(&usb.flows[1]), FlowIndex(2)),
    ];
    let product = InterleavedFlow::build(&flows).unwrap();
    // All 7 messages fit in 11 bits.
    let report = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(11).unwrap()),
    )
    .select()
    .unwrap();
    assert_eq!(report.chosen.messages.len(), 7);
    let signals = usb.signals_of_messages(&report.chosen.messages);
    for s in &usb.interface_signals {
        assert!(
            signals.contains(s),
            "missing {}",
            usb.netlist.signal_name(*s)
        );
    }
}
