//! Loopback serve → stream → diagnose smoke test: the live ingest
//! daemon's session report must reproduce the batch `pstrace debug`
//! localization for a paper case study, over a real TCP socket.

use std::sync::Arc;

use pstrace::bug::{bug_catalog, case_studies, BugInterceptor};
use pstrace::diag::{run_case_study, CaseStudyConfig, MatchMode};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SimConfig, Simulator, SocModel, TraceBufferConfig};
use pstrace::stream::{fetch_metrics, stream_ptw, Server, ServerConfig};
use pstrace::wire::write_ptw;

/// The localization line (`  localization    : C of T interleaved-flow
/// paths (P%)`) of a rendered report.
fn localization_line(report: &str) -> String {
    report
        .lines()
        .find(|l| l.trim_start().starts_with("localization"))
        .expect("report carries a localization line")
        .to_owned()
}

#[test]
fn loopback_stream_reproduces_batch_debug_localization() {
    let model = SocModel::t2();
    let case = case_studies()
        .into_iter()
        .find(|c| c.number == 1)
        .expect("case study 1 exists");

    // The batch pipeline, exactly as `pstrace debug --case 1` runs it.
    let batch = run_case_study(&model, &case, CaseStudyConfig::default()).unwrap();
    let batch_line = localization_line(&batch.render(&model));

    // Rebuild the same buggy run's capture as a `.ptw` wire container:
    // same selection, same seed, same injected bugs.
    let scenario = case.scenario.clone();
    let interleaving = scenario.interleaving(&model).unwrap();
    let mut sel_config = SelectionConfig::new(TraceBufferSpec::new(32).unwrap());
    sel_config.packing = true;
    let selection = Selector::new(&interleaving, sel_config).select().unwrap();
    let trace_config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };

    let sim = Simulator::new(&model, scenario, SimConfig::with_seed(case.seed));
    let catalog = bug_catalog(&model);
    let mut interceptor = BugInterceptor::new(&model, case.bugs(&catalog));
    let buggy = sim.run_with(&mut interceptor);
    assert!(
        !buggy.status.is_completed(),
        "case study 1 hangs, so the batch pipeline localizes in Prefix mode"
    );

    let schema = wirecap::wire_schema(&model, &trace_config, 32).unwrap();
    let stream =
        wirecap::encode_events(model.catalog(), &schema, &buggy.events, &trace_config).unwrap();
    let ptw = write_ptw(model.catalog(), &schema, &stream);

    // Serve on an ephemeral loopback port and replay the capture in
    // small chunks so the session crosses many frame boundaries.
    let server = Server::spawn(Arc::new(SocModel::t2()), &ServerConfig::default()).unwrap();
    let report = stream_ptw(
        server.local_addr(),
        model.catalog(),
        case.number,
        MatchMode::Prefix,
        &ptw,
        64,
    )
    .unwrap();

    // The METRICS verb on the same daemon: the Prometheus exposition must
    // agree with the session the daemon just served.
    let exposition = fetch_metrics(server.local_addr()).unwrap();
    for line in [
        "pstrace_stream_sessions_total 1",
        "pstrace_stream_completed_total 1",
        "pstrace_stream_active_sessions 0",
        "pstrace_stream_metrics_requests_total 1",
    ] {
        assert!(
            exposition.contains(&format!("{line}\n")),
            "missing `{line}` in exposition:\n{exposition}"
        );
    }
    assert!(
        exposition.contains("pstrace_session_records_total{session=\"1\"}"),
        "per-session counter missing:\n{exposition}"
    );
    let snap = server.snapshot();
    assert_eq!(snap.sessions, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0);
    assert!(snap.records > 0, "records flowed: {snap:?}");
    assert_eq!(snap.bytes, stream.bytes.len() as u64);
    server.shutdown();

    assert!(
        report.contains("(Prefix match)"),
        "session header names the match mode: {report}"
    );
    assert_eq!(
        localization_line(&report),
        batch_line,
        "live localization diverged from batch debug:\n{report}"
    );
}
