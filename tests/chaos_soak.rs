//! Seeded chaos soak: tens of thousands of injected faults against the
//! live ingest pipeline, scored for survival and determinism.
//!
//! Acceptance criteria pinned here:
//! * a seeded soak injects >= 10k faults with zero worker panics and the
//!   daemon still serves a clean session afterward, bit-identical to the
//!   batch pipeline;
//! * an identical seed reproduces the identical fault ledger;
//! * online localization over undamaged prefixes is bit-identical to
//!   batch `consistent_paths` at every prefix length;
//! * reconnect-path faults (drops, disconnects) drive the park/resume
//!   machinery without breaking survival.

use pstrace::codec::flight::read_flight_dump;
use pstrace::diag::{consistent_paths, MatchMode, OnlineLocalizer};
use pstrace::faults::{run_soak, FaultPlan, SoakConfig};
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::observed_messages;
use pstrace::wire::{decode_stream, encode_records, WireRecord};

#[test]
fn seeded_soak_injects_over_10k_faults_and_survives() {
    let plan = FaultPlan::heavy(0x00c0_ffee).without_reconnect_faults();
    let mut config = SoakConfig::new(plan);
    config.sessions = 4;
    config.records = 12_000;
    config.chunk_bytes = 2_048;
    let report = run_soak(&config).expect("harness builds");

    assert!(
        report.ledger.len() >= 10_000,
        "expected >= 10k injected faults, got {}:\n{}",
        report.ledger.len(),
        report.render()
    );
    assert_eq!(
        report.snapshot.worker_panics,
        0,
        "a worker panic escaped:\n{}",
        report.render()
    );
    assert_eq!(
        report.completed + report.failed,
        config.sessions,
        "every session must end gracefully:\n{}",
        report.render()
    );
    // No reconnect-path faults: every corrupted session still completes
    // (damage degrades the answer, never the protocol).
    assert_eq!(report.completed, config.sessions, "{}", report.render());
    assert!(
        report.probe_completed && report.probe_matches_batch,
        "post-storm clean probe must be bit-identical to batch:\n{}",
        report.render()
    );
    report.survival().expect("survival criteria hold");
}

#[test]
fn identical_seed_reproduces_identical_fault_ledger() {
    let plan = FaultPlan::standard(99).without_reconnect_faults();
    let mut config = SoakConfig::new(plan);
    config.sessions = 2;
    config.records = 800;
    let a = run_soak(&config).expect("harness builds");
    let b = run_soak(&config).expect("harness builds");
    assert!(!a.ledger.is_empty(), "the standard plan injects faults");
    assert_eq!(a.ledger.len(), b.ledger.len());
    assert_eq!(
        a.ledger.fingerprint(),
        b.ledger.fingerprint(),
        "same seed must reproduce the same fault ledger:\n{}\nvs\n{}",
        a.render(),
        b.render()
    );
    // A different seed must not.
    let mut other = config.clone();
    other.plan = FaultPlan::standard(100).without_reconnect_faults();
    let c = run_soak(&other).expect("harness builds");
    assert_ne!(a.ledger.fingerprint(), c.ledger.fingerprint());
}

#[test]
fn reconnect_faults_drive_park_resume_and_daemon_survives() {
    let mut config = SoakConfig::new(FaultPlan::heavy(7));
    config.sessions = 3;
    config.records = 1_500;
    config.chunk_bytes = 128;
    let report = run_soak(&config).expect("harness builds");

    assert_eq!(report.snapshot.worker_panics, 0, "{}", report.render());
    assert_eq!(
        report.completed + report.failed,
        config.sessions,
        "{}",
        report.render()
    );
    assert!(
        report.probe_completed && report.probe_matches_batch,
        "daemon must still serve clean sessions after the storm:\n{}",
        report.render()
    );
    report.survival().expect("survival criteria hold");
}

#[test]
fn flight_journal_agrees_with_degradation_counters() {
    // Every `pstrace_degradation_events_total{path}` increment pairs
    // with exactly one `degradation` flight event, so the journal and
    // the counters must tell the same story — both in memory and after
    // a round-trip through the spilled `.ptw` v2 dump.
    let plan = FaultPlan::standard(0x0051_ee75).without_reconnect_faults();
    let mut config = SoakConfig::new(plan);
    config.sessions = 3;
    config.records = 2_000;
    config.chunk_bytes = 512;
    let dump_path =
        std::env::temp_dir().join(format!("pstrace-chaos-flight-{}.ptw", std::process::id()));
    config.flight_dump = Some(dump_path.clone());
    let report = run_soak(&config).expect("harness builds");

    assert!(
        report.flight.recorded > 0,
        "the storm must journal events:\n{}",
        report.render()
    );
    assert_eq!(
        report.flight.overwritten,
        0,
        "this storm fits the ring; nothing may be lost:\n{}",
        report.render()
    );
    assert_eq!(
        report.flight.degradation_counts(),
        report.degradations,
        "journal vs counters diverged:\n{}",
        report.render()
    );

    let bytes = std::fs::read(&dump_path).expect("soak spilled the flight dump");
    std::fs::remove_file(&dump_path).ok();
    let dump = read_flight_dump(&bytes).expect("dump decodes against the flight catalog");
    assert_eq!(dump.damaged, 0, "a self-dump is never damaged");
    assert_eq!(
        dump.degradation_counts(),
        report.degradations,
        "spilled dump vs counters diverged:\n{}",
        report.render()
    );
}

#[test]
fn online_localization_matches_batch_on_every_undamaged_prefix() {
    // The scenario-1 fixture the soak replays, kept small enough to run
    // the batch DP at every prefix length.
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).expect("nonzero");
    let flow = scenario.interleaving(&model).expect("interleaves");
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .expect("selection succeeds");
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).expect("schema fits");
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..64)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).expect("encodes");
    let report = decode_stream(&schema, &encoded.bytes, Some(encoded.bit_len));
    assert!(report.damaged.is_empty(), "the clean stream has no damage");

    let observed: Vec<IndexedMessage> = report.records.iter().map(|r| r.message).collect();
    let selected = observed_messages(&schema);
    let mut online = OnlineLocalizer::new(&flow, &selected, MatchMode::Prefix);
    for n in 1..=observed.len() {
        online.push(observed[n - 1]);
        let batch = consistent_paths(&flow, &observed[..n], &selected, MatchMode::Prefix);
        assert_eq!(
            online.consistent(),
            batch,
            "online diverged from batch consistent_paths at prefix {n}"
        );
    }
}
