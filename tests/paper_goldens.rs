//! Integration tests pinning the paper's worked-example numbers through
//! the public façade.

use std::sync::Arc;

use pstrace::flow::{examples::cache_coherence, instantiate, path_count, InterleavedFlow};
use pstrace::infogain::{mutual_information, LogBase};
use pstrace::prelude::*;
use pstrace::select::flow_spec_coverage;

fn running_example() -> (InterleavedFlow, Arc<pstrace::flow::MessageCatalog>) {
    let (flow, catalog) = cache_coherence();
    let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))
        .expect("running example interleaves");
    (product, catalog)
}

#[test]
fn figure_2_interleaving_shape() {
    let (product, _) = running_example();
    assert_eq!(
        product.state_count(),
        15,
        "15 legal states, (GntW,GntW) excluded"
    );
    assert_eq!(
        product.edge_count(),
        18,
        "each indexed message labels 3 edges"
    );
    assert_eq!(path_count(&product), 6);
}

#[test]
fn section_3_2_worked_example() {
    let (product, catalog) = running_example();
    let combo = [catalog.get("ReqE").unwrap(), catalog.get("GntE").unwrap()];
    let gain = mutual_information(&product, &combo, LogBase::Nats);
    assert!((gain - 1.073).abs() < 1e-3, "I(X;Y1) = 1.073");
    // Closed form from the paper's probabilities: (2/3)·ln 5.
    assert!((gain - (2.0 / 3.0) * 5.0_f64.ln()).abs() < 1e-12);
}

#[test]
fn section_3_3_selection_and_coverage() {
    let (product, catalog) = running_example();
    let report = Selector::new(
        &product,
        SelectionConfig::new(TraceBufferSpec::new(2).expect("nonzero")),
    )
    .select()
    .expect("selection succeeds");

    let names: Vec<&str> = report
        .chosen
        .messages
        .iter()
        .map(|&m| catalog.name(m))
        .collect();
    assert_eq!(
        names,
        ["ReqE", "GntE"],
        "the paper selects Y'1 = {{ReqE, GntE}}"
    );
    assert_eq!(
        report.candidates.len(),
        6,
        "7 subsets minus the over-wide full set"
    );
    assert!((report.coverage() - 0.7333).abs() < 1e-4, "coverage 0.7333");
    assert_eq!(report.utilization(), 1.0, "2 of 2 bits used");
    let direct = flow_spec_coverage(&product, &report.chosen.messages);
    assert!((direct - report.coverage()).abs() < 1e-12);
}

#[test]
fn table_1_flow_shapes() {
    let model = SocModel::t2();
    use pstrace::soc::FlowKind;
    let expect = [
        (FlowKind::PioRead, 6, 5),
        (FlowKind::PioWrite, 3, 2),
        (FlowKind::NcuUpstream, 4, 3),
        (FlowKind::NcuDownstream, 3, 2),
        (FlowKind::Mondo, 6, 5),
    ];
    for (kind, states, messages) in expect {
        let f = model.flow(kind);
        assert_eq!(f.state_count(), states);
        assert_eq!(f.messages().len(), messages);
    }
}

#[test]
fn table_1_cause_counts() {
    let model = SocModel::t2();
    let counts: Vec<usize> = UsageScenario::all_paper_scenarios()
        .iter()
        .map(|s| pstrace::diag::scenario_causes(&model, s).len())
        .collect();
    assert_eq!(counts, [9, 8, 9]);
}
