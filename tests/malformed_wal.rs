//! Malformed WAL input never panics: torn tails, flipped bits and short
//! checkpoints land on typed [`RecoverError`]s folded into the recovery
//! statistics, every undamaged entry on both sides of a damage site
//! survives, and a daemon restarting over a garbage journal still boots
//! and serves — recovery is crash-only and infallible by construction.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pstrace::diag::MatchMode;
use pstrace::faults::{flip_wal_byte, tear_wal_tail};
use pstrace::flow::{FlowIndex, IndexedMessage};
use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
use pstrace::soc::{wirecap, SocModel, TraceBufferConfig, UsageScenario};
use pstrace::stream::durable::{
    checkpoint_path, recover_state, render_dry_run, wal_path, write_checkpoint, CheckpointSession,
    DurabilityPolicy, RecoverError, WalRecord, WalWriter, WAL_ENTRY_BYTES,
};
use pstrace::stream::{stream_ptw, Server, ServerConfig};
use pstrace::wire::{encode_records, write_ptw, WireRecord};

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pstrace-malwal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Journals `tokens` as open resumable sessions (Open + schema chunks +
/// Park each) into shard 0's WAL under `dir`.
fn seed_wal(dir: &Path, tokens: &[u64], schema: &[u8]) {
    let mut wal = WalWriter::open(dir, 0, 1, 7, DurabilityPolicy::Lazy, u64::MAX).unwrap();
    for &token in tokens {
        wal.append_open(token, token, 0x100 + token, 1, 1, 0, schema)
            .unwrap();
        wal.append(&WalRecord::Park { token, bytes: 32 }).unwrap();
    }
    wal.sync().unwrap();
}

#[test]
fn torn_tail_is_typed_and_keeps_every_prior_session() {
    let dir = wal_dir("tear");
    let schema = vec![0x5A; 90];
    seed_wal(&dir, &[1, 2], &schema);
    let path = wal_path(&dir, 0);
    let len = std::fs::metadata(&path).unwrap().len();

    // Tear mid-window inside token 2's open group: the torn window is a
    // typed damage site, token 2 cannot be rebuilt faithfully, token 1
    // is untouched.
    tear_wal_tail(&path, len - 70).unwrap();
    let state = recover_state(&dir, 1);
    assert!(
        state
            .errors
            .iter()
            .any(|e| matches!(e, RecoverError::TornEntry { .. })),
        "torn tail must be typed: {:?}",
        state.errors
    );
    assert_eq!(state.sessions(), 1, "the undamaged session survives");
    assert_eq!(state.shards[0][0].token, 1);
    assert!(state.skipped >= 1, "the torn session is counted as skipped");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_tear_point_is_survivable() {
    let dir = wal_dir("tearall");
    seed_wal(&dir, &[1], &[0xA5; 40]);
    let path = wal_path(&dir, 0);
    let len = std::fs::metadata(&path).unwrap().len();

    // Shrink the journal one byte at a time down to nothing: recovery
    // must stay infallible at every length, never recover more than the
    // one session, and flag exactly the misaligned tails.
    for keep in (0..len).rev() {
        tear_wal_tail(&path, keep).unwrap();
        let state = recover_state(&dir, 1);
        assert!(state.sessions() <= 1, "cut {keep}: invented a session");
        let misaligned = keep % WAL_ENTRY_BYTES as u64 != 0;
        if misaligned {
            assert!(
                state
                    .errors
                    .iter()
                    .any(|e| matches!(e, RecoverError::TornEntry { .. })),
                "cut {keep}: partial window must be flagged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_is_a_bad_checksum_and_resync_keeps_neighbors() {
    let dir = wal_dir("flip");
    let schema = vec![0x33; 40];
    seed_wal(&dir, &[1, 2], &schema);
    let path = wal_path(&dir, 0);

    // Entry 0 is the epoch; entry 1 is token 1's Open. Flip one byte in
    // its body: the fixed-size window resyncs on the next entry, so only
    // token 1 is lost.
    flip_wal_byte(&path, WAL_ENTRY_BYTES as u64 + 10).unwrap();
    let state = recover_state(&dir, 1);
    assert!(
        state.errors.iter().any(|e| matches!(
            e,
            RecoverError::BadChecksum { offset, .. } if *offset == WAL_ENTRY_BYTES as u64
        )),
        "flip must be a checksum error at the window offset: {:?}",
        state.errors
    );
    assert_eq!(state.sessions(), 1, "the clean session survives the flip");
    assert_eq!(state.shards[0][0].token, 2);

    // The dry-run inspector names the damage without touching the file.
    let before = std::fs::read(&path).unwrap();
    let report = render_dry_run(&dir, &state);
    assert!(report.contains("checksum mismatch"), "{report}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "inspection is read-only"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_checkpoint_is_ignored_but_the_wal_still_replays() {
    let dir = wal_dir("shortcp");
    seed_wal(&dir, &[2], &[0xBB; 24]);
    write_checkpoint(
        &dir,
        0,
        1,
        7,
        &[CheckpointSession {
            token: 5,
            session_id: 5,
            trace: 0x105,
            scenario: 1,
            mode: 1,
            tenant: 0,
            schema: vec![0xCC; 24],
            bytes: 16,
        }],
    )
    .unwrap();

    // Cut the completeness footer off: the checkpoint was mid-write at
    // the crash. The whole checkpoint is ignored — never half-trusted —
    // while the WAL beside it replays in full.
    let cp = checkpoint_path(&dir, 0);
    let len = std::fs::metadata(&cp).unwrap().len();
    tear_wal_tail(&cp, len - WAL_ENTRY_BYTES as u64).unwrap();
    let state = recover_state(&dir, 1);
    assert!(
        state
            .errors
            .iter()
            .any(|e| matches!(e, RecoverError::ShortCheckpoint { .. })),
        "footerless checkpoint must be typed: {:?}",
        state.errors
    );
    assert_eq!(state.sessions(), 1);
    assert_eq!(
        state.shards[0][0].token, 2,
        "only the WAL's session survives"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A small valid scenario-1 capture for the live-daemon check.
fn capture_ptw(records: usize) -> (SocModel, Vec<u8>) {
    let model = SocModel::t2();
    let scenario = UsageScenario::scenario1();
    let buffer = TraceBufferSpec::new(32).unwrap();
    let flow = scenario.interleaving(&model).unwrap();
    let selection = Selector::new(&flow, SelectionConfig::new(buffer))
        .select()
        .unwrap();
    let config = TraceBufferConfig {
        messages: selection.chosen.messages.clone(),
        groups: selection.packed_groups.clone(),
        depth: None,
    };
    let schema = wirecap::wire_schema(&model, &config, buffer.width_bits()).unwrap();
    let slots = schema.slots().to_vec();
    let stream: Vec<WireRecord> = (0..records)
        .map(|i| {
            let slot = &slots[i % slots.len()];
            WireRecord {
                time: i as u64,
                message: IndexedMessage::new(slot.message, FlowIndex(1 + (i % 3) as u32)),
                value: (i as u64 * 0x9e37) & ((1u64 << slot.width) - 1),
                partial: slot.is_partial(),
            }
        })
        .collect();
    let encoded = encode_records(&schema, &stream, None).unwrap();
    let ptw = write_ptw(model.catalog(), &schema, &encoded);
    (model, ptw)
}

#[test]
fn garbage_journal_never_blocks_a_daemon_boot() {
    let dir = wal_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    // Pure noise where a WAL should be: recovery counts the damage,
    // restores nothing, and the daemon comes up serving.
    std::fs::write(wal_path(&dir, 0), [0xFF; 3 * WAL_ENTRY_BYTES + 7]).unwrap();

    let (model, ptw) = capture_ptw(60);
    let server = Server::spawn(
        Arc::new(SocModel::t2()),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            durability: DurabilityPolicy::Strict,
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("a garbage journal must not block startup");
    let reply = stream_ptw(
        server.local_addr(),
        model.catalog(),
        1,
        MatchMode::Prefix,
        &ptw,
        64,
    )
    .expect("the recovered daemon serves");
    assert!(reply.contains("records"), "report renders: {reply}");
    let snap = server.shutdown();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.recovered, 0, "noise recovers zero sessions");
    std::fs::remove_dir_all(&dir).ok();
}
