#!/usr/bin/env bash
# Mirrors .github/workflows/ci.yml exactly, so a green run here means a
# green run there. Usage: scripts/ci-local.sh [--skip-msrv]
#
# The MSRV leg needs the 1.75 toolchain installed (rustup toolchain
# install 1.75); pass --skip-msrv when it is not available locally.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

skip_msrv=false
for arg in "$@"; do
    case "$arg" in
    --skip-msrv) skip_msrv=true ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

# job: test (stable)
run cargo build --release --locked
run cargo test -q --locked
run cargo test -q --locked --workspace
run cargo test -q --locked --test stream_smoke
run cargo bench --no-run --locked --workspace

# v2 dialect smoke: the compressed-profile round-trip and corruption
# proptests (codec crate), plus the v2 cases of the acceptance suites —
# one flipped bit stays bounded to a sync window, live daemon included.
run cargo test -q --locked -p pstrace-codec
run cargo test -q --locked --test wire_roundtrip v2_
run cargo test -q --locked --test malformed_ptw v2_

# v2 size gate: every reference-corpus scenario must encode to <= 0.8x
# its v1 size through the real CLI, and both dialects must decode to
# byte-identical text traces.
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/check_v2_size.py
else
    echo "==> python3 not found; skipping v2 size gate"
fi

# Chaos-soak smoke: a seeded fault-injection run against a live daemon.
# The command exits nonzero if the survival criteria are breached.
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    chaos --seed 7 --sessions 3 --intensity light --records 400

# Fleet-soak smoke: 256 chaos-wrapped sessions from 64 concurrent clients
# against a 4-shard daemon. Exits nonzero on any worker panic, shed-free
# quota breach, or a clean probe that is not bit-identical to batch.
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    fleet --seed 7 --intensity light --sessions 256 --concurrency 64 --shards 4 --records 200

# Flight-recorder smoke: a short chaos-wrapped fleet soak spills the
# daemon's self-trace as a .ptw v2 dump; the dump must re-decode through
# the stock `trace decode` machinery (flight dialect auto-detected) and
# `pstrace events` must render a per-session timeline naming trace ids.
flight_dump="$(mktemp -t pstrace-flight-XXXXXX.ptw)"
flight_log="$(mktemp -t pstrace-flight-XXXXXX.log)"
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    fleet --seed 7 --intensity light --sessions 16 --concurrency 8 --shards 4 --records 200 \
    --flight-dump "$flight_dump"
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    trace decode "$flight_dump" --out /dev/null | tee "$flight_log"
run grep -q "flight-recorder dialect" "$flight_log"
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    events "$flight_dump" | tee "$flight_log"
run grep -q "trace 0x" "$flight_log"
rm -f "$flight_dump" "$flight_log"

# Crash-recovery smoke: the kill-the-daemon soak against the real
# `pstrace serve` binary — one plain SIGKILL run plus every compiled-in
# WAL crash point (PSTRACE_CRASH_POINT), each restarted on the same WAL
# directory. The command exits nonzero on any recovery breach; the grep
# pins all five verdicts.
crash_log="$(mktemp -t pstrace-crash-XXXXXX.log)"
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    crash --seed 7 --sessions 6 --records 1200 --shards 2 --crash-point all | tee "$crash_log"
run test "$(grep -c 'verdict *: recovered' "$crash_log")" = 5
rm -f "$crash_log"

# Flow-mining smoke: mine the coherence-scenario captures and require
# both ground-truth flows (COH + NCU downstream) recovered at P/R >= 0.9.
# `--require` makes the exit status the gate; the grep pins the verdict
# line itself.
mine_log="$(mktemp -t pstrace-mine-XXXXXX.log)"
run cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
    mine --scenario 5 --seeds 6 --eval --require 2 | tee "$mine_log"
run grep -q "mine recovery: 2/2" "$mine_log"
rm -f "$mine_log"

# Fleet perf gate: measured aggregate records/s must stay within ±35% of
# the committed BENCH_fleet.json baseline (re-baseline with --rebaseline
# after intentional perf changes — see scripts/check_bench.py).
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/check_bench.py
else
    echo "==> python3 not found; skipping fleet perf gate"
fi

# Profile smoke: the deterministic manual clock makes the span timeline
# reproducible; the checker wants valid Chrome trace JSON with the
# pipeline's phase names.
if command -v python3 >/dev/null 2>&1; then
    profile_json="$(mktemp -t pstrace-profile-XXXXXX.json)"
    run env PSTRACE_PROFILE_CLOCK=manual \
        cargo run -q --release --locked -p pstrace-cli --bin pstrace -- \
        debug --case 1 --profile --profile-json "$profile_json"
    run python3 scripts/check_profile.py "$profile_json"
    rm -f "$profile_json"
else
    echo "==> python3 not found; skipping profile-json validation"
fi

# job: test (MSRV)
if ! $skip_msrv; then
    if rustup toolchain list 2>/dev/null | grep -q '^1\.75'; then
        run cargo +1.75 build --release --locked
        run cargo +1.75 test -q --locked
        run cargo +1.75 test -q --locked --workspace
    else
        echo "==> MSRV toolchain 1.75 not installed; skipping (use rustup toolchain install 1.75)"
    fi
fi

# job: lint
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --locked -- -D warnings

echo "==> ci-local: all green"
