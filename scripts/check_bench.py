#!/usr/bin/env python3
"""Fleet-ingest performance gate.

Runs a quick `pstrace fleet` throughput measurement (256 concurrent
chaos-wrapped sessions against a 4-shard daemon) and compares aggregate
records/s against the committed baseline in BENCH_fleet.json.

The gate fails when the measured rate collapses below 65% of the
baseline — a regression in the event-loop hot path, the shard router, or
the session decoder. Rates *above* 135% of the baseline only print a
note: speedups are welcome, but the baseline should then be refreshed so
the gate keeps teeth.

Re-baselining (after an intentional perf change, or on new hardware):

    python3 scripts/check_bench.py --rebaseline

then commit the updated BENCH_fleet.json. Baselines are machine-relative;
CI compares against a baseline produced on comparable runners, and the
generous 35% band absorbs ordinary runner jitter.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_fleet.json"

# The measurement the baseline was produced with. Keep in sync with
# BENCH_fleet.json: comparing different workloads is meaningless.
FLEET_ARGS = [
    "fleet",
    "--seed", "99",
    "--sessions", "256",
    "--concurrency", "64",
    "--shards", "4",
    "--records", "200",
]

FAIL_BELOW = 0.65
NOTE_ABOVE = 1.35


def measure() -> dict:
    out = tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="pstrace-fleet-", delete=False
    )
    out.close()
    cmd = [
        "cargo", "run", "-q", "--release", "--locked",
        "-p", "pstrace-cli", "--bin", "pstrace", "--",
        *FLEET_ARGS, "--json", out.name,
    ]
    print("==>", " ".join(cmd))
    subprocess.run(cmd, cwd=REPO, check=True, timeout=1800)
    with open(out.name, encoding="utf-8") as f:
        result = json.load(f)
    pathlib.Path(out.name).unlink(missing_ok=True)
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="write the measured rate to BENCH_fleet.json instead of comparing",
    )
    args = parser.parse_args()

    result = measure()
    measured = float(result["records_per_sec"])
    print(f"measured: {measured:.0f} records/s "
          f"({result['sessions']} sessions x {result['records_per_session']} records, "
          f"{result['shards']} shards, {result['concurrency']} clients)")

    if args.rebaseline:
        BASELINE.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"wrote baseline {BASELINE}")
        return 0

    if not BASELINE.exists():
        print(f"error: no baseline at {BASELINE}; "
              "run scripts/check_bench.py --rebaseline and commit it",
              file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    base = float(baseline["records_per_sec"])
    ratio = measured / base if base > 0 else float("inf")
    print(f"baseline: {base:.0f} records/s -> ratio {ratio:.2f} "
          f"(fail < {FAIL_BELOW}, note > {NOTE_ABOVE})")

    if ratio < FAIL_BELOW:
        print(f"FAIL: fleet ingest throughput collapsed to {ratio:.0%} of baseline; "
              "if intentional, re-baseline with scripts/check_bench.py --rebaseline",
              file=sys.stderr)
        return 1
    if ratio > NOTE_ABOVE:
        print(f"note: throughput is {ratio:.0%} of baseline — consider refreshing "
              "BENCH_fleet.json (scripts/check_bench.py --rebaseline) so the gate keeps teeth")
    print("fleet perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
