#!/usr/bin/env python3
"""`.ptw` v2 size gate.

Builds the reference corpus — every paper scenario soaked over several
seeded simulation runs, concatenated into one monotone capture per
scenario — then encodes each corpus through both wire dialects with the
real CLI and asserts:

* both dialects decode back to byte-identical text traces (the
  round-trip invariant, end to end through the binary);
* every scenario's v2 file is at most 80% of its v1 file — the ≥20%
  compression the dialect exists to deliver, container header included.

Run from the repository root: python3 scripts/check_v2_size.py
"""

import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
SCENARIOS = [1, 2, 3, 4, 5]
SEEDS = list(range(2018, 2026))
MAX_RATIO = 0.8

CARGO = [
    "cargo", "run", "-q", "--release", "--locked",
    "-p", "pstrace-cli", "--bin", "pstrace", "--",
]


def run(*args: str) -> None:
    subprocess.run([*CARGO, *args], cwd=REPO, check=True, timeout=600,
                   stdout=subprocess.DEVNULL)


def soak(work: pathlib.Path, scenario: int) -> pathlib.Path:
    """Concatenates SEEDS runs of one scenario into a single capture,
    rebasing each run's times so the corpus stays monotone (a longer
    soak of the same workload)."""
    corpus = work / f"s{scenario}.txt"
    lines = ["# time index message value partial"]
    base = 0
    for seed in SEEDS:
        raw = work / f"s{scenario}-{seed}.txt"
        run("simulate", "--scenario", str(scenario),
            "--seed", str(seed), "--save", str(raw))
        last = base
        for line in raw.read_text(encoding="utf-8").splitlines():
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            fields[0] = str(int(fields[0]) + base)
            last = max(last, int(fields[0]))
            lines.append(" ".join(fields))
        base = last + 1
    corpus.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return corpus


def main() -> int:
    failed = False
    with tempfile.TemporaryDirectory(prefix="pstrace-v2gate-") as tmp:
        work = pathlib.Path(tmp)
        for scenario in SCENARIOS:
            corpus = soak(work, scenario)
            v1 = work / f"s{scenario}.v1.ptw"
            v2 = work / f"s{scenario}.v2.ptw"
            run("trace", "encode", str(corpus),
                "--scenario", str(scenario), "--out", str(v1))
            run("trace", "encode", str(corpus),
                "--scenario", str(scenario), "--profile", "v2",
                "--out", str(v2))
            d1 = work / f"s{scenario}.v1.out"
            d2 = work / f"s{scenario}.v2.out"
            run("trace", "decode", str(v1), "--out", str(d1))
            run("trace", "decode", str(v2), "--out", str(d2))
            if d1.read_bytes() != d2.read_bytes():
                print(f"FAIL: scenario {scenario}: v1 and v2 decodes "
                      "differ", file=sys.stderr)
                return 1
            b1 = v1.stat().st_size
            b2 = v2.stat().st_size
            ratio = b2 / b1 if b1 else float("inf")
            verdict = "ok" if ratio <= MAX_RATIO else "FAIL"
            print(f"scenario {scenario}: v1 {b1:>7} B  v2 {b2:>7} B  "
                  f"ratio {ratio:.3f}  {verdict}")
            failed = failed or ratio > MAX_RATIO

    if failed:
        print(f"FAIL: a scenario's v2 file exceeds {MAX_RATIO:.0%} of its "
              "v1 size — the compressed dialect must deliver >= 20%",
              file=sys.stderr)
        return 1
    print("v2 size gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
