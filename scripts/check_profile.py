#!/usr/bin/env python3
"""Validate a `pstrace --profile-json` export.

The file must parse as Chrome trace-event JSON, carry a non-empty
`traceEvents` array of complete ("X") events with numeric timestamps,
and name the expected pipeline phases. CI runs this against
`pstrace debug --case 1 --profile-json` under the deterministic manual
clock.
"""

import json
import sys

EXPECTED_PHASES = {"interleave", "rank", "localize", "investigate"}


def main(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, "traceEvents is empty"
    for event in events:
        assert event["ph"] == "X", f"not a complete event: {event}"
        assert isinstance(event["ts"], (int, float)), f"bad ts: {event}"
        assert isinstance(event["dur"], (int, float)), f"bad dur: {event}"
        assert isinstance(event["name"], str) and event["name"], f"bad name: {event}"
    names = {event["name"] for event in events}
    missing = EXPECTED_PHASES - names
    assert not missing, f"missing phases {sorted(missing)}; got {sorted(names)}"
    print(f"ok: {len(events)} events over phases {sorted(names)}")


if __name__ == "__main__":
    main(sys.argv[1])
