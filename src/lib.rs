//! `pstrace` — application-level hardware trace message selection for
//! scaling post-silicon debug.
//!
//! A from-scratch Rust reproduction of *Application Level Hardware Tracing
//! for Scaling Post-Silicon Debug* (Pal, Sharma, Ray, de Paula,
//! Vasudevan — DAC 2018): given the system-level protocol *flows* a usage
//! scenario exercises and a trace-buffer width budget, select the set of
//! messages to trace such that mutual information gain over the
//! interleaved flow is maximized and the buffer is maximally utilized —
//! then debug buggy silicon from the captured messages alone.
//!
//! The workspace is re-exported here as one façade:
//!
//! * [`flow`] — the flow formalism (Definitions 1–5): flow DAGs, indexed
//!   instances, interleaving with atomic-state mutual exclusion,
//!   executions and path counting;
//! * [`infogain`] — the §3.2 mutual-information estimator over
//!   interleaved flows;
//! * [`select`] — the paper's contribution (§3): candidate enumeration,
//!   information-gain ranking, trace-buffer packing, coverage and
//!   utilization metrics;
//! * [`soc`] — the OpenSPARC-T2-like transaction-level SoC substrate with
//!   the five Table 1 protocol flows, three usage scenarios and a modeled
//!   trace buffer;
//! * [`bug`] — Table 2-style bug models, injection and bug-coverage
//!   analysis;
//! * [`diag`] — path localization, root-cause catalogs and pruning, and
//!   the backtracking investigation walk of §5.6–5.7;
//! * [`rtl`] — the gate-level substrate with state restoration (SRR) and
//!   the SigSeT / PRNet baseline selectors of §5.4, plus the USB-like
//!   comparison design;
//! * [`wire`] — the bit-packed wire format: selection-derived frame
//!   schemas, a circular-buffer frame encoder, a damage-tolerant
//!   streaming decoder and the `.ptw` on-disk container;
//! * [`codec`] — the compressed `.ptw` v2 dialect: delta-coded
//!   timestamps with periodic absolute sync blocks, zig-zag lane deltas
//!   and run-length encoded tags, negotiated by the container's version
//!   byte with damage still bounded to one sync window;
//! * [`stream`] — the live ingest path: a chunk-at-a-time decode
//!   session with incremental online localization, a loopback TCP
//!   daemon (`pstraced`) and the replay client behind `pstrace stream`;
//! * [`obs`] — the observability layer: a global-free metrics registry,
//!   deterministic timing spans and the Prometheus / Chrome-trace
//!   exporters behind `--profile` and the daemon's `METRICS` verb;
//! * [`faults`] — seeded deterministic fault injection at the wire,
//!   transport and session seams, with the soak harness behind
//!   `pstrace chaos` that scores the hardened ingest pipeline for
//!   survival;
//! * [`mine`] — flow specification mining: reconstruct candidate flow
//!   DAGs from decoded captures (prefix-tree acceptor + future-language
//!   merging), cross-check binary invariants, validate atomic-state
//!   claims against observed interleavings, and score candidates for
//!   the `pstrace mine` recovery pipeline.
//!
//! # Quickstart
//!
//! The paper's running example, end to end:
//!
//! ```
//! use std::sync::Arc;
//! use pstrace::flow::{examples::cache_coherence, instantiate, InterleavedFlow};
//! use pstrace::select::{SelectionConfig, Selector, TraceBufferSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (flow, catalog) = cache_coherence();
//! let product = InterleavedFlow::build(&instantiate(&Arc::new(flow), 2))?;
//! let report = Selector::new(
//!     &product,
//!     SelectionConfig::new(TraceBufferSpec::new(2)?),
//! )
//! .select()?;
//!
//! let names: Vec<&str> = report
//!     .chosen
//!     .messages
//!     .iter()
//!     .map(|&m| catalog.name(m))
//!     .collect();
//! assert_eq!(names, ["ReqE", "GntE"]);    // §3.2's selection
//! assert!((report.chosen.gain - 1.073).abs() < 1e-3);
//! assert!((report.coverage() - 0.7333).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the SoC debugging case studies and the USB baseline
//! comparison, and `crates/bench` for the binaries regenerating every
//! table and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pstrace_bug as bug;
pub use pstrace_codec as codec;
pub use pstrace_diag as diag;
pub use pstrace_faults as faults;
pub use pstrace_flow as flow;
pub use pstrace_infogain as infogain;
pub use pstrace_mine as mine;
pub use pstrace_obs as obs;
pub use pstrace_rtl as rtl;
pub use pstrace_soc as soc;
pub use pstrace_stream as stream;
pub use pstrace_wire as wire;

/// The paper's contribution: trace message selection (re-export of
/// `pstrace-core`).
pub mod select {
    pub use pstrace_core::*;
}

/// Commonly used items for quick experimentation.
pub mod prelude {
    pub use pstrace_bug::{bug_catalog, case_studies, BugInterceptor};
    pub use pstrace_core::{SelectionConfig, SelectionReport, Selector, TraceBufferSpec};
    pub use pstrace_diag::{run_case_study, CaseStudyConfig};
    pub use pstrace_flow::{
        instantiate, Flow, FlowBuilder, IndexedFlow, InterleavedFlow, MessageCatalog,
    };
    pub use pstrace_infogain::{mutual_information, LogBase};
    pub use pstrace_soc::{SimConfig, Simulator, SocModel, UsageScenario};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let model = crate::soc::SocModel::t2();
        assert_eq!(model.catalog().len(), 29);
        let usb = crate::rtl::UsbDesign::new();
        assert_eq!(usb.interface_signals.len(), 10);
    }
}
